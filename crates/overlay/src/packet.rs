//! Wire formats: overlay data packets, link-level control, shared-state
//! control plane, and the client/daemon session protocol.
//!
//! Everything that crosses a simulated pipe or the client/daemon boundary is
//! a [`Wire`] value. Sizes reported to the simulator approximate a compact
//! binary encoding so bandwidth and overhead accounting are meaningful.

use bytes::Bytes;
use son_netsim::process::{MessageKind, SimMessage};
use son_netsim::time::SimTime;
use son_obs::trace::{TraceContext, TRACE_CONTEXT_BYTES};
use son_topo::{EdgeId, EdgeMask, NodeId};

use crate::addr::{Destination, FlowKey, GroupId, OverlayAddr};
use crate::service::FlowSpec;

/// Approximate size of the fixed data-packet header on the wire.
pub const DATA_HEADER_BYTES: usize = 48;
/// Approximate wire size of a source-route bitmask stamp.
pub const MASK_BYTES: usize = 32;

/// An overlay data packet.
///
/// The flow's [`FlowSpec`] rides in the header; a production system installs
/// per-flow state at session setup instead, but carrying it keeps the
/// simulator honest (every node processes packets of a flow identically)
/// while charging the same few header bytes a flow-id lookup would need.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPacket {
    /// End-to-end flow identity (ingress address → destination).
    pub flow: FlowKey,
    /// Per-flow sequence number assigned at the ingress node.
    pub flow_seq: u64,
    /// The ingress overlay node that introduced the packet.
    pub origin: NodeId,
    /// The services selected for the flow.
    pub spec: FlowSpec,
    /// Source-route stamp (set when the routing service is source-based).
    pub mask: Option<EdgeMask>,
    /// For anycast flows: the member node the ingress resolved the packet to.
    pub resolved_dst: Option<NodeId>,
    /// Per-link sequence number for the *current* hop's link protocol;
    /// rewritten at every hop.
    pub link_seq: u64,
    /// When the source client handed the packet to the overlay.
    pub created_at: SimTime,
    /// Payload size in bytes (the payload itself may be synthetic).
    pub size: usize,
    /// Optional real payload content.
    pub payload: Bytes,
    /// Remaining hop budget; guards against forwarding loops.
    pub ttl: u8,
    /// Authentication tag over (origin, flow, seq), keyed by the origin's
    /// node key; `0` when authentication is disabled.
    pub auth_tag: u64,
    /// Distributed-tracing context. `Some` iff the ingress sampled this
    /// packet; every daemon on the path then records trace events for it
    /// and bumps the hop counter per overlay link.
    pub trace: Option<TraceContext>,
}

impl DataPacket {
    /// The wire size of this packet.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        DATA_HEADER_BYTES
            + if self.mask.is_some() { MASK_BYTES } else { 0 }
            + if self.trace.is_some() {
                TRACE_CONTEXT_BYTES
            } else {
                0
            }
            + self.size
    }

    /// The unique end-to-end identity of the payload, used for duplicate
    /// suppression under redundant dissemination.
    #[must_use]
    pub fn payload_id(&self) -> (FlowKey, u64) {
        (self.flow, self.flow_seq)
    }
}

/// Link-level control traffic, scoped to the pipe it arrives on and the
/// protocol slot it addresses.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkCtl {
    /// Reliable Data Link acknowledgment: cumulative + selective.
    ReliableAck {
        /// All link sequence numbers `<= cum` have been received.
        cum: u64,
        /// Sequence numbers received beyond the cumulative point.
        selective: Vec<u64>,
    },
    /// Reliable Data Link negative acknowledgment (gap report) for fast
    /// retransmit.
    ReliableNack {
        /// The missing link sequence numbers.
        missing: Vec<u64>,
    },
    /// NM-Strikes retransmission request (one of the receiver's N strikes).
    RtRequest {
        /// The missing link sequence numbers being requested.
        seqs: Vec<u64>,
        /// Which of the N strikes this is (diagnostics only).
        strike: u8,
    },
    /// Intrusion-Tolerant Reliable backpressure: grant the upstream sender
    /// additional credits for one flow.
    Credit {
        /// The flow being granted credit.
        flow: FlowKey,
        /// Number of additional packets the upstream may send.
        credits: u32,
    },
    /// A FEC repair packet covering one block of data packets. Carries the
    /// headers of the covered packets (what a Reed–Solomon decode would
    /// reconstruct); its wire size is charged as one full-size packet plus
    /// the covered headers. Covered packets must have their payloads
    /// stripped at construction (the repair symbol encodes them, it does
    /// not carry them).
    FecRepair {
        /// First link sequence number of the covered block.
        block_start: u64,
        /// Which repair packet of the block this is (0-based).
        index: u8,
        /// Headers of the covered data packets, payloads stripped.
        covered: Vec<DataPacket>,
    },
}

impl LinkCtl {
    /// Approximate wire size.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            LinkCtl::ReliableAck { selective, .. } => 24 + 8 * selective.len(),
            LinkCtl::ReliableNack { missing } => 16 + 8 * missing.len(),
            LinkCtl::RtRequest { seqs, .. } => 17 + 8 * seqs.len(),
            LinkCtl::Credit { .. } => 32,
            // A repair symbol is as large as the largest covered packet,
            // plus one header per covered packet so the decoder knows what
            // it is reconstructing.
            LinkCtl::FecRepair { covered, .. } => {
                debug_assert!(
                    covered.iter().all(|p| p.payload.is_empty()),
                    "FecRepair covered packets must be payload-stripped"
                );
                16 + covered.iter().map(DataPacket::wire_size).max().unwrap_or(0)
                    + DATA_HEADER_BYTES * covered.len()
            }
        }
    }
}

/// One overlay node's advertised view of an incident overlay link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkAdvert {
    /// The overlay link being described.
    pub edge: EdgeId,
    /// Liveness as seen by the advertising endpoint.
    pub up: bool,
    /// Measured one-way latency estimate in milliseconds.
    pub latency_ms: f64,
    /// Measured loss-rate estimate in `[0, 1]`.
    pub loss: f64,
}

/// A link-state advertisement flooded by every node about its own links
/// (the Connectivity Graph Maintenance shared state, §II-B).
#[derive(Debug, Clone, PartialEq)]
pub struct Lsa {
    /// The node whose links are described.
    pub origin: NodeId,
    /// Monotonic per-origin sequence number; higher replaces lower.
    pub seq: u64,
    /// State of every link incident to `origin`.
    pub links: Vec<LinkAdvert>,
}

/// A group-membership advertisement flooded by every node about its own
/// clients (the Group State shared state, §II-B). Carries the full current
/// set, so it is idempotent and tolerates loss.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupUpdate {
    /// The node whose client membership is described.
    pub origin: NodeId,
    /// Monotonic per-origin sequence number; higher replaces lower.
    pub seq: u64,
    /// Every group in which `origin` currently has at least one client.
    pub groups: Vec<GroupId>,
}

/// Liveness status of an overlay member as carried in membership frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberStatus {
    /// The member is believed alive and routable.
    Up,
    /// The member stopped responding (crash-suspected); its state is
    /// evicted after the membership hold-down.
    Down,
    /// The member announced a graceful departure; its state is evicted
    /// without a hold-down.
    Left,
}

/// One member's liveness as carried in membership frames: 13 wire bytes
/// (node `u32`, incarnation `u64`, status `u8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberInfo {
    /// The member being described.
    pub node: NodeId,
    /// SWIM-style incarnation number: bumped by the member itself on every
    /// restart, so a recovered node overrides stale Down/Left records.
    pub incarnation: u64,
    /// The member's liveness as believed by the frame's origin.
    pub status: MemberStatus,
}

/// Control-plane traffic between overlay neighbors.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// Periodic liveness + quality probe on an overlay link.
    Hello {
        /// Monotonic hello sequence (loss estimation).
        seq: u64,
        /// Send timestamp (latency estimation via the echo).
        sent_at: SimTime,
    },
    /// Echo of a received hello.
    HelloAck {
        /// The probe's sequence number.
        seq: u64,
        /// The probe's original send timestamp, echoed back.
        echo_sent_at: SimTime,
    },
    /// Flooded link-state advertisement.
    Lsa(Lsa),
    /// Flooded group-membership advertisement.
    GroupUpdate(GroupUpdate),
    /// Per-epoch forwarding receipt sent to the upstream neighbor when the
    /// anomaly watchdog is enabled: how much data arrived on the link during
    /// the last watch epoch and how much of it made progress (delivered,
    /// forwarded, or legitimately dropped). A compromised node's *daemon*
    /// reports honestly — only its forwarding verdicts are adversarial — so
    /// a blackhole signs its own confession: `received` high, `progressed`
    /// near zero.
    WatchReceipt {
        /// Data packets received on the link during the epoch.
        received: u64,
        /// How many of those made progress past the adversary check.
        progressed: u64,
    },
    /// Bootstrap request from a (re)joining node, sent to a seed neighbor.
    /// The seed replies with [`Control::JoinAck`] and floods the new
    /// member's liveness to the rest of the overlay.
    Join {
        /// The joining node.
        node: NodeId,
        /// The joiner's current incarnation number.
        incarnation: u64,
    },
    /// Seed's reply to a [`Control::Join`]: the full membership view, so
    /// the joiner starts from an up-to-date roster instead of waiting for
    /// per-origin floods.
    JoinAck {
        /// Every member the seed knows about.
        members: Vec<MemberInfo>,
    },
    /// Graceful-departure announcement, flooded overlay-wide. Receivers
    /// mark the node `Left` and evict its shared state without a hold-down.
    Leave {
        /// The departing node.
        node: NodeId,
        /// Its incarnation at departure; a later restart refutes the Left
        /// record with a higher incarnation.
        incarnation: u64,
    },
    /// Flooded membership delta: the origin's changed liveness records,
    /// sequenced per origin like an LSA so stale floods are dropped.
    MembershipUpdate {
        /// The node whose view changed.
        origin: NodeId,
        /// Monotonic per-origin sequence number; higher replaces lower.
        seq: u64,
        /// The changed liveness records.
        members: Vec<MemberInfo>,
    },
}

impl Control {
    /// Approximate wire size.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            Control::Hello { .. } | Control::HelloAck { .. } | Control::WatchReceipt { .. } => 24,
            Control::Lsa(lsa) => 16 + 13 * lsa.links.len(),
            Control::GroupUpdate(gu) => 16 + 4 * gu.groups.len(),
            // The membership frames charge their exact encoded size (frame
            // header + body); `wire_roundtrip` pins this with byte-for-byte
            // assertions.
            Control::Join { .. } | Control::Leave { .. } => 20,
            Control::JoinAck { members } => 10 + 13 * members.len(),
            Control::MembershipUpdate { members, .. } => 22 + 13 * members.len(),
        }
    }
}

/// Client-to-daemon session operations (the session interface, §II-B).
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Attach to the daemon on a virtual port.
    Connect {
        /// The requested virtual port.
        port: u16,
    },
    /// Register a flow: destination plus selected services.
    OpenFlow {
        /// Client-chosen local flow handle.
        local_flow: u32,
        /// Where the flow's packets go.
        dst: Destination,
        /// The services selected for the flow.
        spec: FlowSpec,
    },
    /// Send one message on a previously opened flow.
    Send {
        /// The flow handle from [`ClientOp::OpenFlow`].
        local_flow: u32,
        /// Payload size in bytes.
        size: usize,
        /// Optional payload content.
        payload: Bytes,
    },
    /// Close a previously opened flow: the daemon retires every per-flow
    /// trace (flow context, dedup window, send state).
    CloseFlow {
        /// The flow handle from [`ClientOp::OpenFlow`].
        local_flow: u32,
    },
    /// Join a multicast/anycast group (receivers only need to join).
    Join(GroupId),
    /// Leave a group.
    Leave(GroupId),
    /// Detach from the daemon.
    Disconnect,
}

/// Daemon-to-client session events.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The connection is established at this overlay address.
    Connected {
        /// The address assigned to the client.
        addr: OverlayAddr,
    },
    /// A message addressed to this client has been delivered.
    Deliver {
        /// The flow it belongs to.
        flow: FlowKey,
        /// Its end-to-end sequence number.
        seq: u64,
        /// Payload size in bytes.
        size: usize,
        /// Optional payload content.
        payload: Bytes,
        /// When the source handed it to the overlay.
        created_at: SimTime,
    },
    /// Backpressure: stop sending on this flow (IT-Reliable, §IV-B).
    FlowPaused {
        /// The client's local flow handle.
        local_flow: u32,
    },
    /// Backpressure released: sending may resume.
    FlowResumed {
        /// The client's local flow handle.
        local_flow: u32,
    },
}

/// Everything that travels through the simulator in an overlay deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum Wire {
    /// Overlay data between daemons.
    Data(DataPacket),
    /// Link-protocol control between neighboring daemons, addressed to one
    /// service slot (several protocols use acknowledgments).
    Ctl {
        /// The service slot the control belongs to (see `LinkService::slot`).
        slot: u8,
        /// The control payload.
        ctl: LinkCtl,
    },
    /// Shared-state control plane between neighboring daemons.
    Control(Control),
    /// Client-to-daemon session traffic.
    FromClient(ClientOp),
    /// Daemon-to-client session traffic.
    ToClient(SessionEvent),
    /// A raw datagram from an *unmodified* application, captured by an
    /// [`Interceptor`](crate::intercept::Interceptor) (§II-B's "seamless
    /// packet interception techniques"). The application knows nothing
    /// about flows or services; the interceptor maps these onto overlay
    /// flows by policy.
    Raw {
        /// Destination in the overlay address space.
        to: OverlayAddr,
        /// Payload size in bytes.
        size: usize,
        /// Payload content.
        payload: Bytes,
    },
}

impl SimMessage for Wire {
    fn wire_size(&self) -> usize {
        match self {
            Wire::Data(d) => d.wire_size(),
            Wire::Ctl { ctl, .. } => 1 + ctl.wire_size(),
            Wire::Control(c) => c.wire_size(),
            // Session traffic is local IPC; size only matters if a client is
            // attached over a remote pipe.
            Wire::FromClient(ClientOp::Send { size, .. }) => 16 + size,
            Wire::FromClient(_) => 16,
            Wire::ToClient(SessionEvent::Deliver { size, .. }) => 32 + size,
            Wire::ToClient(_) => 16,
            Wire::Raw { size, .. } => 8 + size,
        }
    }

    fn kind(&self) -> MessageKind {
        match self {
            // Only overlay data packets are data-plane traffic; everything
            // else (acks, hellos, LSAs, session IPC) is control for drop
            // attribution purposes.
            Wire::Data(d) => MessageKind::Data {
                flow: d.flow.stable_id(),
                seq: d.flow_seq,
            },
            _ => MessageKind::Control,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DestKey;
    use son_netsim::time::SimDuration;

    fn packet(mask: Option<EdgeMask>, size: usize) -> DataPacket {
        DataPacket {
            flow: FlowKey {
                src: OverlayAddr::new(NodeId(0), 1),
                dst: DestKey::Unicast(OverlayAddr::new(NodeId(5), 2)),
            },
            flow_seq: 7,
            origin: NodeId(0),
            spec: FlowSpec::reliable(),
            mask,
            resolved_dst: None,
            link_seq: 0,
            created_at: SimTime::ZERO,
            size,
            payload: Bytes::new(),
            ttl: 32,
            auth_tag: 0,
            trace: None,
        }
    }

    #[test]
    fn data_sizes_account_for_mask_and_payload() {
        assert_eq!(packet(None, 1000).wire_size(), DATA_HEADER_BYTES + 1000);
        assert_eq!(
            packet(Some(EdgeMask::EMPTY), 1000).wire_size(),
            DATA_HEADER_BYTES + MASK_BYTES + 1000
        );
    }

    #[test]
    fn data_sizes_account_for_trace_context() {
        let mut p = packet(None, 1000);
        p.trace = Some(TraceContext { id: 9, hop: 0 });
        assert_eq!(
            p.wire_size(),
            DATA_HEADER_BYTES + TRACE_CONTEXT_BYTES + 1000
        );
    }

    #[test]
    fn payload_id_distinguishes_flows_and_seqs() {
        let a = packet(None, 10);
        let mut b = packet(None, 10);
        assert_eq!(a.payload_id(), b.payload_id());
        b.flow_seq = 8;
        assert_ne!(a.payload_id(), b.payload_id());
    }

    #[test]
    fn ctl_sizes_scale_with_content() {
        let small = LinkCtl::ReliableAck {
            cum: 5,
            selective: vec![],
        };
        let big = LinkCtl::ReliableAck {
            cum: 5,
            selective: vec![7, 9, 11],
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(
            LinkCtl::Credit {
                flow: packet(None, 0).flow,
                credits: 4
            }
            .wire_size(),
            32
        );
        assert_eq!(
            LinkCtl::RtRequest {
                seqs: vec![1, 2],
                strike: 0
            }
            .wire_size(),
            17 + 16
        );
        assert_eq!(LinkCtl::ReliableNack { missing: vec![3] }.wire_size(), 24);
    }

    #[test]
    fn control_sizes_scale_with_content() {
        let hello = Control::Hello {
            seq: 1,
            sent_at: SimTime::ZERO,
        };
        assert_eq!(hello.wire_size(), 24);
        let lsa = Control::Lsa(Lsa {
            origin: NodeId(0),
            seq: 1,
            links: vec![LinkAdvert {
                edge: EdgeId(0),
                up: true,
                latency_ms: 10.0,
                loss: 0.0,
            }],
        });
        assert_eq!(lsa.wire_size(), 29);
        let gu = Control::GroupUpdate(GroupUpdate {
            origin: NodeId(0),
            seq: 1,
            groups: vec![GroupId(1), GroupId(2)],
        });
        assert_eq!(gu.wire_size(), 24);
    }

    #[test]
    fn membership_sizes_scale_with_content() {
        let member = MemberInfo {
            node: NodeId(3),
            incarnation: 2,
            status: MemberStatus::Up,
        };
        assert_eq!(
            Control::Join {
                node: NodeId(1),
                incarnation: 0
            }
            .wire_size(),
            20
        );
        assert_eq!(
            Control::Leave {
                node: NodeId(1),
                incarnation: 4
            }
            .wire_size(),
            20
        );
        assert_eq!(Control::JoinAck { members: vec![] }.wire_size(), 10);
        assert_eq!(
            Control::JoinAck {
                members: vec![member; 3]
            }
            .wire_size(),
            10 + 39
        );
        assert_eq!(
            Control::MembershipUpdate {
                origin: NodeId(0),
                seq: 1,
                members: vec![member]
            }
            .wire_size(),
            35
        );
    }

    #[test]
    fn only_data_wires_are_data_kind() {
        let p = packet(None, 100);
        let expected = MessageKind::Data {
            flow: p.flow.stable_id(),
            seq: p.flow_seq,
        };
        assert_eq!(Wire::Data(p).kind(), expected);
        assert_eq!(
            Wire::Control(Control::Hello {
                seq: 1,
                sent_at: SimTime::ZERO
            })
            .kind(),
            MessageKind::Control
        );
        assert_eq!(
            Wire::Ctl {
                slot: 1,
                ctl: LinkCtl::ReliableNack { missing: vec![2] }
            }
            .kind(),
            MessageKind::Control
        );
    }

    #[test]
    fn wire_dispatches_sizes() {
        let w = Wire::Data(packet(None, 100));
        assert_eq!(w.wire_size(), DATA_HEADER_BYTES + 100);
        let c = Wire::FromClient(ClientOp::Send {
            local_flow: 0,
            size: 500,
            payload: Bytes::new(),
        });
        assert_eq!(c.wire_size(), 516);
        let e = Wire::ToClient(SessionEvent::FlowPaused { local_flow: 0 });
        assert_eq!(e.wire_size(), 16);
        let _ = SimDuration::ZERO;
    }
}
