//! # son-overlay — structured overlay network node software
//!
//! The paper's primary contribution (Fig. 2) realized in Rust: overlay nodes
//! that act as both servers (session interface for clients) and routers
//! (link-state and source-based routing over shared connectivity and group
//! state), with flow-based processing and a family of link-level protocols —
//! Best Effort, Reliable Data Link (hop-by-hop recovery, §III-A), NM-Strikes
//! real-time recovery (§IV-A), and intrusion-tolerant Priority/Reliable fair
//! messaging (§IV-B) — plus redundant dissemination over k-node-disjoint
//! paths, dissemination graphs, and constrained flooding with in-network
//! de-duplication.
//!
//! Overlay daemons run as [`Process`](son_netsim::process::Process)es inside
//! the deterministic [`son_netsim`] simulator.
//!
//! ## Quick tour
//!
//! ```
//! use son_netsim::sim::Simulation;
//! use son_netsim::time::{SimDuration, SimTime};
//! use son_overlay::builder::{chain_topology, OverlayBuilder};
//! use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
//! use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
//! use son_topo::NodeId;
//!
//! // A 3-node overlay chain with 10 ms links.
//! let mut sim: Simulation<Wire> = Simulation::new(7);
//! let overlay = OverlayBuilder::new(chain_topology(3, 10.0)).build(&mut sim);
//!
//! // A receiver client on the last node, a sender on the first.
//! let rx = sim.add_process(ClientProcess::new(ClientConfig {
//!     daemon: overlay.daemon(NodeId(2)), port: 7, joins: vec![], flows: vec![],
//! }));
//! let _tx = sim.add_process(ClientProcess::new(ClientConfig {
//!     daemon: overlay.daemon(NodeId(0)), port: 5, joins: vec![],
//!     flows: vec![ClientFlow {
//!         local_flow: 1,
//!         dst: Destination::Unicast(OverlayAddr::new(NodeId(2), 7)),
//!         spec: FlowSpec::reliable(),
//!         workload: Workload::Cbr {
//!             size: 1200,
//!             interval: SimDuration::from_millis(10),
//!             count: 50,
//!             start: SimTime::from_millis(500),
//!         },
//!     }],
//! }));
//!
//! sim.run_until(SimTime::from_secs(3));
//! let client = sim.proc_ref::<ClientProcess>(rx).unwrap();
//! assert_eq!(client.sole_recv().received, 50);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod adversary;
pub mod auth;
pub mod builder;
pub mod client;
pub mod dedup;
pub mod flow;
pub mod intercept;
pub mod linkproto;
pub mod metrics;
pub mod node;
pub mod obs;
pub mod packet;
pub mod routing;
pub mod service;
pub mod session;
pub mod state;
pub mod watch;
pub mod wire;

pub use addr::{Destination, FlowKey, GroupId, OverlayAddr, VirtualPort};
pub use builder::{OverlayBuilder, OverlayHandle};
pub use client::{ClientConfig, ClientFlow, ClientProcess, Workload};
pub use flow::{FlowContext, FlowRole, FlowTable};
pub use node::{NodeConfig, OverlayNode, TimerKey};
pub use obs::{FlowObs, NodeObs};
pub use packet::{ClientOp, DataPacket, SessionEvent, Wire};
pub use service::{FlowSpec, LinkService, Priority, RealtimeParams, RoutingService, SourceRoute};
pub use watch::{AdaptiveSampler, WatchConfig, WatchState};
