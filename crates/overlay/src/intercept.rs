//! Seamless packet interception for unmodified applications (§II-B).
//!
//! "Applications can either connect to the overlay via an API similar to the
//! Unix sockets interface or use seamless packet interception techniques
//! that allow unmodified applications to take advantage of overlay
//! services."
//!
//! An [`Interceptor`] sits between a legacy application and an overlay
//! daemon (in a deployment: a TUN device or divert socket; here: a process
//! the application's raw datagrams are routed through). The application
//! just sends datagrams to overlay addresses ([`Wire::Raw`]); the
//! interceptor lazily opens one overlay flow per destination, applying a
//! per-destination [`InterceptPolicy`] to choose services, and hands
//! deliveries back as raw datagrams. The application never learns the
//! overlay exists.

use std::collections::HashMap;

use bytes::Bytes;
use son_netsim::link::PipeId;
use son_netsim::process::{Process, ProcessId};
use son_netsim::sim::Ctx;
use son_netsim::time::{SimDuration, SimTime};

use crate::addr::{Destination, OverlayAddr};
use crate::node::CLIENT_IPC_DELAY;
use crate::packet::{ClientOp, SessionEvent, Wire};
use crate::service::FlowSpec;

/// Chooses the overlay services applied to intercepted traffic, per
/// destination. The operator configures this; the application cannot see it.
#[derive(Debug, Clone)]
pub struct InterceptPolicy {
    /// Services applied when no rule matches.
    pub default_spec: FlowSpec,
    /// Per-destination overrides, first match wins.
    pub rules: Vec<(OverlayAddr, FlowSpec)>,
}

impl InterceptPolicy {
    /// A policy applying one spec to everything.
    #[must_use]
    pub fn uniform(spec: FlowSpec) -> Self {
        InterceptPolicy {
            default_spec: spec,
            rules: Vec::new(),
        }
    }

    /// Adds a per-destination rule.
    #[must_use]
    pub fn with_rule(mut self, dst: OverlayAddr, spec: FlowSpec) -> Self {
        self.rules.push((dst, spec));
        self
    }

    /// The spec for a destination.
    #[must_use]
    pub fn spec_for(&self, dst: OverlayAddr) -> FlowSpec {
        self.rules
            .iter()
            .find(|(d, _)| *d == dst)
            .map_or(self.default_spec, |(_, s)| *s)
    }
}

/// The transparent shim between one legacy application process and an
/// overlay daemon.
#[derive(Debug)]
pub struct Interceptor {
    daemon: ProcessId,
    /// The legacy application whose traffic is being intercepted.
    app: ProcessId,
    port: u16,
    policy: InterceptPolicy,
    /// Destination -> local flow id, opened lazily on first datagram.
    flows: HashMap<OverlayAddr, u32>,
    next_flow: u32,
    /// Datagrams intercepted outbound.
    pub intercepted_out: u64,
    /// Datagrams handed back to the application.
    pub delivered_in: u64,
}

impl Interceptor {
    /// Creates an interceptor for `app`, attaching to `daemon` on `port`.
    #[must_use]
    pub fn new(daemon: ProcessId, app: ProcessId, port: u16, policy: InterceptPolicy) -> Self {
        Interceptor {
            daemon,
            app,
            port,
            policy,
            flows: HashMap::new(),
            next_flow: 1,
            intercepted_out: 0,
            delivered_in: 0,
        }
    }

    fn daemon_send(&self, ctx: &mut Ctx<'_, Wire>, op: ClientOp) {
        ctx.send_direct(self.daemon, CLIENT_IPC_DELAY, Wire::FromClient(op));
    }
}

impl Process<Wire> for Interceptor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        self.daemon_send(ctx, ClientOp::Connect { port: self.port });
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        from: ProcessId,
        _pipe: Option<PipeId>,
        msg: Wire,
    ) {
        match msg {
            // Outbound: a raw datagram captured from the application.
            Wire::Raw { to, size, payload } if from == self.app => {
                self.intercepted_out += 1;
                let local_flow = match self.flows.get(&to) {
                    Some(&f) => f,
                    None => {
                        let f = self.next_flow;
                        self.next_flow += 1;
                        self.flows.insert(to, f);
                        self.daemon_send(
                            ctx,
                            ClientOp::OpenFlow {
                                local_flow: f,
                                dst: Destination::Unicast(to),
                                spec: self.policy.spec_for(to),
                            },
                        );
                        f
                    }
                };
                self.daemon_send(
                    ctx,
                    ClientOp::Send {
                        local_flow,
                        size,
                        payload,
                    },
                );
            }
            // Inbound: an overlay delivery, re-materialized as a raw datagram.
            Wire::ToClient(SessionEvent::Deliver {
                flow,
                size,
                payload,
                ..
            }) => {
                self.delivered_in += 1;
                ctx.send_direct(
                    self.app,
                    CLIENT_IPC_DELAY,
                    Wire::Raw {
                        to: flow.src,
                        size,
                        payload,
                    },
                );
            }
            _ => {}
        }
    }
}

/// A stand-in for an unmodified application: fires raw datagrams at a
/// destination on a fixed schedule and records what comes back. It has no
/// knowledge of flows, services, or the overlay.
#[derive(Debug)]
pub struct LegacyApp {
    /// Where this app's traffic is routed (its interceptor).
    shim: Option<ProcessId>,
    dst: OverlayAddr,
    size: usize,
    interval: SimDuration,
    count: u64,
    start: SimTime,
    /// Datagrams sent.
    pub sent: u64,
    /// Datagrams received, with arrival times.
    pub received: Vec<(SimTime, OverlayAddr)>,
}

impl LegacyApp {
    /// Creates an app that sends `count` datagrams of `size` bytes to `dst`
    /// every `interval`, starting at `start`.
    #[must_use]
    pub fn new(
        dst: OverlayAddr,
        size: usize,
        interval: SimDuration,
        count: u64,
        start: SimTime,
    ) -> Self {
        LegacyApp {
            shim: None,
            dst,
            size,
            interval,
            count,
            start,
            sent: 0,
            received: Vec::new(),
        }
    }

    /// Routes this app's traffic through `shim` (set after the interceptor
    /// process exists).
    pub fn attach(&mut self, shim: ProcessId) {
        self.shim = Some(shim);
    }
}

impl Process<Wire> for LegacyApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        ctx.set_timer(self.start.saturating_since(ctx.now()), 0);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        _from: ProcessId,
        _pipe: Option<PipeId>,
        msg: Wire,
    ) {
        if let Wire::Raw { to, .. } = msg {
            self.received.push((ctx.now(), to));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, _token: u64) {
        if self.sent >= self.count {
            return;
        }
        if let Some(shim) = self.shim {
            self.sent += 1;
            ctx.send_direct(
                shim,
                CLIENT_IPC_DELAY,
                Wire::Raw {
                    to: self.dst,
                    size: self.size,
                    payload: Bytes::new(),
                },
            );
        }
        ctx.set_timer(self.interval, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{chain_topology, OverlayBuilder};
    use crate::service::LinkService;
    use son_netsim::loss::LossConfig;
    use son_netsim::sim::Simulation;
    use son_topo::NodeId;

    #[test]
    fn policy_matching() {
        let a = OverlayAddr::new(NodeId(1), 5);
        let b = OverlayAddr::new(NodeId(2), 5);
        let policy =
            InterceptPolicy::uniform(FlowSpec::best_effort()).with_rule(a, FlowSpec::reliable());
        assert_eq!(policy.spec_for(a).link, LinkService::Reliable);
        assert_eq!(policy.spec_for(b).link, LinkService::BestEffort);
    }

    /// Two unmodified apps exchange datagrams through interceptors over a
    /// lossy overlay; the reliable policy recovers every loss without the
    /// apps knowing anything happened.
    #[test]
    fn unmodified_apps_get_overlay_services_transparently() {
        let mut sim: Simulation<Wire> = Simulation::new(55);
        let overlay = OverlayBuilder::new(chain_topology(4, 10.0))
            .default_loss(LossConfig::Bernoulli { p: 0.03 })
            .build(&mut sim);

        // App A at node 0 talks to "address n3:90"; app B at node 3 replies
        // to whatever address its datagrams appear to come from.
        let peer_b = OverlayAddr::new(NodeId(3), 90);
        let app_a = sim.add_process(LegacyApp::new(
            peer_b,
            400,
            SimDuration::from_millis(10),
            300,
            SimTime::from_millis(500),
        ));
        let shim_a = sim.add_process(Interceptor::new(
            overlay.daemon(NodeId(0)),
            app_a,
            80,
            InterceptPolicy::uniform(FlowSpec::reliable()),
        ));
        sim.proc_mut::<LegacyApp>(app_a).unwrap().attach(shim_a);

        // App B never sends; its interceptor binds the port A targets.
        let app_b = sim.add_process(LegacyApp::new(
            OverlayAddr::new(NodeId(0), 80),
            400,
            SimDuration::from_millis(10),
            0, // pure receiver
            SimTime::MAX,
        ));
        let shim_b = sim.add_process(Interceptor::new(
            overlay.daemon(NodeId(3)),
            app_b,
            90,
            InterceptPolicy::uniform(FlowSpec::reliable()),
        ));
        sim.proc_mut::<LegacyApp>(app_b).unwrap().attach(shim_b);

        sim.run_until(SimTime::from_secs(20));

        let a = sim.proc_ref::<LegacyApp>(app_a).unwrap();
        assert_eq!(a.sent, 300);
        let b = sim.proc_ref::<LegacyApp>(app_b).unwrap();
        assert_eq!(
            b.received.len(),
            300,
            "reliable policy recovered all losses"
        );
        // Every datagram appears to come from A's overlay address.
        assert!(b
            .received
            .iter()
            .all(|&(_, from)| from == OverlayAddr::new(NodeId(0), 80)));
        let shim = sim.proc_ref::<Interceptor>(shim_a).unwrap();
        assert_eq!(shim.intercepted_out, 300);
    }

    #[test]
    fn per_destination_policy_selects_different_services() {
        let mut sim: Simulation<Wire> = Simulation::new(56);
        let overlay = OverlayBuilder::new(chain_topology(3, 10.0)).build(&mut sim);
        let dst_fast = OverlayAddr::new(NodeId(2), 91);
        let dst_safe = OverlayAddr::new(NodeId(2), 92);

        // Two apps behind ONE policy-bearing interceptor setup: app sends to
        // both destinations alternately — model with two apps for simplicity.
        let mk_app = |sim: &mut Simulation<Wire>, dst| {
            sim.add_process(LegacyApp::new(
                dst,
                100,
                SimDuration::from_millis(20),
                50,
                SimTime::from_millis(500),
            ))
        };
        let app1 = mk_app(&mut sim, dst_fast);
        let app2 = mk_app(&mut sim, dst_safe);
        let policy = InterceptPolicy::uniform(FlowSpec::best_effort())
            .with_rule(dst_safe, FlowSpec::reliable());
        let shim1 = sim.add_process(Interceptor::new(
            overlay.daemon(NodeId(0)),
            app1,
            70,
            policy.clone(),
        ));
        let shim2 = sim.add_process(Interceptor::new(
            overlay.daemon(NodeId(0)),
            app2,
            71,
            policy,
        ));
        sim.proc_mut::<LegacyApp>(app1).unwrap().attach(shim1);
        sim.proc_mut::<LegacyApp>(app2).unwrap().attach(shim2);

        // Receivers for both ports.
        for (port, app_dst) in [
            (91u16, OverlayAddr::new(NodeId(0), 70)),
            (92, OverlayAddr::new(NodeId(0), 71)),
        ] {
            let rx_app = sim.add_process(LegacyApp::new(
                app_dst,
                1,
                SimDuration::MAX,
                0,
                SimTime::MAX,
            ));
            let rx_shim = sim.add_process(Interceptor::new(
                overlay.daemon(NodeId(2)),
                rx_app,
                port,
                InterceptPolicy::uniform(FlowSpec::best_effort()),
            ));
            sim.proc_mut::<LegacyApp>(rx_app).unwrap().attach(rx_shim);
        }
        sim.run_until(SimTime::from_secs(5));

        // The daemon at node 0 carried one best-effort and one reliable flow.
        let node = sim
            .proc_ref::<crate::node::OverlayNode>(overlay.daemon(NodeId(0)))
            .unwrap();
        assert_eq!(node.service_stats(LinkService::BestEffort).sent, 50);
        assert_eq!(node.service_stats(LinkService::Reliable).sent, 50);
    }
}
