//! The overlay node daemon: Fig. 2 assembled.
//!
//! An [`OverlayNode`] "acts as both server and router: as a server it
//! accepts and serves client connections, while as a router it performs
//! network functions such as forwarding packets destined for other overlay
//! nodes". It runs as a single [`Process`] in the simulator and wires
//! together the session interface, the routing level (link-state and
//! source-based over shared connectivity/group state), and the link level
//! (one protocol instance per service slot per incident link).

use std::collections::HashMap;

use son_netsim::link::PipeId;
use son_netsim::process::{Process, ProcessId};
use son_netsim::sim::Ctx;
use son_netsim::time::SimDuration;
use son_obs::{DropClass, SpanStage};
use son_topo::{EdgeId, Graph, NodeId};

use crate::addr::{Destination, FlowKey, GroupId, VirtualPort};
use crate::adversary::{Behavior, Verdict};
use crate::auth::KeyRegistry;
use crate::dedup::DedupTable;
use crate::linkproto::{
    BestEffortLink, FecLink, FifoLink, ItPriorityLink, ItReliableLink, LinkAction, LinkEvent,
    LinkProto, LinkProtoStats, RealtimeLink, ReliableLink,
};
use crate::metrics::NodeMetrics;
use crate::obs::NodeObs;
use crate::packet::{ClientOp, Control, DataPacket, Wire};
use crate::routing::Forwarding;
use crate::service::{
    slot_label, FlowSpec, LinkService, RealtimeParams, RoutingService, SERVICE_SLOTS,
};
use crate::session::{SessionAction, SessionTable};
use crate::state::connectivity::{ConnAction, ConnectivityConfig, ConnectivityMonitor};
use crate::state::groups::{GroupAction, GroupTable};

/// Local IPC latency between a client and its colocated daemon.
pub const CLIENT_IPC_DELAY: SimDuration = SimDuration::from_micros(50);

/// Static configuration of an overlay node daemon.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Connectivity-monitor settings (hello cadence, down thresholds).
    pub connectivity: ConnectivityConfig,
    /// Reliable Data Link RTO as a multiple of the link's nominal latency.
    pub rto_factor: f64,
    /// Lower bound on the Reliable Data Link RTO.
    pub rto_min: SimDuration,
    /// Default NM-Strikes parameters (overridden per flow).
    pub realtime: RealtimeParams,
    /// Egress pacing rate for the fair schedulers, bits/second
    /// (`None` disables pacing — fine when fairness is not under test).
    pub it_rate_bps: Option<u64>,
    /// Per-source buffer bound for IT-Priority, in packets.
    pub it_source_cap: usize,
    /// Shared buffer bound for the FIFO baseline, in packets.
    pub fifo_cap: usize,
    /// Default FEC code (overridden per flow).
    pub fec: crate::service::FecParams,
    /// Verify per-packet authentication tags and drop failures.
    pub auth_enabled: bool,
    /// Initial TTL stamped on packets at the ingress.
    pub ttl: u8,
    /// Record per-packet lifecycle spans (counters are always on; this
    /// additionally fills the node's bounded span ring).
    pub obs_detail: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            connectivity: ConnectivityConfig::default(),
            rto_factor: 3.0,
            rto_min: SimDuration::from_millis(2),
            realtime: RealtimeParams::live_tv(),
            it_rate_bps: None,
            it_source_cap: 64,
            fifo_cap: 64,
            fec: crate::service::FecParams::light(),
            auth_enabled: false,
            ttl: 32,
            obs_detail: false,
        }
    }
}

/// One incident overlay link as seen by the daemon: the neighbor, one pipe
/// pair per provider, and the per-service protocol instances.
struct LinkPort {
    edge: EdgeId,
    neighbor: NodeId,
    /// Outgoing pipes, one per provider binding.
    out_pipes: Vec<PipeId>,
    active_provider: usize,
    protos: Vec<Box<dyn LinkProto>>,
    /// Nominal one-way latency, for diagnostics.
    #[allow(dead_code)]
    nominal_latency_ms: f64,
}

impl std::fmt::Debug for LinkPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkPort")
            .field("edge", &self.edge)
            .field("neighbor", &self.neighbor)
            .field("providers", &self.out_pipes.len())
            .finish_non_exhaustive()
    }
}

// Timer token component tags (top 8 bits of the u64 token).
const TOK_CONN_TICK: u64 = 1 << 56;
const TOK_LINK: u64 = 2 << 56;
const TOK_SESSION: u64 = 3 << 56;
const TOK_FLOOD: u64 = 4 << 56;
const TOK_DELAYED_FWD: u64 = 5 << 56;
const TOK_MASK: u64 = 0xff << 56;

/// The overlay node daemon.
#[derive(Debug)]
pub struct OverlayNode {
    me: NodeId,
    config: NodeConfig,
    links: Vec<LinkPort>,
    /// Incoming pipe -> (local link index, provider index).
    in_pipe_index: HashMap<PipeId, (usize, usize)>,
    /// Edge id -> local link index.
    edge_index: HashMap<EdgeId, usize>,
    conn: ConnectivityMonitor,
    groups: GroupTable,
    forwarding: Forwarding,
    sessions: SessionTable,
    dedup: DedupTable,
    keys: KeyRegistry,
    behavior: Behavior,
    obs: NodeObs,
    /// Source-route stamps cached per flow, keyed by connectivity version.
    mask_cache: HashMap<FlowKey, (u64, son_topo::EdgeMask)>,
    /// Group member sets cached per group, keyed by the group-state version
    /// (so the multicast fast path does not rebuild the `Vec` per packet).
    member_cache: HashMap<GroupId, (u64, Vec<NodeId>)>,
    /// Reusable out-edge buffer for the per-packet forwarding decision.
    out_buf: Vec<EdgeId>,
    /// Upstream link of each IT-Reliable flow (for credit grants).
    it_upstream: HashMap<FlowKey, usize>,
    /// Packets held by a Delay adversary, keyed by timer token payload.
    delayed: HashMap<u32, (DataPacket, Option<EdgeId>)>,
    next_delay_token: u32,
    flood_seq: u64,
    /// The configured overlay topology (kept for re-wiring).
    topology: Graph,
}

impl OverlayNode {
    /// Creates an unwired daemon for node `me` over the configured
    /// `topology`. The builder wires its links with
    /// [`OverlayNode::wire_links`] once pipes exist (a daemon must exist in
    /// the simulator before pipes to it can be created).
    #[must_use]
    pub fn new(me: NodeId, topology: Graph, keys: KeyRegistry, config: NodeConfig) -> Self {
        let conn = ConnectivityMonitor::new(me, topology.clone(), Vec::new(), config.connectivity);
        OverlayNode {
            me,
            forwarding: Forwarding::new(me, topology.clone()),
            sessions: SessionTable::new(me),
            groups: GroupTable::new(me),
            conn,
            links: Vec::new(),
            in_pipe_index: HashMap::new(),
            edge_index: HashMap::new(),
            dedup: DedupTable::new(),
            keys,
            behavior: Behavior::Correct,
            obs: NodeObs::new(me, config.obs_detail),
            mask_cache: HashMap::new(),
            member_cache: HashMap::new(),
            out_buf: Vec::new(),
            it_upstream: HashMap::new(),
            delayed: HashMap::new(),
            next_delay_token: 0,
            flood_seq: 0,
            config,
            topology,
        }
    }

    /// Installs this node's incident links: `(edge, neighbor, out_pipes,
    /// nominal_latency_ms)` in local link order. Must be called before the
    /// simulation starts; incoming pipes are registered separately via
    /// [`OverlayNode::register_in_pipe`].
    pub fn wire_links(&mut self, links: Vec<(EdgeId, NodeId, Vec<PipeId>, f64)>) {
        let conn_links: Vec<(EdgeId, usize, f64)> = links
            .iter()
            .map(|(e, _, pipes, lat)| (*e, pipes.len(), *lat))
            .collect();
        self.conn = ConnectivityMonitor::new(
            self.me,
            self.topology.clone(),
            conn_links,
            self.config.connectivity,
        );
        self.edge_index.clear();
        self.links = links
            .into_iter()
            .enumerate()
            .map(|(i, (edge, neighbor, out_pipes, nominal))| {
                self.edge_index.insert(edge, i);
                let rto = SimDuration::from_millis_f64(nominal * self.config.rto_factor)
                    .max(self.config.rto_min);
                let protos: Vec<Box<dyn LinkProto>> = vec![
                    Box::new(BestEffortLink::new()),
                    Box::new(ReliableLink::new(rto)),
                    Box::new(RealtimeLink::new(self.config.realtime)),
                    Box::new(ItPriorityLink::new(
                        self.config.it_source_cap,
                        self.config.it_rate_bps,
                    )),
                    Box::new(ItReliableLink::new(rto, self.config.it_rate_bps)),
                    Box::new(FifoLink::new(self.config.fifo_cap, self.config.it_rate_bps)),
                    Box::new(FecLink::new(self.config.fec)),
                ];
                LinkPort {
                    edge,
                    neighbor,
                    out_pipes,
                    active_provider: 0,
                    protos,
                    nominal_latency_ms: nominal,
                }
            })
            .collect();
    }

    /// Registers the incoming pipe of `(link, provider)` so arrivals can be
    /// attributed. Called by the builder.
    pub fn register_in_pipe(&mut self, pipe: PipeId, link: usize, provider: usize) {
        self.in_pipe_index.insert(pipe, (link, provider));
    }

    /// Marks this node as compromised with the given behaviour.
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// This node's id in the overlay topology.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The legacy metrics view, snapshotted from the node's registry.
    #[must_use]
    pub fn metrics(&self) -> NodeMetrics {
        self.obs.snapshot()
    }

    /// The node's observability state: metrics registry and lifecycle spans.
    #[must_use]
    pub fn obs(&self) -> &NodeObs {
        &self.obs
    }

    /// Link protocol statistics for `(local link index, service)`.
    #[must_use]
    pub fn link_stats(&self, link: usize, service: LinkService) -> LinkProtoStats {
        self.links[link].protos[service.slot()].stats()
    }

    /// Aggregated protocol statistics for a service across all links.
    #[must_use]
    pub fn service_stats(&self, service: LinkService) -> LinkProtoStats {
        let mut total = LinkProtoStats::default();
        for l in &self.links {
            let s = l.protos[service.slot()].stats();
            total.sent += s.sent;
            total.retransmitted += s.retransmitted;
            total.ctl_sent += s.ctl_sent;
            total.received += s.received;
            total.dup_received += s.dup_received;
            total.dropped += s.dropped;
        }
        total
    }

    /// The session table (delivery stats, connected clients).
    #[must_use]
    pub fn sessions(&self) -> &SessionTable {
        &self.sessions
    }

    /// The group table.
    #[must_use]
    pub fn groups(&self) -> &GroupTable {
        &self.groups
    }

    /// The connectivity monitor.
    #[must_use]
    pub fn connectivity(&self) -> &ConnectivityMonitor {
        &self.conn
    }

    /// The de-duplication table.
    #[must_use]
    pub fn dedup(&self) -> &DedupTable {
        &self.dedup
    }

    /// A human-readable status snapshot: links with measured quality and
    /// provider selection, shared-state versions, groups, and headline
    /// counters — the operator's `spines_monitor`-style view.
    #[must_use]
    pub fn status_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "node {} | topology v{} groups v{}",
            self.me,
            self.conn.version(),
            self.groups.version()
        );
        for (i, port) in self.links.iter().enumerate() {
            let (lat, loss) = self.conn.link_quality(i);
            let _ = writeln!(
                out,
                "  link[{i}] {} -> {} | {} | provider {}/{} | {:.2}ms loss {:.1}%",
                port.edge,
                port.neighbor,
                if self.conn.link_up(i) { "up" } else { "DOWN" },
                port.active_provider + 1,
                port.out_pipes.len(),
                lat,
                loss * 100.0,
            );
        }
        let ports = self.sessions.ports();
        let _ = writeln!(
            out,
            "  clients: {:?}",
            ports.iter().map(|p| p.0).collect::<Vec<_>>()
        );
        let m = self.obs.snapshot();
        let _ = writeln!(
            out,
            "  forwarded {} | delivered {} | dedup {} | unroutable {} | auth_fail {}",
            m.forwarded, m.delivered_local, m.dedup_suppressed, m.unroutable, m.auth_failures,
        );
        out
    }

    /// Per-source forwarded counts of a link's IT-Priority scheduler
    /// (downcast helper for fairness experiments).
    #[must_use]
    pub fn it_priority_forwarded(
        &self,
        link: usize,
    ) -> Option<Vec<(crate::addr::OverlayAddr, u64)>> {
        let proto = self.links.get(link)?.protos[LinkService::ItPriority.slot()].as_ref();
        let any: &dyn std::any::Any = proto as &dyn std::any::Any;
        any.downcast_ref::<ItPriorityLink>().map(|p| {
            p.forwarded_by_source()
                .iter()
                .map(|(&a, &c)| (a, c))
                .collect()
        })
    }

    /// Per-source forwarded counts of a link's FIFO baseline.
    #[must_use]
    pub fn fifo_forwarded(&self, link: usize) -> Option<Vec<(crate::addr::OverlayAddr, u64)>> {
        let proto = self.links.get(link)?.protos[LinkService::Fifo.slot()].as_ref();
        let any: &dyn std::any::Any = proto as &dyn std::any::Any;
        any.downcast_ref::<FifoLink>().map(|p| {
            p.forwarded_by_source()
                .iter()
                .map(|(&a, &c)| (a, c))
                .collect()
        })
    }

    // --- internal helpers -------------------------------------------------

    fn send_on_link(
        &self,
        ctx: &mut Ctx<'_, Wire>,
        link: usize,
        provider: Option<usize>,
        wire: Wire,
    ) {
        let port = &self.links[link];
        let idx = provider
            .unwrap_or(port.active_provider)
            .min(port.out_pipes.len() - 1);
        ctx.send(port.out_pipes[idx], wire);
    }

    fn run_link_proto(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        link: usize,
        slot: usize,
        feed: impl FnOnce(&mut dyn LinkProto, &mut Vec<LinkAction>),
    ) {
        let mut actions = Vec::new();
        feed(self.links[link].protos[slot].as_mut(), &mut actions);
        self.apply_link_actions(ctx, link, slot, actions);
    }

    fn apply_link_actions(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        link: usize,
        slot: usize,
        actions: Vec<LinkAction>,
    ) {
        // A protocol reports a recovery immediately before delivering the
        // recovered packet; remember it so the next Deliver gets the span.
        let mut pending_recover = false;
        for action in actions {
            match action {
                LinkAction::Transmit(pkt) => {
                    self.obs
                        .span(ctx.now(), &pkt, SpanStage::Transmit, Some(link));
                    self.send_on_link(ctx, link, None, Wire::Data(pkt));
                }
                LinkAction::TransmitCtl(ctl) => {
                    self.send_on_link(
                        ctx,
                        link,
                        None,
                        Wire::Ctl {
                            slot: slot as u8,
                            ctl,
                        },
                    );
                }
                LinkAction::Deliver(pkt) => {
                    if std::mem::take(&mut pending_recover) {
                        self.obs
                            .span(ctx.now(), &pkt, SpanStage::Recover, Some(link));
                    }
                    let in_edge = self.links[link].edge;
                    // Remember the upstream of IT-Reliable flows for credits.
                    if matches!(pkt.spec.link, LinkService::ItReliable) {
                        self.it_upstream.insert(pkt.flow, link);
                    }
                    self.handle_upward(ctx, pkt, Some(in_edge), Some(link));
                }
                LinkAction::Observe(event) => {
                    if matches!(event, LinkEvent::Recovered { .. }) {
                        pending_recover = true;
                    }
                    self.obs.link_event(slot_label(slot), event);
                }
                LinkAction::Timer { delay, token } => {
                    let encoded =
                        TOK_LINK | ((link as u64) << 40) | ((slot as u64) << 32) | u64::from(token);
                    ctx.set_timer(delay, encoded);
                }
                LinkAction::PauseFlow(flow) => {
                    let mut sa = Vec::new();
                    self.sessions.pause_flow(flow, &mut sa);
                    self.apply_session_actions(ctx, sa);
                }
                LinkAction::ResumeFlow(flow) => {
                    let mut sa = Vec::new();
                    self.sessions.resume_flow(flow, &mut sa);
                    self.apply_session_actions(ctx, sa);
                }
                LinkAction::Consumed(flow) => {
                    // Grant a credit on the flow's upstream link, if any
                    // (none at the ingress node).
                    let now = ctx.now();
                    if let Some(&up) = self.it_upstream.get(&flow) {
                        if up != link {
                            self.run_link_proto(ctx, up, slot, move |p, out| {
                                p.on_consumed(now, flow, out);
                            });
                        }
                    }
                }
            }
        }
    }

    fn apply_session_actions(&mut self, ctx: &mut Ctx<'_, Wire>, actions: Vec<SessionAction>) {
        for action in actions {
            match action {
                SessionAction::ToClient { port, event } => {
                    if let Some(proc) = self.sessions.client_proc(port) {
                        ctx.send_direct(proc, CLIENT_IPC_DELAY, Wire::ToClient(event));
                    }
                }
                SessionAction::Timer { delay, token } => {
                    ctx.set_timer(delay, TOK_SESSION | u64::from(token));
                }
            }
        }
    }

    fn apply_conn_actions(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        actions: Vec<ConnAction>,
        reply_provider: Option<usize>,
    ) {
        for action in actions {
            match action {
                ConnAction::Send { link, msg } => {
                    self.send_on_link(ctx, link, reply_provider, Wire::Control(msg));
                }
                ConnAction::Flood { except, msg } => {
                    for i in 0..self.links.len() {
                        if Some(i) != except {
                            self.send_on_link(ctx, i, None, Wire::Control(msg.clone()));
                        }
                    }
                }
                ConnAction::SwitchProvider { link, isp_index } => {
                    let count = self.links[link].out_pipes.len();
                    self.links[link].active_provider = isp_index % count.max(1);
                    self.obs.named("provider_switches");
                }
                ConnAction::TopologyChanged => {
                    // The monitor only emits this on a real change, so the
                    // version moved: install the shared snapshot (no graph
                    // clone) and drop the version-scoped stamp cache.
                    let snap = self.conn.snapshot();
                    self.forwarding.install(snap, self.conn.version());
                    self.mask_cache.clear();
                    self.obs.named("reroutes");
                }
            }
        }
    }

    fn apply_group_actions(&mut self, ctx: &mut Ctx<'_, Wire>, actions: Vec<GroupAction>) {
        for GroupAction::Flood { except, update } in actions {
            for i in 0..self.links.len() {
                if Some(i) != except {
                    self.send_on_link(
                        ctx,
                        i,
                        None,
                        Wire::Control(Control::GroupUpdate(update.clone())),
                    );
                }
            }
        }
    }

    /// Local delivery targets of a packet, if any.
    fn local_targets(&mut self, pkt: &DataPacket) -> Vec<VirtualPort> {
        match pkt.flow.dst() {
            Destination::Unicast(addr) => {
                if addr.node == self.me && self.sessions.client_proc(addr.port).is_some() {
                    vec![addr.port]
                } else {
                    Vec::new()
                }
            }
            Destination::Multicast(group) => self.groups.local_members(group),
            Destination::Anycast(group) => {
                if pkt.resolved_dst == Some(self.me) {
                    // Deliver to exactly one local member.
                    self.groups
                        .local_members(group)
                        .into_iter()
                        .take(1)
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Computes the next-hop out-edges for forwarding a packet from this
    /// node into a caller-owned buffer (cleared first). Every consulted
    /// source — the dense next-hop table, the multicast cache, the member
    /// cache — is version-keyed, so a warm call allocates nothing.
    fn out_edges_into(&mut self, pkt: &DataPacket, in_edge: Option<EdgeId>, out: &mut Vec<EdgeId>) {
        out.clear();
        if let Some(mask) = &pkt.mask {
            self.forwarding.mask_out_edges_into(mask, in_edge, out);
            return;
        }
        match pkt.flow.dst() {
            Destination::Unicast(addr) => {
                if addr.node != self.me {
                    out.extend(self.forwarding.unicast_next_hop(addr.node));
                }
            }
            Destination::Multicast(group) => {
                let gv = self.groups.version();
                if self.member_cache.get(&group).is_none_or(|&(v, _)| v != gv) {
                    let members = self.groups.members_of(group);
                    self.member_cache.insert(group, (gv, members));
                }
                let members = &self.member_cache[&group].1;
                out.extend_from_slice(self.forwarding.multicast_out_edges(pkt.origin, members));
            }
            Destination::Anycast(_) => {
                if let Some(dst) = pkt.resolved_dst {
                    if dst != self.me {
                        out.extend(self.forwarding.unicast_next_hop(dst));
                    }
                }
            }
        }
    }

    /// Grants an IT-Reliable consumption credit to the neighbor on `link`.
    fn grant_consumed(&mut self, ctx: &mut Ctx<'_, Wire>, link: usize, flow: FlowKey) {
        let now = ctx.now();
        let slot = LinkService::ItReliable.slot();
        self.run_link_proto(ctx, link, slot, move |p, out| {
            p.on_consumed(now, flow, out);
        });
    }

    /// Core data-plane handling for a packet that surfaced at this node
    /// (from a link protocol identified by `in_link`, or freshly built at
    /// the ingress when both are `None`).
    fn handle_upward(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        pkt: DataPacket,
        in_edge: Option<EdgeId>,
        in_link: Option<usize>,
    ) {
        let is_it_reliable = matches!(pkt.spec.link, LinkService::ItReliable);
        // Authentication: drop packets that do not verify (§IV-B).
        if self.config.auth_enabled
            && !self
                .keys
                .verify(pkt.origin, pkt.flow, pkt.flow_seq, pkt.size, pkt.auth_tag)
        {
            self.obs.drop(DropClass::Auth);
            self.obs
                .span(ctx.now(), &pkt, SpanStage::Drop(DropClass::Auth), in_link);
            return;
        }
        // De-duplication for redundant dissemination: only the first copy is
        // processed; the rest stop here (§II-B). A suppressed IT-Reliable
        // copy is still *consumed* from its sender's perspective, so the
        // credit goes back (no leak under redundant routing).
        if pkt.mask.is_some() && !self.dedup.first_sighting(pkt.flow, pkt.flow_seq) {
            self.obs.drop(DropClass::DedupDuplicate);
            if is_it_reliable {
                if let Some(link) = in_link {
                    self.grant_consumed(ctx, link, pkt.flow);
                }
            }
            return;
        }
        // Local delivery.
        let targets = self.local_targets(&pkt);
        if !targets.is_empty() {
            let now = ctx.now();
            self.obs
                .delivered_local(now.saturating_since(pkt.created_at).as_nanos());
            self.obs.span(now, &pkt, SpanStage::Deliver, in_link);
            let mut sa = Vec::new();
            self.sessions
                .deliver(ctx.now(), pkt.clone(), &targets, &mut sa);
            self.apply_session_actions(ctx, sa);
        }
        // The forwarding decision, made once for both the IT-Reliable
        // credit check and the onward transmission (the buffer is node
        // state, reused across packets).
        let mut outs = std::mem::take(&mut self.out_buf);
        self.out_edges_into(&pkt, in_edge, &mut outs);
        // IT-Reliable credit accounting: a packet that terminates here (no
        // onward hop) is consumed the moment it arrives, so the neighbor
        // that sent this copy gets its credit back immediately.
        if let Some(link) = in_link {
            if is_it_reliable && outs.is_empty() {
                self.grant_consumed(ctx, link, pkt.flow);
            }
        }
        // Onward forwarding.
        self.forward_onward(ctx, pkt, in_edge, &outs);
        self.out_buf = outs;
    }

    fn forward_onward(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        mut pkt: DataPacket,
        in_edge: Option<EdgeId>,
        outs: &[EdgeId],
    ) {
        if outs.is_empty() {
            // A unicast/anycast packet that has not reached its destination
            // and has no usable next hop is an unroutable drop (e.g. the
            // route vanished mid-flight). An empty out-set is otherwise the
            // normal end of dissemination: local delivery, a mask leaf, or
            // no downstream group members.
            let stranded = pkt.mask.is_none()
                && match pkt.flow.dst() {
                    Destination::Unicast(a) => a.node != self.me,
                    Destination::Anycast(_) => pkt.resolved_dst.is_some_and(|d| d != self.me),
                    Destination::Multicast(_) => false,
                };
            if stranded {
                self.obs.drop(DropClass::Unroutable);
                self.obs.span(
                    ctx.now(),
                    &pkt,
                    SpanStage::Drop(DropClass::Unroutable),
                    None,
                );
            }
            return;
        }
        if pkt.ttl == 0 {
            self.obs.drop(DropClass::Ttl);
            self.obs
                .span(ctx.now(), &pkt, SpanStage::Drop(DropClass::Ttl), None);
            return;
        }
        pkt.ttl -= 1;
        // Compromised behaviour applies to *transit* packets only: a node
        // always serves its own clients' sends faithfully (an attacker
        // controlling the client side is modelled as a flooding client).
        if in_edge.is_some() {
            match self.behavior.forward_verdict(&pkt) {
                Verdict::Forward => {}
                Verdict::Drop => {
                    self.obs.drop(DropClass::Adversary);
                    self.obs
                        .span(ctx.now(), &pkt, SpanStage::Drop(DropClass::Adversary), None);
                    return;
                }
                Verdict::Delay(extra) => {
                    let token = self.next_delay_token;
                    self.next_delay_token = self.next_delay_token.wrapping_add(1);
                    self.delayed.insert(token, (pkt, in_edge));
                    ctx.set_timer(extra, TOK_DELAYED_FWD | u64::from(token));
                    return;
                }
                Verdict::Duplicate(copies) => {
                    for _ in 1..copies {
                        self.transmit_out(ctx, pkt.clone(), outs);
                    }
                }
                Verdict::Misroute => {
                    // Send out the first link that is neither the arrival
                    // nor a routed out-link; fall back to eating the packet.
                    let wrong = self
                        .links
                        .iter()
                        .map(|l| l.edge)
                        .find(|e| Some(*e) != in_edge && !outs.contains(e));
                    match wrong {
                        Some(e) => {
                            self.obs.named("adversary_misrouted");
                            self.transmit_out(ctx, pkt, &[e]);
                        }
                        None => {
                            self.obs.drop(DropClass::Adversary);
                        }
                    }
                    return;
                }
            }
        }
        self.transmit_out(ctx, pkt, outs);
    }

    fn transmit_out(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: DataPacket, outs: &[EdgeId]) {
        let slot = pkt.spec.link.slot();
        let now = ctx.now();
        for &edge in outs {
            let Some(&link) = self.edge_index.get(&edge) else {
                continue;
            };
            self.obs.forwarded();
            self.obs.span(now, &pkt, SpanStage::Enqueue, Some(link));
            let copy = pkt.clone();
            self.run_link_proto(ctx, link, slot, move |p, out| {
                p.on_send(now, copy, out);
            });
        }
    }

    /// Builds and routes a fresh packet from a local client send.
    fn ingress_send(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        flow: FlowKey,
        spec: FlowSpec,
        seq: u64,
        size: usize,
        payload: bytes::Bytes,
    ) {
        // Source-route stamp (cached per flow against the topology version).
        let mask = match spec.routing {
            RoutingService::LinkState => None,
            RoutingService::SourceBased(scheme) => {
                let version = self.conn.version();
                match self.mask_cache.get(&flow) {
                    Some(&(v, m)) if v == version => Some(m),
                    _ => {
                        let dst_node = match flow.dst() {
                            Destination::Unicast(a) => Some(a.node),
                            Destination::Multicast(_) | Destination::Anycast(_) => None,
                        };
                        let computed = match (scheme, dst_node) {
                            (crate::service::SourceRoute::ConstrainedFlooding, _) => {
                                self.forwarding.source_route_mask(scheme, self.me)
                            }
                            (_, Some(d)) => self.forwarding.source_route_mask(scheme, d),
                            // Group destinations with path-based schemes fall
                            // back to flooding the stamp over the topology.
                            (_, None) => self.forwarding.source_route_mask(
                                crate::service::SourceRoute::ConstrainedFlooding,
                                self.me,
                            ),
                        };
                        match computed {
                            Some(m) => {
                                self.mask_cache.insert(flow, (version, m));
                                Some(m)
                            }
                            None => {
                                self.obs.drop(DropClass::Unroutable);
                                return;
                            }
                        }
                    }
                }
            }
        };
        let resolved_dst = match flow.dst() {
            Destination::Anycast(group) => {
                let members = self.groups.members_of(group);
                match self.forwarding.anycast_resolve(&members) {
                    Some(n) => Some(n),
                    None => {
                        self.obs.drop(DropClass::Unroutable);
                        return;
                    }
                }
            }
            _ => None,
        };
        let auth_tag = if self.config.auth_enabled {
            self.keys.tag(self.me, flow, seq, size)
        } else {
            0
        };
        let pkt = DataPacket {
            flow,
            flow_seq: seq,
            origin: self.me,
            spec,
            mask,
            resolved_dst,
            link_seq: 0,
            created_at: ctx.now(),
            size,
            payload,
            ttl: self.config.ttl,
            auth_tag,
        };
        // handle_upward's dedup check records the first sighting at the
        // ingress, so copies looping back to the source are suppressed.
        self.handle_upward(ctx, pkt, None, None);
    }

    fn on_client_op(&mut self, ctx: &mut Ctx<'_, Wire>, from: ProcessId, op: ClientOp) {
        match op {
            ClientOp::Connect { port } => {
                let mut sa = Vec::new();
                if self
                    .sessions
                    .connect(VirtualPort(port), from, &mut sa)
                    .is_err()
                {
                    self.obs.named("connect_rejected");
                }
                self.apply_session_actions(ctx, sa);
            }
            ClientOp::OpenFlow {
                local_flow,
                dst,
                spec,
            } => {
                if let Some(port) = self.port_of(from) {
                    let _ = self.sessions.open_flow(port, local_flow, dst, spec);
                }
            }
            ClientOp::Send {
                local_flow,
                size,
                payload,
            } => {
                let Some(port) = self.port_of(from) else {
                    return;
                };
                let Ok((flow, spec, seq)) = self.sessions.next_send(port, local_flow) else {
                    self.obs.named("send_unknown_flow");
                    return;
                };
                self.ingress_send(ctx, flow, spec, seq, size, payload);
            }
            ClientOp::Join(group) => {
                if let Some(port) = self.port_of(from) {
                    let mut ga = Vec::new();
                    self.groups.join(group, port, &mut ga);
                    self.apply_group_actions(ctx, ga);
                }
            }
            ClientOp::Leave(group) => {
                if let Some(port) = self.port_of(from) {
                    let mut ga = Vec::new();
                    self.groups.leave(group, port, &mut ga);
                    self.apply_group_actions(ctx, ga);
                }
            }
            ClientOp::Disconnect => {
                if let Some(port) = self.port_of(from) {
                    self.sessions.disconnect(port);
                    let mut ga = Vec::new();
                    self.groups.drop_client(port, &mut ga);
                    self.apply_group_actions(ctx, ga);
                }
            }
        }
    }

    fn port_of(&self, proc: ProcessId) -> Option<VirtualPort> {
        self.sessions
            .ports()
            .into_iter()
            .find(|&p| self.sessions.client_proc(p) == Some(proc))
    }

    fn flood_tick(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let Behavior::Flood {
            dst,
            rate_pps,
            size,
        } = self.behavior.clone()
        else {
            return;
        };
        self.flood_seq += 1;
        let flow = FlowKey::new(
            crate::addr::OverlayAddr {
                node: self.me,
                port: VirtualPort(0),
            },
            dst,
        );
        let auth_tag = if self.config.auth_enabled {
            // A compromised node can authenticate junk it originates itself.
            self.keys.tag(self.me, flow, self.flood_seq, size)
        } else {
            0
        };
        let pkt = DataPacket {
            flow,
            flow_seq: self.flood_seq,
            origin: self.me,
            spec: FlowSpec::best_effort(),
            mask: None,
            resolved_dst: None,
            link_seq: 0,
            created_at: ctx.now(),
            size,
            payload: bytes::Bytes::new(),
            ttl: self.config.ttl,
            auth_tag,
        };
        self.obs.adversary_injected();
        let mut outs = std::mem::take(&mut self.out_buf);
        self.out_edges_into(&pkt, None, &mut outs);
        self.forward_onward(ctx, pkt, None, &outs);
        self.out_buf = outs;
        let delay = SimDuration::from_secs_f64(1.0 / rate_pps.max(1) as f64);
        ctx.set_timer(delay, TOK_FLOOD);
    }
}

impl Process<Wire> for OverlayNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        // Kick off the control plane.
        ctx.set_timer(SimDuration::ZERO, TOK_CONN_TICK);
        let mut ca = Vec::new();
        self.conn.originate(None, &mut ca);
        self.apply_conn_actions(ctx, ca, None);
        let mut ga = Vec::new();
        self.groups.announce(&mut ga);
        self.apply_group_actions(ctx, ga);
        if matches!(self.behavior, Behavior::Flood { .. }) {
            ctx.set_timer(SimDuration::from_millis(1), TOK_FLOOD);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        from: ProcessId,
        pipe: Option<PipeId>,
        msg: Wire,
    ) {
        match msg {
            Wire::Data(pkt) => {
                let Some(&(link, _)) = pipe.as_ref().and_then(|p| self.in_pipe_index.get(p)) else {
                    return;
                };
                let slot = pkt.spec.link.slot();
                let now = ctx.now();
                self.run_link_proto(ctx, link, slot, move |p, out| p.on_data(now, pkt, out));
            }
            Wire::Ctl { slot, ctl } => {
                let Some(&(link, _)) = pipe.as_ref().and_then(|p| self.in_pipe_index.get(p)) else {
                    return;
                };
                let slot = (slot as usize).min(SERVICE_SLOTS - 1);
                let now = ctx.now();
                self.run_link_proto(ctx, link, slot, move |p, out| p.on_ctl(now, ctl, out));
            }
            Wire::Control(control) => {
                let Some(&(link, provider)) = pipe.as_ref().and_then(|p| self.in_pipe_index.get(p))
                else {
                    return;
                };
                match control {
                    Control::Hello { seq, sent_at } => {
                        let mut ca = Vec::new();
                        self.conn.on_hello(link, seq, sent_at, &mut ca);
                        // Reply on the provider the probe used, so each
                        // provider path is probed independently.
                        self.apply_conn_actions(ctx, ca, Some(provider));
                    }
                    Control::HelloAck { seq, echo_sent_at } => {
                        let mut ca = Vec::new();
                        self.conn
                            .on_hello_ack(ctx.now(), link, seq, echo_sent_at, &mut ca);
                        self.apply_conn_actions(ctx, ca, None);
                    }
                    Control::Lsa(lsa) => {
                        let mut ca = Vec::new();
                        self.conn.on_lsa(lsa, Some(link), &mut ca);
                        self.apply_conn_actions(ctx, ca, None);
                    }
                    Control::GroupUpdate(update) => {
                        let mut ga = Vec::new();
                        self.groups.on_update(update, Some(link), &mut ga);
                        self.apply_group_actions(ctx, ga);
                    }
                }
            }
            Wire::FromClient(op) => self.on_client_op(ctx, from, op),
            Wire::ToClient(_) | Wire::Raw { .. } => {
                // Daemons never receive session events; raw datagrams go to
                // interceptors, not daemons.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, token: u64) {
        match token & TOK_MASK {
            TOK_CONN_TICK => {
                let mut ca = Vec::new();
                self.conn.on_tick(ctx.now(), &mut ca);
                self.apply_conn_actions(ctx, ca, None);
                ctx.set_timer(self.config.connectivity.hello_interval, TOK_CONN_TICK);
            }
            TOK_LINK => {
                let link = ((token >> 40) & 0xffff) as usize;
                let slot = ((token >> 32) & 0xff) as usize;
                let proto_token = (token & 0xffff_ffff) as u32;
                if link < self.links.len() && slot < SERVICE_SLOTS {
                    let now = ctx.now();
                    self.run_link_proto(ctx, link, slot, move |p, out| {
                        p.on_timer(now, proto_token, out);
                    });
                }
            }
            TOK_SESSION => {
                let t = (token & 0xffff_ffff) as u32;
                if let Some(flow) = self.sessions.timer_flow(t) {
                    let targets = match flow.dst() {
                        Destination::Unicast(a) if a.node == self.me => vec![a.port],
                        Destination::Multicast(g) => self.groups.local_members(g),
                        Destination::Anycast(g) => {
                            self.groups.local_members(g).into_iter().take(1).collect()
                        }
                        _ => Vec::new(),
                    };
                    let mut sa = Vec::new();
                    self.sessions.on_timer(ctx.now(), t, &targets, &mut sa);
                    self.apply_session_actions(ctx, sa);
                }
            }
            TOK_FLOOD => self.flood_tick(ctx),
            TOK_DELAYED_FWD => {
                let t = (token & 0xffff_ffff) as u32;
                if let Some((pkt, in_edge)) = self.delayed.remove(&t) {
                    // Behaviour already charged its delay; forward now.
                    let mut outs = std::mem::take(&mut self.out_buf);
                    self.out_edges_into(&pkt, in_edge, &mut outs);
                    self.transmit_out(ctx, pkt, &outs);
                    self.out_buf = outs;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_components_do_not_collide() {
        let link_token = TOK_LINK | (5u64 << 40) | (2u64 << 32) | 77;
        assert_eq!(link_token & TOK_MASK, TOK_LINK);
        assert_eq!((link_token >> 40) & 0xffff, 5);
        assert_eq!((link_token >> 32) & 0xff, 2);
        assert_eq!(link_token & 0xffff_ffff, 77);
        assert_ne!(TOK_CONN_TICK & TOK_MASK, TOK_SESSION & TOK_MASK);
        assert_ne!(TOK_FLOOD & TOK_MASK, TOK_DELAYED_FWD & TOK_MASK);
    }

    #[test]
    fn config_default_is_sane() {
        let c = NodeConfig::default();
        assert!(c.rto_factor > 1.0);
        assert!(c.ttl > 8);
        assert!(!c.auth_enabled);
    }
}
