//! Message authentication between overlay nodes.
//!
//! "Because the number of overlay nodes is small, each overlay node can know
//! the identities of all valid overlay nodes in the system, and can use
//! cryptography to authenticate messages and ensure that they originate from
//! authorized overlay nodes" (§IV-B).
//!
//! # Security model of this reproduction
//!
//! External crypto crates are out of scope for this workspace, so the MAC
//! here is a keyed 64-bit mix (FNV-1a over the key and fields, finished with
//! SplitMix64). It is **structurally** faithful — a per-node secret key, a
//! tag bound to `(origin, flow, seq, size)`, constant verification — but it
//! is **not cryptographically strong** and must never be used outside the
//! simulator. What the experiments need is exactly the structure: a
//! compromised node holds only its *own* key, so it can originate authentic
//! junk but cannot forge packets that verify as another node's.

use son_topo::NodeId;

use crate::addr::FlowKey;

/// Per-node secret keys plus the shared registry of valid node identities.
#[derive(Debug, Clone)]
pub struct KeyRegistry {
    keys: Vec<u64>,
}

impl KeyRegistry {
    /// Derives keys for `n` overlay nodes from a deployment master secret.
    #[must_use]
    pub fn new(nodes: usize, master_secret: u64) -> Self {
        let keys = (0..nodes as u64)
            .map(|i| son_netsim::rng::splitmix(master_secret ^ son_netsim::rng::splitmix(i)))
            .collect();
        KeyRegistry { keys }
    }

    /// Number of registered nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if no nodes are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The secret key of one node. In a deployment each daemon holds only
    /// its own; the simulator's registry is the dealer.
    ///
    /// # Panics
    ///
    /// Panics if the node is not registered.
    #[must_use]
    pub fn key_of(&self, node: NodeId) -> u64 {
        self.keys[node.0]
    }

    /// Computes the tag a packet from `origin` should carry.
    #[must_use]
    pub fn tag(&self, origin: NodeId, flow: FlowKey, flow_seq: u64, size: usize) -> u64 {
        Self::tag_with_key(self.key_of(origin), origin, flow, flow_seq, size)
    }

    /// Computes a tag under an explicit key (what a compromised node does
    /// when it tries to forge with the wrong key).
    #[must_use]
    pub fn tag_with_key(
        key: u64,
        origin: NodeId,
        flow: FlowKey,
        flow_seq: u64,
        size: usize,
    ) -> u64 {
        let mut h = son_netsim::rng::fnv1a(&key.to_le_bytes());
        let mut mix = |v: u64| {
            h = son_netsim::rng::splitmix(h ^ v);
        };
        mix(origin.0 as u64);
        mix(flow.src.node.0 as u64);
        mix(u64::from(flow.src.port.0));
        mix(dest_discriminant(flow));
        mix(flow_seq);
        mix(size as u64);
        h
    }

    /// Verifies a packet tag claimed to originate at `origin`.
    #[must_use]
    pub fn verify(
        &self,
        origin: NodeId,
        flow: FlowKey,
        flow_seq: u64,
        size: usize,
        tag: u64,
    ) -> bool {
        origin.0 < self.keys.len() && self.tag(origin, flow, flow_seq, size) == tag
    }
}

fn dest_discriminant(flow: FlowKey) -> u64 {
    use crate::addr::DestKey;
    match flow.dst {
        DestKey::Unicast(a) => 1 ^ ((a.node.0 as u64) << 20) ^ (u64::from(a.port.0) << 2),
        DestKey::Multicast(g) => 2 ^ (u64::from(g.0) << 2),
        DestKey::Anycast(g) => 3 ^ (u64::from(g.0) << 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Destination, GroupId, OverlayAddr};

    fn flow() -> FlowKey {
        FlowKey::new(
            OverlayAddr::new(NodeId(1), 5),
            Destination::Unicast(OverlayAddr::new(NodeId(2), 6)),
        )
    }

    #[test]
    fn valid_tag_verifies() {
        let reg = KeyRegistry::new(4, 0xfeed);
        let tag = reg.tag(NodeId(1), flow(), 9, 100);
        assert!(reg.verify(NodeId(1), flow(), 9, 100, tag));
    }

    #[test]
    fn tag_binds_every_field() {
        let reg = KeyRegistry::new(4, 0xfeed);
        let tag = reg.tag(NodeId(1), flow(), 9, 100);
        assert!(!reg.verify(NodeId(2), flow(), 9, 100, tag), "wrong origin");
        assert!(!reg.verify(NodeId(1), flow(), 10, 100, tag), "wrong seq");
        assert!(!reg.verify(NodeId(1), flow(), 9, 101, tag), "wrong size");
        let other_flow = FlowKey::new(
            OverlayAddr::new(NodeId(1), 5),
            Destination::Multicast(GroupId(1)),
        );
        assert!(
            !reg.verify(NodeId(1), other_flow, 9, 100, tag),
            "wrong dest"
        );
    }

    #[test]
    fn compromised_node_cannot_forge_other_origins() {
        let reg = KeyRegistry::new(4, 0xfeed);
        // Node 3 is compromised: it holds key_of(3) and tries to stamp a
        // packet claiming origin node 1.
        let forged = KeyRegistry::tag_with_key(reg.key_of(NodeId(3)), NodeId(1), flow(), 9, 100);
        assert!(!reg.verify(NodeId(1), flow(), 9, 100, forged));
        // But it can authenticate traffic it legitimately originates.
        let own = KeyRegistry::tag_with_key(reg.key_of(NodeId(3)), NodeId(3), flow(), 9, 100);
        assert!(reg.verify(NodeId(3), flow(), 9, 100, own));
    }

    #[test]
    fn unknown_origin_fails_closed() {
        let reg = KeyRegistry::new(2, 0xfeed);
        assert!(!reg.verify(NodeId(7), flow(), 0, 0, 123));
    }

    #[test]
    fn keys_differ_across_nodes_and_deployments() {
        let a = KeyRegistry::new(4, 1);
        let b = KeyRegistry::new(4, 2);
        assert_ne!(a.key_of(NodeId(0)), a.key_of(NodeId(1)));
        assert_ne!(a.key_of(NodeId(0)), b.key_of(NodeId(0)));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }
}
