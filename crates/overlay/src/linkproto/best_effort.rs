//! The Best Effort link protocol: stateless per-hop forwarding, no recovery.
//!
//! This is the overlay's analogue of plain IP forwarding — the baseline the
//! paper's recovery protocols are measured against.

use son_netsim::time::SimTime;

use crate::packet::{DataPacket, LinkCtl};

use super::{LinkAction, LinkProto, LinkProtoStats};

/// Stateless best-effort link protocol.
#[derive(Debug, Default)]
pub struct BestEffortLink {
    stats: LinkProtoStats,
}

impl BestEffortLink {
    /// Creates a best-effort instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl LinkProto for BestEffortLink {
    fn on_send(&mut self, _now: SimTime, mut pkt: DataPacket, out: &mut Vec<LinkAction>) {
        self.stats.sent += 1;
        pkt.link_seq = self.stats.sent;
        out.push(LinkAction::Transmit(pkt));
    }

    fn on_data(&mut self, _now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        self.stats.received += 1;
        out.push(LinkAction::Deliver(pkt));
    }

    fn on_ctl(&mut self, _now: SimTime, _ctl: LinkCtl, _out: &mut Vec<LinkAction>) {
        // Best effort has no control traffic; ignore stray messages.
    }

    fn on_timer(&mut self, _now: SimTime, _token: u32, _out: &mut Vec<LinkAction>) {}

    fn stats(&self) -> LinkProtoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{delivered, pkt, transmitted};
    use super::*;

    #[test]
    fn send_transmits_receive_delivers() {
        let mut be = BestEffortLink::new();
        let mut out = Vec::new();
        be.on_send(SimTime::ZERO, pkt(1, 100), &mut out);
        assert_eq!(transmitted(&out).len(), 1);
        out.clear();
        be.on_data(SimTime::ZERO, pkt(1, 100), &mut out);
        assert_eq!(delivered(&out).len(), 1);
        assert_eq!(be.stats().sent, 1);
        assert_eq!(be.stats().received, 1);
        assert_eq!(be.stats().retransmitted, 0);
    }

    #[test]
    fn ignores_control_and_timers() {
        let mut be = BestEffortLink::new();
        let mut out = Vec::new();
        be.on_ctl(
            SimTime::ZERO,
            LinkCtl::ReliableNack { missing: vec![1] },
            &mut out,
        );
        be.on_timer(SimTime::ZERO, 7, &mut out);
        assert!(out.is_empty());
    }
}
