//! The NM-Strikes real-time link protocol (§IV-A, Fig. 4, \[5\]).
//!
//! A protocol that "while not guaranteeing complete reliability, guarantees
//! complete timeliness". When the receiver detects a gap it schedules **N**
//! retransmission requests spread over the recovery budget — spaced to dodge
//! the window of correlated loss — and the sender, on the *first* request,
//! schedules **M** retransmissions, likewise spaced. A receiver that
//! recovers a packet cancels its remaining requests; a packet not recovered
//! within the budget is given up (the deadline matters more).
//!
//! Worst-case overhead is `1 + M·p` transmissions per original packet.

use std::collections::{BTreeSet, HashMap};

use son_netsim::time::{SimDuration, SimTime};
use son_obs::DropClass;

use crate::packet::{DataPacket, LinkCtl};
use crate::service::{LinkService, RealtimeParams};

use super::{LinkAction, LinkEvent, LinkProto, LinkProtoStats};

/// How long the sender retains history for retransmission, in budgets.
const HISTORY_BUDGETS: u64 = 2;
/// Receiver-side dedup memory, in sequence numbers below the high mark.
const DELIVERED_MEMORY: u64 = 8192;

#[derive(Debug, Clone, Copy)]
enum Purpose {
    /// Receiver: fire request strike `strike` for `seq` if still missing.
    RequestStrike { seq: u64, strike: u8 },
    /// Receiver: give up on `seq` (budget exhausted).
    GiveUp { seq: u64 },
    /// Sender: put retransmission copy `copy` of `seq` on the wire.
    Retransmit { seq: u64 },
}

/// NM-Strikes protocol instance (one link, both directions).
#[derive(Debug)]
pub struct RealtimeLink {
    params: RealtimeParams,
    // --- sender state ---
    next_seq: u64,
    history: HashMap<u64, (DataPacket, SimTime)>,
    requested: BTreeSet<u64>,
    // --- receiver state ---
    high: u64,
    /// Missing sequence numbers: strike count so far and when the gap was
    /// first noticed (for recovery-latency observation).
    missing: HashMap<u64, (u8, SimTime)>,
    delivered: BTreeSet<u64>,
    // --- timers ---
    purposes: HashMap<u32, Purpose>,
    next_token: u32,
    // --- accounting ---
    stats: LinkProtoStats,
    recovered: u64,
    unrecovered: u64,
}

impl RealtimeLink {
    /// Creates an instance with the given default parameters. Packets whose
    /// flow spec carries its own [`RealtimeParams`] update the instance
    /// (flows on one link aggregate into one sequence space, §II-C).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid.
    #[must_use]
    pub fn new(params: RealtimeParams) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid realtime params: {e}"));
        RealtimeLink {
            params,
            next_seq: 0,
            history: HashMap::new(),
            requested: BTreeSet::new(),
            high: 0,
            missing: HashMap::new(),
            delivered: BTreeSet::new(),
            purposes: HashMap::new(),
            next_token: 0,
            stats: LinkProtoStats::default(),
            recovered: 0,
            unrecovered: 0,
        }
    }

    /// Packets recovered by request/retransmission on this link.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Packets the receiver gave up on (budget exhausted).
    #[must_use]
    pub fn unrecovered(&self) -> u64 {
        self.unrecovered
    }

    fn arm(&mut self, delay: SimDuration, purpose: Purpose, out: &mut Vec<LinkAction>) {
        let token = self.next_token;
        self.next_token = self.next_token.wrapping_add(1);
        self.purposes.insert(token, purpose);
        out.push(LinkAction::Timer { delay, token });
    }

    fn purge_history(&mut self, now: SimTime) {
        let horizon = self.params.budget.saturating_mul(HISTORY_BUDGETS);
        self.history
            .retain(|_, (_, sent)| now.saturating_since(*sent) <= horizon);
        let keep_from = self.next_seq.saturating_sub(4 * DELIVERED_MEMORY);
        self.requested = self.requested.split_off(&keep_from);
    }

    fn note_delivered(&mut self, seq: u64) {
        self.delivered.insert(seq);
        let keep_from = self.high.saturating_sub(DELIVERED_MEMORY);
        self.delivered = self.delivered.split_off(&keep_from);
    }

    fn request_now(&mut self, seqs: Vec<u64>, strike: u8, out: &mut Vec<LinkAction>) {
        if seqs.is_empty() {
            return;
        }
        self.stats.ctl_sent += 1;
        out.push(LinkAction::TransmitCtl(LinkCtl::RtRequest { seqs, strike }));
    }
}

impl LinkProto for RealtimeLink {
    fn on_send(&mut self, now: SimTime, mut pkt: DataPacket, out: &mut Vec<LinkAction>) {
        if let LinkService::Realtime(p) = pkt.spec.link {
            if p.validate().is_ok() {
                self.params = p;
            }
        }
        self.next_seq += 1;
        pkt.link_seq = self.next_seq;
        self.history.insert(self.next_seq, (pkt.clone(), now));
        self.stats.sent += 1;
        out.push(LinkAction::Transmit(pkt));
        if self.next_seq.is_multiple_of(64) {
            self.purge_history(now);
        }
    }

    fn on_data(&mut self, now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        let seq = pkt.link_seq;
        if seq > self.high {
            // Gap: schedule N request strikes per missing packet, spread over
            // the budget, plus a give-up deadline.
            let spacing = self.params.spacing();
            let mut immediate = Vec::new();
            for g in self.high + 1..seq {
                self.missing.insert(g, (1, now));
                out.push(LinkAction::Observe(LinkEvent::LossDetected));
                immediate.push(g);
                for strike in 1..self.params.n_requests {
                    self.arm(
                        spacing.saturating_mul(u64::from(strike)),
                        Purpose::RequestStrike { seq: g, strike },
                        out,
                    );
                }
                self.arm(self.params.budget, Purpose::GiveUp { seq: g }, out);
            }
            // Strike 0 fires immediately, batched across the whole gap.
            self.request_now(immediate, 0, out);
            self.high = seq;
            self.stats.received += 1;
            self.note_delivered(seq);
            out.push(LinkAction::Deliver(pkt));
        } else if let Some((_, noticed)) = self.missing.remove(&seq) {
            // A requested packet came back in time: deliver and implicitly
            // cancel remaining strikes (their timers become no-ops).
            self.recovered += 1;
            self.stats.received += 1;
            self.note_delivered(seq);
            out.push(LinkAction::Observe(LinkEvent::Recovered {
                after: now.saturating_since(noticed),
            }));
            out.push(LinkAction::Deliver(pkt));
        } else if self.delivered.contains(&seq) {
            self.stats.dup_received += 1;
        } else {
            // Arrived after give-up: forward anyway — the destination's
            // deadline buffer decides whether it is still useful.
            self.stats.received += 1;
            self.note_delivered(seq);
            out.push(LinkAction::Deliver(pkt));
        }
    }

    fn on_ctl(&mut self, _now: SimTime, ctl: LinkCtl, out: &mut Vec<LinkAction>) {
        let LinkCtl::RtRequest { seqs, .. } = ctl else {
            return;
        };
        let spacing = self.params.spacing();
        for seq in seqs {
            // Only the FIRST request for a packet schedules the M
            // retransmissions; later strikes for the same packet are covered.
            if !self.requested.insert(seq) {
                continue;
            }
            let Some((pkt, _)) = self.history.get(&seq) else {
                continue;
            };
            self.stats.retransmitted += 1;
            out.push(LinkAction::Observe(LinkEvent::Retransmit));
            out.push(LinkAction::Transmit(pkt.clone()));
            for copy in 1..self.params.m_retransmissions {
                self.arm(
                    spacing.saturating_mul(u64::from(copy)),
                    Purpose::Retransmit { seq },
                    out,
                );
            }
        }
    }

    fn on_timer(&mut self, _now: SimTime, token: u32, out: &mut Vec<LinkAction>) {
        let Some(purpose) = self.purposes.remove(&token) else {
            return;
        };
        match purpose {
            Purpose::RequestStrike { seq, strike } => {
                if let Some((strikes, _)) = self.missing.get_mut(&seq) {
                    *strikes += 1;
                    self.request_now(vec![seq], strike, out);
                }
            }
            Purpose::GiveUp { seq } => {
                if self.missing.remove(&seq).is_some() {
                    self.unrecovered += 1;
                    self.stats.dropped += 1;
                    // The recovery budget ran out: the packet is lost for
                    // timeliness purposes, classified as an expiry.
                    out.push(LinkAction::Observe(LinkEvent::Drop(DropClass::Expired)));
                }
            }
            Purpose::Retransmit { seq } => {
                if let Some((pkt, _)) = self.history.get(&seq) {
                    self.stats.retransmitted += 1;
                    out.push(LinkAction::Observe(LinkEvent::Retransmit));
                    out.push(LinkAction::Transmit(pkt.clone()));
                }
            }
        }
    }

    fn stats(&self) -> LinkProtoStats {
        self.stats
    }

    fn queue_bytes(&self) -> usize {
        use son_obs::footprint::{btreeset_bytes, hashmap_bytes};
        hashmap_bytes(&self.history)
            + self
                .history
                .values()
                .map(|(p, _)| p.payload.len())
                .sum::<usize>()
            + btreeset_bytes(&self.requested)
            + hashmap_bytes(&self.missing)
            + btreeset_bytes(&self.delivered)
            + hashmap_bytes(&self.purposes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{delivered, pkt, timers, transmitted};
    use super::*;

    fn params() -> RealtimeParams {
        RealtimeParams {
            n_requests: 3,
            m_retransmissions: 2,
            budget: SimDuration::from_millis(100),
        }
    }

    fn recv_seq(link: &mut RealtimeLink, seq: u64, out: &mut Vec<LinkAction>) {
        let mut p = pkt(seq, 100);
        p.link_seq = seq;
        p.spec.link = LinkService::Realtime(params());
        link.on_data(SimTime::ZERO, p, out);
    }

    #[test]
    fn gap_detection_fires_immediate_request_and_schedules_strikes() {
        let mut r = RealtimeLink::new(params());
        let mut out = Vec::new();
        recv_seq(&mut r, 1, &mut out);
        out.clear();
        recv_seq(&mut r, 4, &mut out);
        // Strike 0: one batched request for 2 and 3.
        let reqs: Vec<_> = out
            .iter()
            .filter_map(|a| match a {
                LinkAction::TransmitCtl(LinkCtl::RtRequest { seqs, strike }) => {
                    Some((seqs.clone(), *strike))
                }
                _ => None,
            })
            .collect();
        assert_eq!(reqs, vec![(vec![2, 3], 0)]);
        // Per missing seq: N-1 future strikes + 1 give-up = 3 timers each.
        assert_eq!(timers(&out).len(), 6);
        // Seq 4 is still delivered (timeliness over ordering).
        assert_eq!(delivered(&out).len(), 1);
    }

    #[test]
    fn strikes_are_spaced_across_the_budget() {
        let mut r = RealtimeLink::new(params());
        let mut out = Vec::new();
        recv_seq(&mut r, 1, &mut out);
        out.clear();
        recv_seq(&mut r, 3, &mut out);
        let ts = timers(&out);
        // spacing = 100 / (3 + 2) = 20ms; strikes at 20ms and 40ms; give-up at 100ms.
        let delays: Vec<f64> = ts.iter().map(|(d, _)| d.as_millis_f64()).collect();
        assert!(delays.contains(&20.0));
        assert!(delays.contains(&40.0));
        assert!(delays.contains(&100.0));
    }

    #[test]
    fn recovery_cancels_remaining_strikes() {
        let mut r = RealtimeLink::new(params());
        let mut out = Vec::new();
        recv_seq(&mut r, 1, &mut out);
        recv_seq(&mut r, 3, &mut out);
        let strike_timers = timers(&out);
        out.clear();
        // The missing packet (2) arrives before any strike timer fires.
        recv_seq(&mut r, 2, &mut out);
        assert_eq!(delivered(&out).len(), 1);
        assert_eq!(r.recovered(), 1);
        out.clear();
        // Every pending strike timer is now a no-op.
        for (_, token) in strike_timers {
            r.on_timer(SimTime::from_millis(50), token, &mut out);
        }
        assert!(out.iter().all(|a| !matches!(a, LinkAction::TransmitCtl(_))));
    }

    #[test]
    fn sender_schedules_m_retransmissions_on_first_request_only() {
        let mut s = RealtimeLink::new(params());
        let mut out = Vec::new();
        for i in 0..3 {
            let mut p = pkt(i, 100);
            p.spec.link = LinkService::Realtime(params());
            s.on_send(SimTime::ZERO, p, &mut out);
        }
        out.clear();
        s.on_ctl(
            SimTime::ZERO,
            LinkCtl::RtRequest {
                seqs: vec![2],
                strike: 0,
            },
            &mut out,
        );
        // First copy immediately + 1 timer for the second copy (M=2).
        assert_eq!(transmitted(&out).len(), 1);
        assert_eq!(timers(&out).len(), 1);
        let (_, token) = timers(&out)[0];
        out.clear();
        // A second strike for the same seq is ignored.
        s.on_ctl(
            SimTime::ZERO,
            LinkCtl::RtRequest {
                seqs: vec![2],
                strike: 1,
            },
            &mut out,
        );
        assert!(transmitted(&out).is_empty());
        out.clear();
        // The scheduled copy fires.
        s.on_timer(SimTime::from_millis(20), token, &mut out);
        assert_eq!(transmitted(&out).len(), 1);
        assert_eq!(s.stats().retransmitted, 2);
    }

    #[test]
    fn give_up_after_budget_counts_unrecovered() {
        let mut r = RealtimeLink::new(params());
        let mut out = Vec::new();
        recv_seq(&mut r, 1, &mut out);
        recv_seq(&mut r, 3, &mut out);
        let give_up_token = timers(&out)
            .into_iter()
            .find(|(d, _)| *d == SimDuration::from_millis(100))
            .unwrap()
            .1;
        out.clear();
        r.on_timer(SimTime::from_millis(100), give_up_token, &mut out);
        assert_eq!(r.unrecovered(), 1);
        // Late arrival is still forwarded (destination decides usefulness).
        out.clear();
        recv_seq(&mut r, 2, &mut out);
        assert_eq!(delivered(&out).len(), 1);
        assert_eq!(r.recovered(), 0, "too late to count as a recovery");
    }

    #[test]
    fn recovery_and_give_up_are_observed() {
        let mut r = RealtimeLink::new(params());
        let mut out = Vec::new();
        recv_seq(&mut r, 1, &mut out);
        // Gap noticed at t=0 (seq 2 missing when 3 arrives at t=0).
        recv_seq(&mut r, 3, &mut out);
        let give_up_token = timers(&out)
            .into_iter()
            .find(|(d, _)| *d == SimDuration::from_millis(100))
            .unwrap()
            .1;
        out.clear();
        // Seq 2 recovered 30 ms after the gap was noticed.
        let mut p = pkt(2, 100);
        p.link_seq = 2;
        p.spec.link = LinkService::Realtime(params());
        r.on_data(SimTime::from_millis(30), p, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            LinkAction::Observe(LinkEvent::Recovered { after }) if *after == SimDuration::from_millis(30)
        )));
        // The stale give-up timer observes nothing.
        out.clear();
        r.on_timer(SimTime::from_millis(100), give_up_token, &mut out);
        assert!(out.is_empty());
        // A genuine give-up reports an Expired drop.
        recv_seq(&mut r, 5, &mut out);
        let give_up2 = timers(&out)
            .into_iter()
            .find(|(d, _)| *d == SimDuration::from_millis(100))
            .unwrap()
            .1;
        out.clear();
        r.on_timer(SimTime::from_millis(200), give_up2, &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, LinkAction::Observe(LinkEvent::Drop(DropClass::Expired)))));
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut r = RealtimeLink::new(params());
        let mut out = Vec::new();
        recv_seq(&mut r, 1, &mut out);
        out.clear();
        recv_seq(&mut r, 1, &mut out);
        assert!(delivered(&out).is_empty());
        assert_eq!(r.stats().dup_received, 1);
    }

    #[test]
    fn request_for_unknown_seq_is_ignored() {
        let mut s = RealtimeLink::new(params());
        let mut out = Vec::new();
        s.on_ctl(
            SimTime::ZERO,
            LinkCtl::RtRequest {
                seqs: vec![99],
                strike: 0,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn overhead_is_one_plus_mp_worst_case() {
        // Send 1000, request 100 of them; M=2 -> 1 + 2*0.1 = 1.2.
        let mut s = RealtimeLink::new(params());
        let mut out = Vec::new();
        for i in 0..1000 {
            let mut p = pkt(i, 100);
            p.spec.link = LinkService::Realtime(params());
            s.on_send(SimTime::from_micros(i * 10), p, &mut out);
        }
        out.clear();
        s.on_ctl(
            SimTime::from_millis(11),
            LinkCtl::RtRequest {
                seqs: (1..=100).collect(),
                strike: 0,
            },
            &mut out,
        );
        // Fire all scheduled second copies.
        let pending = timers(&out);
        out.clear();
        for (_, token) in pending {
            s.on_timer(SimTime::from_millis(31), token, &mut out);
        }
        let stats = s.stats();
        assert_eq!(stats.sent, 1000);
        assert_eq!(stats.retransmitted, 200);
        assert!((stats.overhead_ratio() - 1.2).abs() < 1e-12);
    }
}
