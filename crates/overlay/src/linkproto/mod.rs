//! Link-level protocols (Fig. 2, Link level).
//!
//! Every overlay link multiplexes one protocol instance per service slot:
//! Best Effort, Reliable Data Link, Real-time (NM-Strikes), Intrusion-
//! Tolerant Priority, Intrusion-Tolerant Reliable, and the FIFO baseline.
//!
//! Protocol instances are *pure state machines*: the daemon feeds them
//! events (`on_send`, `on_data`, `on_ctl`, `on_timer`) and they emit
//! [`LinkAction`]s (transmit, deliver upward, arm a timer, pause a flow).
//! The daemon owns all interaction with the simulator, which keeps the
//! protocols directly unit-testable.
//!
//! Timer discipline: protocols never cancel timers; instead a firing timer
//! re-checks protocol state and becomes a no-op when stale. This keeps the
//! state machines simple and makes their behaviour independent of timer
//! cancellation semantics.

pub mod best_effort;
pub mod fair;
pub mod fec;
pub mod realtime;
pub mod reliable;

use son_netsim::time::{SimDuration, SimTime};
use son_obs::DropClass;

use crate::addr::FlowKey;
use crate::packet::{DataPacket, LinkCtl};

pub use best_effort::BestEffortLink;
pub use fair::{FifoLink, ItPriorityLink, ItReliableLink};
pub use fec::FecLink;
pub use realtime::RealtimeLink;
pub use reliable::ReliableLink;

/// What a protocol instance wants the daemon to do.
#[derive(Debug)]
pub enum LinkAction {
    /// Put a data packet on this link's wire.
    Transmit(DataPacket),
    /// Put link control on this link's wire.
    TransmitCtl(LinkCtl),
    /// Hand an arriving packet up to the node's forwarding/delivery logic.
    Deliver(DataPacket),
    /// Arm a timer; `token` comes back via `on_timer` after `delay`.
    Timer {
        /// How long until the timer fires.
        delay: SimDuration,
        /// Protocol-chosen discriminator, echoed back on expiry.
        token: u32,
    },
    /// Backpressure: ask the node to pause the local source of this flow
    /// (IT-Reliable only).
    PauseFlow(FlowKey),
    /// Release backpressure on a flow.
    ResumeFlow(FlowKey),
    /// A packet of this flow has left the node (IT-Reliable): the daemon
    /// relays this to the flow's upstream link so it can grant a credit.
    Consumed(FlowKey),
    /// An observability event: the protocol reports a recovery, a
    /// retransmission, or a drop so the node can record it in its metrics
    /// registry. Protocols emit these unconditionally; the node decides what
    /// to record (detail-gated spans vs. always-on counters).
    Observe(LinkEvent),
}

/// What a link protocol observed, reported via [`LinkAction::Observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEvent {
    /// A retransmission (or FEC repair) was put on the wire.
    Retransmit,
    /// The receiver noticed a sequence gap on this link and started
    /// recovery (a NACK for Reliable, a strike schedule for NM-Strikes).
    /// The lost packet itself has not arrived, so the event carries no
    /// packet identity; it feeds the `link.loss_detected` counter and a
    /// node-scope trace marker.
    LossDetected,
    /// A previously missing packet was recovered `after` the receiver first
    /// noticed the gap — the per-hop recovery latency the paper's Fig. 3/5
    /// measure.
    Recovered {
        /// Time from gap detection (or first block arrival, for FEC) to the
        /// recovered packet surfacing at the receiver.
        after: SimDuration,
    },
    /// The protocol dropped a packet, classified in the unified cross-layer
    /// taxonomy ([`DropClass::Expired`] for recovery-budget give-ups,
    /// [`DropClass::BufferFull`] for queue overflow/eviction).
    Drop(DropClass),
}

/// Counters every protocol instance reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkProtoStats {
    /// Original data transmissions requested by the node.
    pub sent: u64,
    /// Retransmissions put on the wire (recovery overhead).
    pub retransmitted: u64,
    /// Control messages put on the wire.
    pub ctl_sent: u64,
    /// Data packets received for the first time.
    pub received: u64,
    /// Duplicate data packets received (and suppressed at the link level).
    pub dup_received: u64,
    /// Packets dropped by this protocol (queue overflow, eviction, give-up).
    pub dropped: u64,
}

impl LinkProtoStats {
    /// Recovery overhead ratio: transmissions per original packet
    /// (the paper's `1 + Mp` cost for NM-Strikes).
    #[must_use]
    pub fn overhead_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            (self.sent + self.retransmitted) as f64 / self.sent as f64
        }
    }
}

/// A link-level protocol instance (one service slot on one overlay link).
///
/// Implementations are bidirectional: they hold sender state for the local
/// outgoing direction and receiver state for the incoming direction.
/// The `Any` supertrait lets experiments downcast to a concrete protocol to
/// read protocol-specific counters.
pub trait LinkProto: std::fmt::Debug + std::any::Any + Send {
    /// The node wants `pkt` transmitted over this link.
    fn on_send(&mut self, now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>);

    /// `pkt` arrived from the neighbor on this link.
    fn on_data(&mut self, now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>);

    /// Link control arrived from the neighbor on this link.
    fn on_ctl(&mut self, now: SimTime, ctl: LinkCtl, out: &mut Vec<LinkAction>);

    /// A timer armed via [`LinkAction::Timer`] fired.
    fn on_timer(&mut self, now: SimTime, token: u32, out: &mut Vec<LinkAction>);

    /// The node accepted a previously delivered packet of `flow` onward
    /// (forwarded it or handed it to a client). Used by IT-Reliable to grant
    /// backpressure credits upstream; a no-op for every other protocol.
    fn on_consumed(&mut self, now: SimTime, flow: FlowKey, out: &mut Vec<LinkAction>) {
        let _ = (now, flow, out);
    }

    /// Current counters.
    fn stats(&self) -> LinkProtoStats;

    /// Packets currently held in this protocol's send-side queues (scheduler
    /// queues plus unacknowledged retransmission buffers). The anomaly
    /// watchdog samples this each evaluation epoch to detect sustained queue
    /// growth; protocols without buffering report 0.
    fn queue_depth(&self) -> usize {
        0
    }

    /// Estimated retained heap bytes of this protocol's buffers (queued and
    /// unacknowledged packets, reassembly state), per the
    /// [`son_obs::MemFootprint`] capacity-estimate policy. Protocols without
    /// buffering report 0.
    fn queue_bytes(&self) -> usize {
        0
    }
}

/// Egress pacing shared by the fair schedulers: models the node's per-link
/// transmission capacity so that contention (and therefore fairness) exists
/// even over infinite-bandwidth pipes.
#[derive(Debug, Clone)]
pub struct Pacer {
    /// Egress rate in bytes per second; `None` disables pacing.
    rate_bps: Option<u64>,
    busy_until: SimTime,
}

impl Pacer {
    /// Creates a pacer with the given egress rate in **bits** per second.
    #[must_use]
    pub fn new(rate_bits_per_sec: Option<u64>) -> Self {
        Pacer {
            rate_bps: rate_bits_per_sec,
            busy_until: SimTime::ZERO,
        }
    }

    /// `true` if a transmission may start now.
    #[must_use]
    pub fn idle(&self, now: SimTime) -> bool {
        now >= self.busy_until
    }

    /// Starts a transmission of `bytes` at `now`; returns how long the
    /// serializer stays busy (zero when pacing is disabled).
    pub fn start(&mut self, now: SimTime, bytes: usize) -> SimDuration {
        match self.rate_bps {
            None => SimDuration::ZERO,
            Some(bps) => {
                let tx = SimDuration::from_secs_f64(bytes as f64 * 8.0 / bps as f64);
                self.busy_until = now + tx;
                tx
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use bytes::Bytes;
    use son_netsim::time::SimTime;
    use son_topo::NodeId;

    use crate::addr::{Destination, FlowKey, OverlayAddr};
    use crate::packet::DataPacket;
    use crate::service::FlowSpec;

    /// A data packet for protocol unit tests.
    pub fn pkt(flow_seq: u64, size: usize) -> DataPacket {
        pkt_from(0, flow_seq, size)
    }

    /// A data packet from a particular source client.
    pub fn pkt_from(src_node: usize, flow_seq: u64, size: usize) -> DataPacket {
        DataPacket {
            flow: FlowKey::new(
                OverlayAddr::new(NodeId(src_node), 1),
                Destination::Unicast(OverlayAddr::new(NodeId(9), 1)),
            ),
            flow_seq,
            origin: NodeId(src_node),
            spec: FlowSpec::reliable(),
            mask: None,
            resolved_dst: None,
            link_seq: 0,
            created_at: SimTime::ZERO,
            size,
            payload: Bytes::new(),
            ttl: 32,
            auth_tag: 0,
            trace: None,
        }
    }

    /// Stamps a trace context on a test packet (hop as seen at this node).
    pub fn traced(mut p: DataPacket, trace_id: u64, hop: u8) -> DataPacket {
        p.trace = Some(son_obs::trace::TraceContext { id: trace_id, hop });
        p
    }

    /// Extracts transmitted packets from an action list.
    pub fn transmitted(actions: &[super::LinkAction]) -> Vec<&DataPacket> {
        actions
            .iter()
            .filter_map(|a| match a {
                super::LinkAction::Transmit(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    /// Extracts delivered packets from an action list.
    pub fn delivered(actions: &[super::LinkAction]) -> Vec<&DataPacket> {
        actions
            .iter()
            .filter_map(|a| match a {
                super::LinkAction::Deliver(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    /// Extracts `(delay, token)` timer requests from an action list.
    pub fn timers(actions: &[super::LinkAction]) -> Vec<(son_netsim::time::SimDuration, u32)> {
        actions
            .iter()
            .filter_map(|a| match a {
                super::LinkAction::Timer { delay, token } => Some((*delay, *token)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{delivered, pkt, traced, transmitted};
    use super::*;
    use crate::service::RealtimeParams;

    /// Every link protocol must carry the packet's trace context through
    /// unchanged — the context is header state, owned by the routing level;
    /// protocols rewrite only `link_seq`.
    #[test]
    fn protocols_propagate_trace_context() {
        let now = SimTime::from_millis(1);
        let protos: Vec<Box<dyn LinkProto>> = vec![
            Box::new(BestEffortLink::default()),
            Box::new(ReliableLink::new(SimDuration::from_millis(40))),
            Box::new(RealtimeLink::new(RealtimeParams::live_tv())),
            Box::new(FifoLink::new(64, None)),
        ];
        for mut proto in protos {
            let mut out = Vec::new();
            proto.on_send(now, traced(pkt(1, 100), 99, 2), &mut out);
            let txs = transmitted(&out);
            assert_eq!(txs.len(), 1);
            let sent = txs[0].clone();
            assert_eq!(
                sent.trace,
                Some(son_obs::trace::TraceContext { id: 99, hop: 2 }),
                "{proto:?} lost the trace context on send"
            );
            let mut rx_out = Vec::new();
            proto.on_data(now, sent, &mut rx_out);
            let rx = delivered(&rx_out);
            assert_eq!(rx.len(), 1);
            assert_eq!(
                rx[0].trace,
                Some(son_obs::trace::TraceContext { id: 99, hop: 2 }),
                "{proto:?} lost the trace context on receive"
            );
        }
    }

    /// Gap detection must be observable: both recovery protocols report
    /// `LossDetected` the moment the receiver notices a sequence gap.
    #[test]
    fn receivers_report_loss_detected_on_gap() {
        let now = SimTime::from_millis(1);
        let loss_events = |out: &[LinkAction]| {
            out.iter()
                .filter(|a| matches!(a, LinkAction::Observe(LinkEvent::LossDetected)))
                .count()
        };

        let mut rel = ReliableLink::new(SimDuration::from_millis(40));
        let mut out = Vec::new();
        let mut p1 = pkt(1, 100);
        p1.link_seq = 1;
        rel.on_data(now, p1, &mut out);
        assert_eq!(loss_events(&out), 0, "in-order arrival is not a gap");
        out.clear();
        let mut p4 = pkt(4, 100);
        p4.link_seq = 4;
        rel.on_data(now, p4, &mut out);
        assert_eq!(loss_events(&out), 2, "seqs 2 and 3 are missing");

        let mut rt = RealtimeLink::new(RealtimeParams::live_tv());
        let mut out = Vec::new();
        let mut p2 = pkt(2, 100);
        p2.link_seq = 2;
        rt.on_data(now, p2, &mut out);
        assert_eq!(loss_events(&out), 1, "seq 1 is missing");
    }

    #[test]
    fn overhead_ratio_counts_retransmissions() {
        let s = LinkProtoStats {
            sent: 100,
            retransmitted: 5,
            ..Default::default()
        };
        assert!((s.overhead_ratio() - 1.05).abs() < 1e-12);
        assert_eq!(LinkProtoStats::default().overhead_ratio(), 1.0);
    }

    #[test]
    fn pacer_serializes_at_rate() {
        // 8 Mbit/s -> 1000 bytes take 1 ms.
        let mut p = Pacer::new(Some(8_000_000));
        assert!(p.idle(SimTime::ZERO));
        let tx = p.start(SimTime::ZERO, 1000);
        assert_eq!(tx, SimDuration::from_millis(1));
        assert!(!p.idle(SimTime::from_micros(500)));
        assert!(p.idle(SimTime::from_millis(1)));
    }

    #[test]
    fn pacer_disabled_is_always_idle() {
        let mut p = Pacer::new(None);
        assert_eq!(p.start(SimTime::ZERO, 1_000_000), SimDuration::ZERO);
        assert!(p.idle(SimTime::ZERO));
    }
}
