//! Forward error correction link protocol — the OverQoS-style ablation.
//!
//! The paper's related work contrasts its reactive recovery protocols with
//! OverQoS \[10\], which uses "a combination of forward error correction and
//! packet retransmissions". This protocol is the pure-FEC point in that
//! design space: every block of `k` data packets is followed by `r` repair
//! packets, and any `k` of the `k + r` transmissions reconstruct the block
//! (a systematic MDS code, e.g. Reed–Solomon; the simulator carries the
//! covered headers in the repair packet rather than actual code symbols).
//!
//! Compared with NM-Strikes: overhead is **fixed** at `(k+r)/k` whether or
//! not loss occurs, no feedback channel is needed, and recovery latency is
//! bounded by the block duration — but bursts longer than `r` packets within
//! a block defeat it, and the overhead is paid even on clean links.

use std::collections::{BTreeMap, BTreeSet};

use son_netsim::time::SimTime;

use crate::packet::{DataPacket, LinkCtl};
use crate::service::{FecParams, LinkService};

use super::{LinkAction, LinkEvent, LinkProto, LinkProtoStats};

/// Receiver-side memory horizon, in blocks.
const BLOCK_MEMORY: u64 = 64;

#[derive(Debug, Default)]
struct BlockState {
    /// Data sequence numbers received (or recovered) in this block.
    have: BTreeSet<u64>,
    /// Repair packets received, with the covered headers.
    repairs: Vec<Vec<DataPacket>>,
    /// Sequence numbers already delivered upward.
    delivered: BTreeSet<u64>,
    /// When the first transmission of this block arrived, bounding the
    /// observed recovery latency by the block duration.
    first_seen: Option<SimTime>,
}

impl BlockState {
    fn note_seen(&mut self, now: SimTime) {
        if self.first_seen.is_none() {
            self.first_seen = Some(now);
        }
    }
}

/// FEC link protocol instance (one link, both directions).
#[derive(Debug)]
pub struct FecLink {
    params: FecParams,
    // --- sender state ---
    next_seq: u64,
    block: Vec<DataPacket>,
    // --- receiver state ---
    blocks: BTreeMap<u64, BlockState>,
    stats: LinkProtoStats,
    recovered: u64,
}

impl FecLink {
    /// Creates an instance with the given default code parameters (packets
    /// carrying their own [`FecParams`] update the instance).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid.
    #[must_use]
    pub fn new(params: FecParams) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid FEC params: {e}"));
        FecLink {
            params,
            next_seq: 0,
            block: Vec::new(),
            blocks: BTreeMap::new(),
            stats: LinkProtoStats::default(),
            recovered: 0,
        }
    }

    /// Packets reconstructed from repair information on this link.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    fn block_start(&self, seq: u64) -> u64 {
        let k = u64::from(self.params.k);
        ((seq - 1) / k) * k + 1
    }

    /// Attempts reconstruction: with `have + repairs >= k`, every missing
    /// packet of the block is recoverable from the repair headers.
    fn try_recover(&mut self, now: SimTime, start: u64, out: &mut Vec<LinkAction>) {
        let k = u64::from(self.params.k);
        let Some(state) = self.blocks.get_mut(&start) else {
            return;
        };
        let have = state.have.len() as u64;
        let repairs = state.repairs.len() as u64;
        if have >= k || have + repairs < k || state.repairs.is_empty() {
            return;
        }
        // Reconstruct all missing data packets of the block. Recovery
        // latency is measured from the block's first arrival — FEC has no
        // per-packet gap detection, so the block span is the honest bound.
        let since_first = now.saturating_since(state.first_seen.unwrap_or(now));
        let covered = state.repairs[0].clone();
        for pkt in covered {
            if !state.have.contains(&pkt.link_seq) {
                state.have.insert(pkt.link_seq);
                state.delivered.insert(pkt.link_seq);
                self.recovered += 1;
                self.stats.received += 1;
                out.push(LinkAction::Observe(LinkEvent::Recovered {
                    after: since_first,
                }));
                out.push(LinkAction::Deliver(pkt));
            }
        }
    }

    fn prune(&mut self) {
        let k = u64::from(self.params.k);
        let horizon = self.next_block_floor().saturating_sub(BLOCK_MEMORY * k);
        self.blocks = self.blocks.split_off(&horizon);
    }

    fn next_block_floor(&self) -> u64 {
        self.blocks.keys().next_back().copied().unwrap_or(0)
    }
}

impl LinkProto for FecLink {
    fn on_send(&mut self, _now: SimTime, mut pkt: DataPacket, out: &mut Vec<LinkAction>) {
        if let LinkService::Fec(p) = pkt.spec.link {
            if p.validate().is_ok() && self.block.is_empty() {
                self.params = p; // only switch codes on block boundaries
            }
        }
        self.next_seq += 1;
        pkt.link_seq = self.next_seq;
        self.stats.sent += 1;
        out.push(LinkAction::Transmit(pkt.clone()));
        // Strip the payload bytes for the repair header copy.
        pkt.payload = bytes::Bytes::new();
        self.block.push(pkt);
        if self.block.len() >= usize::from(self.params.k) {
            let block_start = self.next_seq + 1 - u64::from(self.params.k);
            for index in 0..self.params.r {
                // Repairs are full-width extra transmissions: account them
                // as overhead so the (k+r)/k cost shows up in the ratio.
                self.stats.retransmitted += 1;
                out.push(LinkAction::Observe(LinkEvent::Retransmit));
                out.push(LinkAction::TransmitCtl(LinkCtl::FecRepair {
                    block_start,
                    index,
                    covered: self.block.clone(),
                }));
            }
            self.block.clear();
        }
    }

    fn on_data(&mut self, now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        let start = self.block_start(pkt.link_seq);
        let state = self.blocks.entry(start).or_default();
        state.note_seen(now);
        if state.delivered.contains(&pkt.link_seq) {
            self.stats.dup_received += 1;
            return;
        }
        state.have.insert(pkt.link_seq);
        state.delivered.insert(pkt.link_seq);
        self.stats.received += 1;
        out.push(LinkAction::Deliver(pkt));
        self.try_recover(now, start, out);
        self.prune();
    }

    fn on_ctl(&mut self, now: SimTime, ctl: LinkCtl, out: &mut Vec<LinkAction>) {
        let LinkCtl::FecRepair {
            block_start,
            covered,
            ..
        } = ctl
        else {
            return;
        };
        let state = self.blocks.entry(block_start).or_default();
        state.note_seen(now);
        state.repairs.push(covered);
        self.try_recover(now, block_start, out);
        self.prune();
    }

    fn on_timer(&mut self, _now: SimTime, _token: u32, _out: &mut Vec<LinkAction>) {}

    fn stats(&self) -> LinkProtoStats {
        self.stats
    }

    fn queue_bytes(&self) -> usize {
        use son_obs::footprint::{btreemap_bytes, btreeset_bytes, vec_bytes};
        vec_bytes(&self.block)
            + self.block.iter().map(|p| p.payload.len()).sum::<usize>()
            + btreemap_bytes(&self.blocks)
            + self
                .blocks
                .values()
                .map(|b| {
                    btreeset_bytes(&b.have)
                        + btreeset_bytes(&b.delivered)
                        + vec_bytes(&b.repairs)
                        + b.repairs.iter().map(vec_bytes).sum::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{delivered, pkt, transmitted};
    use super::*;

    fn params() -> FecParams {
        FecParams { k: 4, r: 1 }
    }

    fn send_n(link: &mut FecLink, n: u64) -> Vec<LinkAction> {
        let mut out = Vec::new();
        for i in 0..n {
            let mut p = pkt(i + 1, 100);
            p.spec.link = LinkService::Fec(params());
            link.on_send(SimTime::ZERO, p, &mut out);
        }
        out
    }

    fn repairs(actions: &[LinkAction]) -> Vec<(u64, Vec<DataPacket>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                LinkAction::TransmitCtl(LinkCtl::FecRepair {
                    block_start,
                    covered,
                    ..
                }) => Some((*block_start, covered.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sender_emits_r_repairs_per_block() {
        let mut s = FecLink::new(params());
        let out = send_n(&mut s, 9);
        assert_eq!(transmitted(&out).len(), 9);
        let reps = repairs(&out);
        assert_eq!(reps.len(), 2, "two complete blocks of 4");
        assert_eq!(reps[0].0, 1);
        assert_eq!(reps[1].0, 5);
        assert_eq!(reps[0].1.len(), 4);
        // Repair wire size is one max-size packet plus the k covered
        // headers (payloads are stripped; only their descriptions ride).
        let ctl = LinkCtl::FecRepair {
            block_start: 1,
            index: 0,
            covered: reps[0].1.clone(),
        };
        assert_eq!(ctl.wire_size(), 16 + (48 + 100) + 48 * 4);
        assert!(reps[0].1.iter().all(|p| p.payload.is_empty()));
    }

    #[test]
    fn receiver_recovers_single_loss_from_repair() {
        let mut s = FecLink::new(params());
        let out = send_n(&mut s, 4);
        let data: Vec<DataPacket> = transmitted(&out).into_iter().cloned().collect();
        let (bs, covered) = repairs(&out).remove(0);

        let mut r = FecLink::new(params());
        let mut rout = Vec::new();
        // Deliver 3 of 4 data packets (seq 2 lost), then the repair.
        for p in [&data[0], &data[2], &data[3]] {
            r.on_data(SimTime::ZERO, (*p).clone(), &mut rout);
        }
        assert_eq!(delivered(&rout).len(), 3);
        r.on_ctl(
            SimTime::ZERO,
            LinkCtl::FecRepair {
                block_start: bs,
                index: 0,
                covered,
            },
            &mut rout,
        );
        let seqs: Vec<u64> = delivered(&rout).iter().map(|p| p.link_seq).collect();
        assert_eq!(seqs, vec![1, 3, 4, 2], "missing packet reconstructed last");
        assert_eq!(r.recovered(), 1);
    }

    #[test]
    fn two_losses_defeat_r1() {
        let mut s = FecLink::new(params());
        let out = send_n(&mut s, 4);
        let data: Vec<DataPacket> = transmitted(&out).into_iter().cloned().collect();
        let (bs, covered) = repairs(&out).remove(0);
        let mut r = FecLink::new(params());
        let mut rout = Vec::new();
        r.on_data(SimTime::ZERO, data[0].clone(), &mut rout);
        r.on_data(SimTime::ZERO, data[3].clone(), &mut rout);
        r.on_ctl(
            SimTime::ZERO,
            LinkCtl::FecRepair {
                block_start: bs,
                index: 0,
                covered,
            },
            &mut rout,
        );
        assert_eq!(delivered(&rout).len(), 2, "2 + 1 repair < k: unrecoverable");
        assert_eq!(r.recovered(), 0);
    }

    #[test]
    fn r2_recovers_double_loss() {
        let p = FecParams { k: 4, r: 2 };
        let mut s = FecLink::new(p);
        let mut out = Vec::new();
        for i in 0..4 {
            let mut d = pkt(i + 1, 100);
            d.spec.link = LinkService::Fec(p);
            s.on_send(SimTime::ZERO, d, &mut out);
        }
        let data: Vec<DataPacket> = transmitted(&out).into_iter().cloned().collect();
        let reps = repairs(&out);
        assert_eq!(reps.len(), 2);
        let mut r = FecLink::new(p);
        let mut rout = Vec::new();
        r.on_data(SimTime::ZERO, data[0].clone(), &mut rout);
        r.on_data(SimTime::ZERO, data[1].clone(), &mut rout);
        for (bs, covered) in reps {
            r.on_ctl(
                SimTime::ZERO,
                LinkCtl::FecRepair {
                    block_start: bs,
                    index: 0,
                    covered,
                },
                &mut rout,
            );
        }
        assert_eq!(delivered(&rout).len(), 4);
        assert_eq!(r.recovered(), 2);
    }

    #[test]
    fn duplicates_and_late_copies_suppressed() {
        let mut s = FecLink::new(params());
        let out = send_n(&mut s, 4);
        let data: Vec<DataPacket> = transmitted(&out).into_iter().cloned().collect();
        let (bs, covered) = repairs(&out).remove(0);
        let mut r = FecLink::new(params());
        let mut rout = Vec::new();
        for p in [&data[0], &data[2], &data[3]] {
            r.on_data(SimTime::ZERO, (*p).clone(), &mut rout);
        }
        r.on_ctl(
            SimTime::ZERO,
            LinkCtl::FecRepair {
                block_start: bs,
                index: 0,
                covered,
            },
            &mut rout,
        );
        rout.clear();
        // The "lost" packet finally arrives: already recovered -> duplicate.
        r.on_data(SimTime::ZERO, data[1].clone(), &mut rout);
        assert!(delivered(&rout).is_empty());
        assert_eq!(r.stats().dup_received, 1);
    }

    #[test]
    fn overhead_matches_params() {
        assert!((FecParams::light().overhead() - 1.1).abs() < 1e-12);
        assert!((FecParams::strong().overhead() - 1.3).abs() < 1e-12);
        assert!(FecParams { k: 0, r: 1 }.validate().is_err());
        assert!(FecParams { k: 1, r: 0 }.validate().is_err());
    }
}
