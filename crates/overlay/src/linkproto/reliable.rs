//! The Reliable Data Link: hop-by-hop ARQ with out-of-order forwarding
//! (§III-A, \[4\]).
//!
//! Each overlay link recovers its own losses: the receiver acknowledges
//! every packet (cumulative + selective) and reports gaps immediately
//! (NACK) so the sender can retransmit within roughly one link round trip —
//! this is what turns a 50 ms end-to-end recovery into a 10 ms hop-local
//! one (Fig. 3). "To provide smoother packet delivery, intermediate nodes
//! are permitted to forward packets out of order; the final destination is
//! responsible for buffering received packets until they can be delivered
//! in order."

use std::collections::{BTreeMap, BTreeSet, HashMap};

use son_netsim::time::{SimDuration, SimTime};

use crate::packet::{DataPacket, LinkCtl};

use super::{LinkAction, LinkEvent, LinkProto, LinkProtoStats};

/// Cap on how many missing sequence numbers one NACK reports.
const MAX_NACK: usize = 64;
/// Cap on how many selective acknowledgments ride in one ACK.
const MAX_SACK: usize = 64;

/// Hop-by-hop reliable link protocol instance (one link, both directions).
#[derive(Debug)]
pub struct ReliableLink {
    rto: SimDuration,
    // --- sender state ---
    next_seq: u64,
    unacked: BTreeMap<u64, DataPacket>,
    timer_purpose: HashMap<u32, u64>,
    next_token: u32,
    // --- receiver state ---
    cum: u64,
    above: BTreeSet<u64>,
    /// When each currently missing sequence number was first noticed, for
    /// per-hop recovery-latency observation.
    gap_noticed: HashMap<u64, SimTime>,
    stats: LinkProtoStats,
    /// High-water mark of the retransmission buffer, for memory accounting.
    max_unacked: usize,
}

impl ReliableLink {
    /// Creates an instance with the given retransmission timeout.
    ///
    /// A sensible RTO is a small multiple of the link RTT — gaps are
    /// normally repaired faster via the NACK fast path; the RTO is the
    /// backstop for lost retransmissions, lost NACKs, and tail losses.
    #[must_use]
    pub fn new(rto: SimDuration) -> Self {
        ReliableLink {
            rto,
            next_seq: 0,
            unacked: BTreeMap::new(),
            timer_purpose: HashMap::new(),
            next_token: 0,
            cum: 0,
            above: BTreeSet::new(),
            gap_noticed: HashMap::new(),
            stats: LinkProtoStats::default(),
            max_unacked: 0,
        }
    }

    /// Packets currently held for possible retransmission.
    #[must_use]
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// High-water mark of the retransmission buffer.
    #[must_use]
    pub fn max_unacked(&self) -> usize {
        self.max_unacked
    }

    fn arm_rto(&mut self, seq: u64, out: &mut Vec<LinkAction>) {
        let token = self.next_token;
        self.next_token = self.next_token.wrapping_add(1);
        self.timer_purpose.insert(token, seq);
        out.push(LinkAction::Timer {
            delay: self.rto,
            token,
        });
    }

    fn ack_now(&mut self, out: &mut Vec<LinkAction>) {
        let selective: Vec<u64> = self.above.iter().copied().take(MAX_SACK).collect();
        self.stats.ctl_sent += 1;
        out.push(LinkAction::TransmitCtl(LinkCtl::ReliableAck {
            cum: self.cum,
            selective,
        }));
    }
}

impl LinkProto for ReliableLink {
    fn on_send(&mut self, _now: SimTime, mut pkt: DataPacket, out: &mut Vec<LinkAction>) {
        self.next_seq += 1;
        let seq = self.next_seq;
        pkt.link_seq = seq;
        self.unacked.insert(seq, pkt.clone());
        self.max_unacked = self.max_unacked.max(self.unacked.len());
        self.stats.sent += 1;
        out.push(LinkAction::Transmit(pkt));
        self.arm_rto(seq, out);
    }

    fn on_data(&mut self, now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        let seq = pkt.link_seq;
        let is_dup = seq <= self.cum || self.above.contains(&seq);
        if is_dup {
            self.stats.dup_received += 1;
            // Re-ack so the sender releases its buffer even if the original
            // ACK was lost.
            self.ack_now(out);
            return;
        }
        self.stats.received += 1;
        if let Some(noticed) = self.gap_noticed.remove(&seq) {
            // This packet fills a previously reported gap: a hop-local
            // recovery, completed one NACK round trip after detection.
            out.push(LinkAction::Observe(LinkEvent::Recovered {
                after: now.saturating_since(noticed),
            }));
        }
        // Gap detection: everything between the highest sequence seen so far
        // and this packet is missing; request it immediately (fast path).
        let prev_high = self.above.iter().next_back().copied().unwrap_or(self.cum);
        if seq > prev_high + 1 {
            let missing: Vec<u64> = (prev_high + 1..seq).take(MAX_NACK).collect();
            for &m in &missing {
                self.gap_noticed.insert(m, now);
                out.push(LinkAction::Observe(LinkEvent::LossDetected));
            }
            self.stats.ctl_sent += 1;
            out.push(LinkAction::TransmitCtl(LinkCtl::ReliableNack { missing }));
        }
        self.above.insert(seq);
        while self.above.remove(&(self.cum + 1)) {
            self.cum += 1;
        }
        // Gaps below the cumulative point are resolved; drop stale stamps so
        // the map stays bounded by the reorder window.
        let cum = self.cum;
        self.gap_noticed.retain(|&s, _| s > cum);
        // Out-of-order forwarding: deliver upward immediately.
        out.push(LinkAction::Deliver(pkt));
        self.ack_now(out);
    }

    fn on_ctl(&mut self, _now: SimTime, ctl: LinkCtl, out: &mut Vec<LinkAction>) {
        match ctl {
            LinkCtl::ReliableAck { cum, selective } => {
                self.unacked = self.unacked.split_off(&(cum + 1));
                for seq in selective {
                    self.unacked.remove(&seq);
                }
            }
            LinkCtl::ReliableNack { missing } => {
                for seq in missing {
                    if let Some(pkt) = self.unacked.get(&seq) {
                        self.stats.retransmitted += 1;
                        out.push(LinkAction::Observe(LinkEvent::Retransmit));
                        out.push(LinkAction::Transmit(pkt.clone()));
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, token: u32, out: &mut Vec<LinkAction>) {
        let Some(seq) = self.timer_purpose.remove(&token) else {
            return;
        };
        if let Some(pkt) = self.unacked.get(&seq) {
            self.stats.retransmitted += 1;
            out.push(LinkAction::Observe(LinkEvent::Retransmit));
            out.push(LinkAction::Transmit(pkt.clone()));
            self.arm_rto(seq, out);
        }
    }

    fn stats(&self) -> LinkProtoStats {
        self.stats
    }

    fn queue_depth(&self) -> usize {
        self.unacked.len()
    }

    fn queue_bytes(&self) -> usize {
        use son_obs::footprint::{btreemap_bytes, btreeset_bytes, hashmap_bytes};
        btreemap_bytes(&self.unacked)
            + self
                .unacked
                .values()
                .map(|p| p.payload.len())
                .sum::<usize>()
            + hashmap_bytes(&self.timer_purpose)
            + btreeset_bytes(&self.above)
            + hashmap_bytes(&self.gap_noticed)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{delivered, pkt, timers, transmitted};
    use super::*;

    fn rl() -> ReliableLink {
        ReliableLink::new(SimDuration::from_millis(40))
    }

    #[test]
    fn send_assigns_increasing_link_seqs_and_arms_rto() {
        let mut s = rl();
        let mut out = Vec::new();
        s.on_send(SimTime::ZERO, pkt(10, 100), &mut out);
        s.on_send(SimTime::ZERO, pkt(11, 100), &mut out);
        let tx = transmitted(&out);
        assert_eq!(tx[0].link_seq, 1);
        assert_eq!(tx[1].link_seq, 2);
        assert_eq!(timers(&out).len(), 2);
        assert_eq!(s.unacked_len(), 2);
    }

    #[test]
    fn in_order_receive_delivers_and_acks() {
        let mut r = rl();
        let mut out = Vec::new();
        let mut p = pkt(5, 100);
        p.link_seq = 1;
        r.on_data(SimTime::ZERO, p, &mut out);
        assert_eq!(delivered(&out).len(), 1);
        assert!(out.iter().any(|a| matches!(
            a,
            LinkAction::TransmitCtl(LinkCtl::ReliableAck { cum: 1, .. })
        )));
    }

    #[test]
    fn gap_triggers_immediate_nack_and_out_of_order_delivery() {
        let mut r = rl();
        let mut out = Vec::new();
        let mut p1 = pkt(1, 100);
        p1.link_seq = 1;
        r.on_data(SimTime::ZERO, p1, &mut out);
        out.clear();
        let mut p4 = pkt(4, 100);
        p4.link_seq = 4;
        r.on_data(SimTime::ZERO, p4, &mut out);
        // Seq 4 is delivered immediately even though 2 and 3 are missing.
        assert_eq!(delivered(&out).len(), 1);
        assert!(out.iter().any(|a| matches!(
            a,
            LinkAction::TransmitCtl(LinkCtl::ReliableNack { missing }) if *missing == vec![2, 3]
        )));
        // The ACK advertises cum=1 and the selective 4.
        assert!(out.iter().any(|a| matches!(
            a,
            LinkAction::TransmitCtl(LinkCtl::ReliableAck { cum: 1, selective }) if *selective == vec![4]
        )));
    }

    #[test]
    fn nack_retransmits_only_unacked() {
        let mut s = rl();
        let mut out = Vec::new();
        for i in 0..3 {
            s.on_send(SimTime::ZERO, pkt(i, 100), &mut out);
        }
        out.clear();
        // Ack seq 1; nack 1 (stale) and 2.
        s.on_ctl(
            SimTime::ZERO,
            LinkCtl::ReliableAck {
                cum: 1,
                selective: vec![],
            },
            &mut out,
        );
        s.on_ctl(
            SimTime::ZERO,
            LinkCtl::ReliableNack {
                missing: vec![1, 2],
            },
            &mut out,
        );
        let tx = transmitted(&out);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].link_seq, 2);
        assert_eq!(s.stats().retransmitted, 1);
    }

    #[test]
    fn ack_releases_buffer_cumulative_and_selective() {
        let mut s = rl();
        let mut out = Vec::new();
        for i in 0..5 {
            s.on_send(SimTime::ZERO, pkt(i, 100), &mut out);
        }
        assert_eq!(s.unacked_len(), 5);
        s.on_ctl(
            SimTime::ZERO,
            LinkCtl::ReliableAck {
                cum: 2,
                selective: vec![4],
            },
            &mut out,
        );
        assert_eq!(s.unacked_len(), 2, "3 and 5 remain");
        assert_eq!(s.max_unacked(), 5);
    }

    #[test]
    fn rto_retransmits_until_acked() {
        let mut s = rl();
        let mut out = Vec::new();
        s.on_send(SimTime::ZERO, pkt(0, 100), &mut out);
        let (_delay, token) = timers(&out)[0];
        out.clear();
        s.on_timer(SimTime::from_millis(40), token, &mut out);
        assert_eq!(transmitted(&out).len(), 1);
        let (_, token2) = timers(&out)[0];
        out.clear();
        // Ack arrives; the next RTO must be a no-op.
        s.on_ctl(
            SimTime::from_millis(41),
            LinkCtl::ReliableAck {
                cum: 1,
                selective: vec![],
            },
            &mut out,
        );
        s.on_timer(SimTime::from_millis(80), token2, &mut out);
        assert!(transmitted(&out).is_empty());
    }

    #[test]
    fn duplicate_data_reacked_not_redelivered() {
        let mut r = rl();
        let mut out = Vec::new();
        let mut p = pkt(0, 100);
        p.link_seq = 1;
        r.on_data(SimTime::ZERO, p.clone(), &mut out);
        out.clear();
        r.on_data(SimTime::ZERO, p, &mut out);
        assert!(delivered(&out).is_empty());
        assert_eq!(r.stats().dup_received, 1);
        assert!(out
            .iter()
            .any(|a| matches!(a, LinkAction::TransmitCtl(LinkCtl::ReliableAck { .. }))));
    }

    #[test]
    fn cum_advances_through_reordered_arrivals() {
        let mut r = rl();
        let mut out = Vec::new();
        for seq in [2u64, 3, 1] {
            let mut p = pkt(seq, 10);
            p.link_seq = seq;
            r.on_data(SimTime::ZERO, p, &mut out);
        }
        // After 1 arrives, cum should be 3 with no selective entries.
        let last_ack = out
            .iter()
            .rev()
            .find_map(|a| match a {
                LinkAction::TransmitCtl(LinkCtl::ReliableAck { cum, selective }) => {
                    Some((*cum, selective.clone()))
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(last_ack, (3, vec![]));
        assert_eq!(delivered(&out).len(), 3, "all three forwarded immediately");
    }

    #[test]
    fn gap_fill_reports_recovery_latency() {
        let mut r = rl();
        let mut out = Vec::new();
        let mut p1 = pkt(1, 100);
        p1.link_seq = 1;
        r.on_data(SimTime::ZERO, p1, &mut out);
        let mut p3 = pkt(3, 100);
        p3.link_seq = 3;
        r.on_data(SimTime::from_millis(10), p3, &mut out);
        out.clear();
        // The retransmitted seq 2 arrives 8 ms after the gap was noticed.
        let mut p2 = pkt(2, 100);
        p2.link_seq = 2;
        r.on_data(SimTime::from_millis(18), p2, &mut out);
        let recovered: Vec<SimDuration> = out
            .iter()
            .filter_map(|a| match a {
                LinkAction::Observe(LinkEvent::Recovered { after }) => Some(*after),
                _ => None,
            })
            .collect();
        assert_eq!(recovered, vec![SimDuration::from_millis(8)]);
        // A fresh in-order packet reports nothing.
        out.clear();
        let mut p4 = pkt(4, 100);
        p4.link_seq = 4;
        r.on_data(SimTime::from_millis(20), p4, &mut out);
        assert!(out.iter().all(|a| !matches!(a, LinkAction::Observe(_))));
    }

    #[test]
    fn retransmissions_are_observed() {
        let mut s = rl();
        let mut out = Vec::new();
        s.on_send(SimTime::ZERO, pkt(0, 100), &mut out);
        out.clear();
        s.on_ctl(
            SimTime::ZERO,
            LinkCtl::ReliableNack { missing: vec![1] },
            &mut out,
        );
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, LinkAction::Observe(LinkEvent::Retransmit)))
                .count(),
            1
        );
    }

    #[test]
    fn stale_timer_token_is_noop() {
        let mut s = rl();
        let mut out = Vec::new();
        s.on_timer(SimTime::ZERO, 999, &mut out);
        assert!(out.is_empty());
    }
}

#[cfg(test)]
mod cap_tests {
    use super::super::testutil::pkt;
    use super::*;

    #[test]
    fn nack_and_sack_lists_are_capped() {
        let mut r = ReliableLink::new(SimDuration::from_millis(40));
        let mut out = Vec::new();
        // A packet arrives with a 200-seq gap: the NACK must cap at MAX_NACK
        // and the ACK's selective list at MAX_SACK.
        let mut p = pkt(1, 10);
        p.link_seq = 201;
        r.on_data(SimTime::ZERO, p, &mut out);
        let nack_len = out
            .iter()
            .find_map(|a| match a {
                LinkAction::TransmitCtl(LinkCtl::ReliableNack { missing }) => Some(missing.len()),
                _ => None,
            })
            .expect("nack emitted");
        assert_eq!(nack_len, MAX_NACK);
        let sack_len = out
            .iter()
            .find_map(|a| match a {
                LinkAction::TransmitCtl(LinkCtl::ReliableAck { selective, .. }) => {
                    Some(selective.len())
                }
                _ => None,
            })
            .expect("ack emitted");
        assert!(sack_len <= MAX_SACK);
    }

    #[test]
    fn buffer_high_water_is_tracked() {
        let mut s = ReliableLink::new(SimDuration::from_millis(40));
        let mut out = Vec::new();
        for i in 0..10 {
            s.on_send(SimTime::ZERO, pkt(i, 10), &mut out);
        }
        s.on_ctl(
            SimTime::ZERO,
            LinkCtl::ReliableAck {
                cum: 10,
                selective: vec![],
            },
            &mut out,
        );
        assert_eq!(s.unacked_len(), 0);
        assert_eq!(s.max_unacked(), 10, "high-water survives the drain");
    }
}
