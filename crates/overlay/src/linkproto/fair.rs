//! Intrusion-tolerant fair scheduling (§IV-B) and the FIFO baseline.
//!
//! "Both Priority and Reliable messaging use fair buffer allocation and
//! round-robin scheduling to ensure that a compromised source cannot consume
//! the resources of other sources to prevent their messages from being
//! forwarded."
//!
//! * [`ItPriorityLink`] — per-**source** bounded buffers; when a source's
//!   buffer fills, the oldest lowest-priority message *of that source* is
//!   dropped; egress serves active sources round-robin.
//! * [`ItReliableLink`] — per-**flow** (source, destination) bounded
//!   buffers; when a flow's buffer fills the node stops accepting and
//!   backpressure propagates hop by hop to the source; egress serves active
//!   flows round-robin; per-packet acknowledgment and retransmission give
//!   complete reliability.
//! * [`FifoLink`] — a single shared tail-drop queue: the baseline a
//!   flooding attacker defeats.
//!
//! All three pace egress at a configured rate, modelling the node's
//! transmission capacity — without contention there is nothing to be fair
//! about.

use std::collections::{BTreeMap, HashMap, VecDeque};

use son_netsim::time::{SimDuration, SimTime};
use son_obs::DropClass;

use crate::addr::{FlowKey, OverlayAddr};
use crate::packet::{DataPacket, LinkCtl};

use super::{LinkAction, LinkEvent, LinkProto, LinkProtoStats, Pacer};

/// Timer token used by all schedulers for "serializer free" events.
const TOKEN_TX_DONE: u32 = 0;
/// First token available for other purposes (IT-Reliable RTOs).
const TOKEN_BASE: u32 = 1;

// ---------------------------------------------------------------------------
// Intrusion-Tolerant Priority
// ---------------------------------------------------------------------------

/// Per-source fair scheduler with priority + age eviction.
#[derive(Debug)]
pub struct ItPriorityLink {
    per_source_cap: usize,
    queues: BTreeMap<OverlayAddr, VecDeque<DataPacket>>,
    rr: VecDeque<OverlayAddr>,
    pacer: Pacer,
    tx_pending: bool,
    next_link_seq: u64,
    stats: LinkProtoStats,
    forwarded_by_source: BTreeMap<OverlayAddr, u64>,
}

impl ItPriorityLink {
    /// Creates a priority scheduler.
    ///
    /// * `per_source_cap` — max packets buffered per active source.
    /// * `rate_bits_per_sec` — egress capacity (`None` = unpaced).
    #[must_use]
    pub fn new(per_source_cap: usize, rate_bits_per_sec: Option<u64>) -> Self {
        assert!(per_source_cap > 0, "per-source capacity must be positive");
        ItPriorityLink {
            per_source_cap,
            queues: BTreeMap::new(),
            rr: VecDeque::new(),
            pacer: Pacer::new(rate_bits_per_sec),
            tx_pending: false,
            next_link_seq: 0,
            stats: LinkProtoStats::default(),
            forwarded_by_source: BTreeMap::new(),
        }
    }

    /// Packets forwarded per source (for fairness reporting).
    #[must_use]
    pub fn forwarded_by_source(&self) -> &BTreeMap<OverlayAddr, u64> {
        &self.forwarded_by_source
    }

    /// Current queue length of one source.
    #[must_use]
    pub fn queue_len(&self, source: OverlayAddr) -> usize {
        self.queues.get(&source).map_or(0, VecDeque::len)
    }

    fn evict(&mut self, source: OverlayAddr, out: &mut Vec<LinkAction>) {
        // "The oldest lowest priority message for that source" is dropped.
        let Some(q) = self.queues.get_mut(&source) else {
            return;
        };
        let Some(min_prio) = q.iter().map(|p| p.spec.priority).min() else {
            return;
        };
        if let Some(pos) = q.iter().position(|p| p.spec.priority == min_prio) {
            q.remove(pos);
            self.stats.dropped += 1;
            out.push(LinkAction::Observe(LinkEvent::Drop(DropClass::BufferFull)));
        }
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<LinkAction>) {
        while !self.tx_pending && self.pacer.idle(now) {
            let Some(source) = self.rr.pop_front() else {
                return;
            };
            let Some(q) = self.queues.get_mut(&source) else {
                continue;
            };
            let Some(mut pkt) = q.pop_front() else {
                continue;
            };
            if !q.is_empty() {
                self.rr.push_back(source); // stays in the rotation
            }
            self.next_link_seq += 1;
            pkt.link_seq = self.next_link_seq;
            let busy = self.pacer.start(now, pkt.wire_size());
            *self.forwarded_by_source.entry(source).or_insert(0) += 1;
            out.push(LinkAction::Transmit(pkt));
            if !busy.is_zero() {
                self.tx_pending = true;
                out.push(LinkAction::Timer {
                    delay: busy,
                    token: TOKEN_TX_DONE,
                });
            }
        }
    }
}

impl LinkProto for ItPriorityLink {
    fn on_send(&mut self, now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        let source = pkt.flow.src;
        self.stats.sent += 1;
        let q = self.queues.entry(source).or_default();
        let was_empty = q.is_empty();
        q.push_back(pkt);
        if q.len() > self.per_source_cap {
            self.evict(source, out);
        }
        if was_empty && !self.queues[&source].is_empty() && !self.rr.contains(&source) {
            self.rr.push_back(source);
        }
        self.pump(now, out);
    }

    fn on_data(&mut self, _now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        self.stats.received += 1;
        out.push(LinkAction::Deliver(pkt));
    }

    fn on_ctl(&mut self, _now: SimTime, _ctl: LinkCtl, _out: &mut Vec<LinkAction>) {}

    fn on_timer(&mut self, now: SimTime, token: u32, out: &mut Vec<LinkAction>) {
        if token == TOKEN_TX_DONE {
            self.tx_pending = false;
            self.pump(now, out);
        }
    }

    fn stats(&self) -> LinkProtoStats {
        self.stats
    }

    fn queue_depth(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    fn queue_bytes(&self) -> usize {
        use son_obs::footprint::{btreemap_bytes, vecdeque_bytes};
        btreemap_bytes(&self.queues)
            + self
                .queues
                .values()
                .map(|q| vecdeque_bytes(q) + q.iter().map(|p| p.payload.len()).sum::<usize>())
                .sum::<usize>()
            + vecdeque_bytes(&self.rr)
            + btreemap_bytes(&self.forwarded_by_source)
    }
}

// ---------------------------------------------------------------------------
// Intrusion-Tolerant Reliable
// ---------------------------------------------------------------------------

/// Per-flow credit window (also the per-flow buffer bound at each hop).
pub const IT_RELIABLE_WINDOW: u32 = 16;
/// Ingress queue length at which the source client is paused.
const PAUSE_AT: usize = IT_RELIABLE_WINDOW as usize;
/// Ingress queue length at which a paused client resumes.
const RESUME_AT: usize = IT_RELIABLE_WINDOW as usize / 2;
/// Hard cap beyond which even ingress packets are dropped (a client that
/// ignores backpressure).
const HARD_CAP: usize = 2 * IT_RELIABLE_WINDOW as usize;

#[derive(Debug)]
struct ItFlowState {
    queue: VecDeque<DataPacket>,
    credits: u32,
    paused: bool,
}

impl Default for ItFlowState {
    fn default() -> Self {
        ItFlowState {
            queue: VecDeque::new(),
            credits: IT_RELIABLE_WINDOW,
            paused: false,
        }
    }
}

/// Per-flow fair scheduler with hop-by-hop credits, acknowledgments, and
/// retransmission.
#[derive(Debug)]
pub struct ItReliableLink {
    rto: SimDuration,
    flows: BTreeMap<FlowKey, ItFlowState>,
    rr: VecDeque<FlowKey>,
    pacer: Pacer,
    tx_pending: bool,
    // ARQ sender state.
    next_link_seq: u64,
    unacked: BTreeMap<u64, DataPacket>,
    rto_purpose: HashMap<u32, u64>,
    next_token: u32,
    // ARQ receiver state.
    recv_cum: u64,
    recv_above: std::collections::BTreeSet<u64>,
    stats: LinkProtoStats,
    forwarded_by_flow: BTreeMap<FlowKey, u64>,
}

impl ItReliableLink {
    /// Creates an IT-Reliable scheduler with the given retransmission
    /// timeout and egress rate.
    #[must_use]
    pub fn new(rto: SimDuration, rate_bits_per_sec: Option<u64>) -> Self {
        ItReliableLink {
            rto,
            flows: BTreeMap::new(),
            rr: VecDeque::new(),
            pacer: Pacer::new(rate_bits_per_sec),
            tx_pending: false,
            next_link_seq: 0,
            unacked: BTreeMap::new(),
            rto_purpose: HashMap::new(),
            next_token: TOKEN_BASE,
            recv_cum: 0,
            recv_above: Default::default(),
            stats: LinkProtoStats::default(),
            forwarded_by_flow: BTreeMap::new(),
        }
    }

    /// Packets forwarded per flow (for fairness reporting).
    #[must_use]
    pub fn forwarded_by_flow(&self) -> &BTreeMap<FlowKey, u64> {
        &self.forwarded_by_flow
    }

    /// Current queue length of one flow.
    #[must_use]
    pub fn queue_len(&self, flow: FlowKey) -> usize {
        self.flows.get(&flow).map_or(0, |f| f.queue.len())
    }

    /// Remaining downstream credits of one flow.
    #[must_use]
    pub fn credits(&self, flow: FlowKey) -> u32 {
        self.flows
            .get(&flow)
            .map_or(IT_RELIABLE_WINDOW, |f| f.credits)
    }

    fn arm_rto(&mut self, seq: u64, out: &mut Vec<LinkAction>) {
        let token = self.next_token;
        self.next_token = self.next_token.wrapping_add(1).max(TOKEN_BASE);
        self.rto_purpose.insert(token, seq);
        out.push(LinkAction::Timer {
            delay: self.rto,
            token,
        });
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<LinkAction>) {
        while !self.tx_pending && self.pacer.idle(now) {
            // Round-robin across flows that have both data and credits.
            let mut chosen = None;
            for _ in 0..self.rr.len() {
                let Some(flow) = self.rr.pop_front() else {
                    break;
                };
                let st = self.flows.get(&flow).expect("rr entries have state");
                if !st.queue.is_empty() && st.credits > 0 {
                    chosen = Some(flow);
                    break;
                }
                if !st.queue.is_empty() {
                    // Stalled on credits: keep it in the rotation.
                    self.rr.push_back(flow);
                } // empty queues drop out of the rotation
            }
            let Some(flow) = chosen else { return };
            let st = self.flows.get_mut(&flow).expect("chosen flow has state");
            let mut pkt = st.queue.pop_front().expect("chosen flow has data");
            st.credits -= 1;
            if !st.queue.is_empty() {
                self.rr.push_back(flow);
            }
            // Backpressure release at the ingress.
            if st.paused && st.queue.len() <= RESUME_AT {
                st.paused = false;
                out.push(LinkAction::ResumeFlow(flow));
            }
            self.next_link_seq += 1;
            pkt.link_seq = self.next_link_seq;
            self.unacked.insert(pkt.link_seq, pkt.clone());
            let busy = self.pacer.start(now, pkt.wire_size());
            *self.forwarded_by_flow.entry(flow).or_insert(0) += 1;
            self.arm_rto(pkt.link_seq, out);
            out.push(LinkAction::Consumed(flow));
            out.push(LinkAction::Transmit(pkt));
            if !busy.is_zero() {
                self.tx_pending = true;
                out.push(LinkAction::Timer {
                    delay: busy,
                    token: TOKEN_TX_DONE,
                });
            }
        }
    }
}

impl LinkProto for ItReliableLink {
    fn on_send(&mut self, now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        let flow = pkt.flow;
        self.stats.sent += 1;
        let st = self.flows.entry(flow).or_default();
        if st.queue.len() >= HARD_CAP {
            // The source ignored backpressure; refusing is all that is left.
            self.stats.dropped += 1;
            out.push(LinkAction::Observe(LinkEvent::Drop(DropClass::BufferFull)));
            return;
        }
        let was_empty = st.queue.is_empty();
        st.queue.push_back(pkt);
        if st.queue.len() >= PAUSE_AT && !st.paused {
            st.paused = true;
            out.push(LinkAction::PauseFlow(flow));
        }
        if was_empty && !self.rr.contains(&flow) {
            self.rr.push_back(flow);
        }
        self.pump(now, out);
    }

    fn on_data(&mut self, _now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        let seq = pkt.link_seq;
        let dup = seq <= self.recv_cum || self.recv_above.contains(&seq);
        // Always ack so the sender's buffer drains even under ack loss.
        self.stats.ctl_sent += 1;
        if dup {
            self.stats.dup_received += 1;
            out.push(LinkAction::TransmitCtl(LinkCtl::ReliableAck {
                cum: self.recv_cum,
                selective: self.recv_above.iter().copied().take(64).collect(),
            }));
            return;
        }
        self.stats.received += 1;
        self.recv_above.insert(seq);
        while self.recv_above.remove(&(self.recv_cum + 1)) {
            self.recv_cum += 1;
        }
        out.push(LinkAction::TransmitCtl(LinkCtl::ReliableAck {
            cum: self.recv_cum,
            selective: self.recv_above.iter().copied().take(64).collect(),
        }));
        out.push(LinkAction::Deliver(pkt));
    }

    fn on_ctl(&mut self, now: SimTime, ctl: LinkCtl, out: &mut Vec<LinkAction>) {
        match ctl {
            LinkCtl::ReliableAck { cum, selective } => {
                self.unacked = self.unacked.split_off(&(cum + 1));
                for seq in selective {
                    self.unacked.remove(&seq);
                }
            }
            LinkCtl::Credit { flow, credits } => {
                let st = self.flows.entry(flow).or_default();
                st.credits = (st.credits + credits).min(IT_RELIABLE_WINDOW);
                self.pump(now, out);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u32, out: &mut Vec<LinkAction>) {
        if token == TOKEN_TX_DONE {
            self.tx_pending = false;
            self.pump(now, out);
            return;
        }
        let Some(seq) = self.rto_purpose.remove(&token) else {
            return;
        };
        if let Some(pkt) = self.unacked.get(&seq) {
            self.stats.retransmitted += 1;
            out.push(LinkAction::Observe(LinkEvent::Retransmit));
            out.push(LinkAction::Transmit(pkt.clone()));
            self.arm_rto(seq, out);
        }
    }

    fn on_consumed(&mut self, _now: SimTime, flow: FlowKey, out: &mut Vec<LinkAction>) {
        // The node consumed a packet we delivered earlier: grant the upstream
        // sender one more credit for this flow.
        self.stats.ctl_sent += 1;
        out.push(LinkAction::TransmitCtl(LinkCtl::Credit {
            flow,
            credits: 1,
        }));
    }

    fn stats(&self) -> LinkProtoStats {
        self.stats
    }

    fn queue_depth(&self) -> usize {
        let queued: usize = self.flows.values().map(|f| f.queue.len()).sum();
        queued + self.unacked.len()
    }

    fn queue_bytes(&self) -> usize {
        use son_obs::footprint::{btreemap_bytes, btreeset_bytes, hashmap_bytes, vecdeque_bytes};
        btreemap_bytes(&self.flows)
            + self
                .flows
                .values()
                .map(|f| {
                    vecdeque_bytes(&f.queue)
                        + f.queue.iter().map(|p| p.payload.len()).sum::<usize>()
                })
                .sum::<usize>()
            + vecdeque_bytes(&self.rr)
            + btreemap_bytes(&self.unacked)
            + self
                .unacked
                .values()
                .map(|p| p.payload.len())
                .sum::<usize>()
            + hashmap_bytes(&self.rto_purpose)
            + btreeset_bytes(&self.recv_above)
            + btreemap_bytes(&self.forwarded_by_flow)
    }
}

// ---------------------------------------------------------------------------
// FIFO baseline
// ---------------------------------------------------------------------------

/// A single shared tail-drop FIFO queue — what a plain router does, and what
/// a flooding attacker starves (§IV-B's motivation).
#[derive(Debug)]
pub struct FifoLink {
    cap: usize,
    queue: VecDeque<DataPacket>,
    pacer: Pacer,
    tx_pending: bool,
    next_link_seq: u64,
    stats: LinkProtoStats,
    forwarded_by_source: BTreeMap<OverlayAddr, u64>,
}

impl FifoLink {
    /// Creates a FIFO queue with `cap` packets of shared buffer and the
    /// given egress rate.
    #[must_use]
    pub fn new(cap: usize, rate_bits_per_sec: Option<u64>) -> Self {
        assert!(cap > 0, "capacity must be positive");
        FifoLink {
            cap,
            queue: VecDeque::new(),
            pacer: Pacer::new(rate_bits_per_sec),
            tx_pending: false,
            next_link_seq: 0,
            stats: LinkProtoStats::default(),
            forwarded_by_source: BTreeMap::new(),
        }
    }

    /// Packets forwarded per source (for fairness reporting).
    #[must_use]
    pub fn forwarded_by_source(&self) -> &BTreeMap<OverlayAddr, u64> {
        &self.forwarded_by_source
    }

    fn pump(&mut self, now: SimTime, out: &mut Vec<LinkAction>) {
        while !self.tx_pending && self.pacer.idle(now) {
            let Some(mut pkt) = self.queue.pop_front() else {
                return;
            };
            self.next_link_seq += 1;
            pkt.link_seq = self.next_link_seq;
            let busy = self.pacer.start(now, pkt.wire_size());
            *self.forwarded_by_source.entry(pkt.flow.src).or_insert(0) += 1;
            out.push(LinkAction::Transmit(pkt));
            if !busy.is_zero() {
                self.tx_pending = true;
                out.push(LinkAction::Timer {
                    delay: busy,
                    token: TOKEN_TX_DONE,
                });
            }
        }
    }
}

impl LinkProto for FifoLink {
    fn on_send(&mut self, now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        self.stats.sent += 1;
        if self.queue.len() >= self.cap {
            self.stats.dropped += 1; // tail drop, no matter whose packet
            out.push(LinkAction::Observe(LinkEvent::Drop(DropClass::BufferFull)));
            return;
        }
        self.queue.push_back(pkt);
        self.pump(now, out);
    }

    fn on_data(&mut self, _now: SimTime, pkt: DataPacket, out: &mut Vec<LinkAction>) {
        self.stats.received += 1;
        out.push(LinkAction::Deliver(pkt));
    }

    fn on_ctl(&mut self, _now: SimTime, _ctl: LinkCtl, _out: &mut Vec<LinkAction>) {}

    fn on_timer(&mut self, now: SimTime, token: u32, out: &mut Vec<LinkAction>) {
        if token == TOKEN_TX_DONE {
            self.tx_pending = false;
            self.pump(now, out);
        }
    }

    fn stats(&self) -> LinkProtoStats {
        self.stats
    }

    fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    fn queue_bytes(&self) -> usize {
        use son_obs::footprint::{btreemap_bytes, vecdeque_bytes};
        vecdeque_bytes(&self.queue)
            + self.queue.iter().map(|p| p.payload.len()).sum::<usize>()
            + btreemap_bytes(&self.forwarded_by_source)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{pkt_from, transmitted};
    use super::*;
    use crate::service::Priority;

    /// Egress at 8 Mbit/s: a 148-byte wire packet (100B payload + header)
    /// takes 148 us to serialize.
    const RATE: Option<u64> = Some(8_000_000);

    fn drain(
        link: &mut dyn LinkProto,
        mut now: SimTime,
        actions: &mut Vec<LinkAction>,
    ) -> Vec<DataPacket> {
        // Fire TX_DONE timers until the scheduler goes quiet, collecting
        // transmissions in order. RTO timers (token != 0) are ignored: these
        // tests exercise scheduling, not loss recovery, and RTOs re-arm
        // forever by design.
        let mut sent = Vec::new();
        for _ in 0..100_000 {
            let mut tx_done: Option<SimDuration> = None;
            for a in actions.drain(..) {
                match a {
                    LinkAction::Transmit(p) => sent.push(p),
                    LinkAction::Timer { delay, token } if token == TOKEN_TX_DONE => {
                        tx_done = Some(delay);
                    }
                    _ => {}
                }
            }
            let Some(delay) = tx_done else { return sent };
            now += delay;
            link.on_timer(now, TOKEN_TX_DONE, actions);
        }
        panic!("drain did not quiesce");
    }

    #[test]
    fn priority_round_robin_is_fair_under_flood() {
        let mut link = ItPriorityLink::new(16, RATE);
        let mut out = Vec::new();
        // Attacker (source 9) floods 100 packets; two correct sources send 10 each.
        for i in 0..100 {
            link.on_send(SimTime::ZERO, pkt_from(9, i, 100), &mut out);
        }
        for i in 0..10 {
            link.on_send(SimTime::ZERO, pkt_from(1, i, 100), &mut out);
            link.on_send(SimTime::ZERO, pkt_from(2, i, 100), &mut out);
        }
        let sent = drain(&mut link, SimTime::ZERO, &mut out);
        let fb = link.forwarded_by_source().clone();
        let one = fb[&crate::addr::OverlayAddr::new(son_topo::NodeId(1), 1)];
        let two = fb[&crate::addr::OverlayAddr::new(son_topo::NodeId(2), 1)];
        assert_eq!(one, 10, "correct source 1 fully served");
        assert_eq!(two, 10, "correct source 2 fully served");
        // The attacker was capped at its buffer; most of its flood dropped.
        assert!(
            link.stats().dropped >= 80,
            "dropped={}",
            link.stats().dropped
        );
        assert!(!sent.is_empty());
    }

    #[test]
    fn priority_eviction_keeps_high_priority() {
        let link = ItPriorityLink::new(2, None);
        let mut out = Vec::new();
        let mut high = pkt_from(1, 0, 100);
        high.spec.priority = Priority::HIGH;
        let mut low1 = pkt_from(1, 1, 100);
        low1.spec.priority = Priority::LOW;
        let mut low2 = pkt_from(1, 2, 100);
        low2.spec.priority = Priority::LOW;
        // Unpaced: packets transmit immediately, so pre-fill by pausing the
        // pacer via a paced link instead.
        let mut link2 = ItPriorityLink::new(2, Some(8_000));
        link2.on_send(SimTime::ZERO, low1, &mut out);
        link2.on_send(SimTime::ZERO, high, &mut out);
        link2.on_send(SimTime::ZERO, low2, &mut out);
        // First low packet started transmitting; queue holds [high, low2]
        // at cap... then adding one more low evicts the oldest lowest.
        let mut low3 = pkt_from(1, 3, 100);
        low3.spec.priority = Priority::LOW;
        link2.on_send(SimTime::ZERO, low3, &mut out);
        assert!(link2.stats().dropped >= 1);
        let remaining: Vec<u64> =
            (0..link2.queue_len(crate::addr::OverlayAddr::new(son_topo::NodeId(1), 1)) as u64)
                .collect();
        assert!(!remaining.is_empty());
        let _ = link; // silence
    }

    #[test]
    fn fifo_flood_starves_correct_sources() {
        let mut link = FifoLink::new(16, RATE);
        let mut out = Vec::new();
        // Attacker floods 1000 packets before the correct source's 10 arrive.
        for i in 0..1000 {
            link.on_send(SimTime::ZERO, pkt_from(9, i, 100), &mut out);
        }
        for i in 0..10 {
            link.on_send(SimTime::ZERO, pkt_from(1, i, 100), &mut out);
        }
        let _ = drain(&mut link, SimTime::ZERO, &mut out);
        let fb = link.forwarded_by_source().clone();
        let correct = fb
            .get(&crate::addr::OverlayAddr::new(son_topo::NodeId(1), 1))
            .copied()
            .unwrap_or(0);
        assert_eq!(correct, 0, "FIFO tail drop starves the late correct source");
        assert!(link.stats().dropped > 900);
    }

    #[test]
    fn it_reliable_credits_bound_in_flight() {
        let mut link = ItReliableLink::new(SimDuration::from_millis(50), None);
        let mut out = Vec::new();
        let flow = pkt_from(1, 0, 100).flow;
        for i in 0..40 {
            link.on_send(SimTime::ZERO, pkt_from(1, i, 100), &mut out);
        }
        let sent = transmitted(&out).len();
        assert_eq!(
            sent as u32, IT_RELIABLE_WINDOW,
            "window caps unacked transmissions"
        );
        assert_eq!(link.credits(flow), 0);
        // A credit grant releases exactly one more.
        out.clear();
        link.on_ctl(
            SimTime::ZERO,
            LinkCtl::Credit { flow, credits: 1 },
            &mut out,
        );
        assert_eq!(transmitted(&out).len(), 1);
    }

    #[test]
    fn it_reliable_pauses_and_resumes_source() {
        let mut link = ItReliableLink::new(SimDuration::from_millis(50), None);
        let mut out = Vec::new();
        let flow = pkt_from(1, 0, 100).flow;
        // Credits run out at 16; further sends queue; at PAUSE_AT the flow pauses.
        let mut paused = false;
        for i in 0..(IT_RELIABLE_WINDOW as u64 + PAUSE_AT as u64 + 2) {
            link.on_send(SimTime::ZERO, pkt_from(1, i, 100), &mut out);
            if out
                .iter()
                .any(|a| matches!(a, LinkAction::PauseFlow(f) if *f == flow))
            {
                paused = true;
            }
        }
        assert!(paused, "backpressure must reach the source");
        out.clear();
        // Granting plenty of credits drains the queue and resumes the flow.
        link.on_ctl(
            SimTime::ZERO,
            LinkCtl::Credit {
                flow,
                credits: IT_RELIABLE_WINDOW,
            },
            &mut out,
        );
        assert!(out
            .iter()
            .any(|a| matches!(a, LinkAction::ResumeFlow(f) if *f == flow)));
    }

    #[test]
    fn it_reliable_acks_release_and_rto_retransmits() {
        let mut link = ItReliableLink::new(SimDuration::from_millis(50), None);
        let mut out = Vec::new();
        link.on_send(SimTime::ZERO, pkt_from(1, 0, 100), &mut out);
        let rto_token = out
            .iter()
            .find_map(|a| match a {
                LinkAction::Timer { token, .. } if *token != TOKEN_TX_DONE => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        // No ack: RTO fires and retransmits.
        link.on_timer(SimTime::from_millis(50), rto_token, &mut out);
        assert_eq!(transmitted(&out).len(), 1);
        assert_eq!(link.stats().retransmitted, 1);
        // Ack: subsequent RTO is a no-op.
        let rto2 = out
            .iter()
            .find_map(|a| match a {
                LinkAction::Timer { token, .. } if *token != TOKEN_TX_DONE => Some(*token),
                _ => None,
            })
            .unwrap();
        out.clear();
        link.on_ctl(
            SimTime::from_millis(51),
            LinkCtl::ReliableAck {
                cum: 1,
                selective: vec![],
            },
            &mut out,
        );
        link.on_timer(SimTime::from_millis(100), rto2, &mut out);
        assert!(transmitted(&out).is_empty());
    }

    #[test]
    fn it_reliable_receiver_acks_dedups_and_delivers() {
        let mut link = ItReliableLink::new(SimDuration::from_millis(50), None);
        let mut out = Vec::new();
        let mut p = pkt_from(1, 0, 100);
        p.link_seq = 1;
        link.on_data(SimTime::ZERO, p.clone(), &mut out);
        assert!(out.iter().any(|a| matches!(a, LinkAction::Deliver(_))));
        assert!(out.iter().any(|a| matches!(
            a,
            LinkAction::TransmitCtl(LinkCtl::ReliableAck { cum: 1, .. })
        )));
        out.clear();
        link.on_data(SimTime::ZERO, p, &mut out);
        assert!(out.iter().all(|a| !matches!(a, LinkAction::Deliver(_))));
        assert_eq!(link.stats().dup_received, 1);
    }

    #[test]
    fn it_reliable_consumed_grants_credit_upstream() {
        let mut link = ItReliableLink::new(SimDuration::from_millis(50), None);
        let mut out = Vec::new();
        let flow = pkt_from(1, 0, 100).flow;
        link.on_consumed(SimTime::ZERO, flow, &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            LinkAction::TransmitCtl(LinkCtl::Credit { flow: f, credits: 1 }) if *f == flow
        )));
    }

    #[test]
    fn it_reliable_round_robin_across_flows() {
        // Paced link; two flows contending: transmissions must alternate.
        let mut link = ItReliableLink::new(SimDuration::from_secs(10), RATE);
        let mut out = Vec::new();
        for i in 0..6 {
            link.on_send(SimTime::ZERO, pkt_from(1, i, 100), &mut out);
            link.on_send(SimTime::ZERO, pkt_from(2, i, 100), &mut out);
        }
        let sent = drain(&mut link, SimTime::ZERO, &mut out);
        let order: Vec<usize> = sent.iter().map(|p| p.flow.src.node.0).collect();
        // After the first packet the pattern must alternate 1,2,1,2...
        let alternations = order.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            alternations >= order.len() - 2,
            "expected alternation, got {order:?}"
        );
    }

    #[test]
    fn fifo_preserves_order() {
        let mut link = FifoLink::new(100, RATE);
        let mut out = Vec::new();
        for i in 0..5 {
            link.on_send(SimTime::ZERO, pkt_from(1, i, 100), &mut out);
        }
        let sent = drain(&mut link, SimTime::ZERO, &mut out);
        let seqs: Vec<u64> = sent.iter().map(|p| p.flow_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
