//! The session interface (Fig. 2): client connections, per-flow state, and
//! destination-side delivery semantics.
//!
//! "The session interface is responsible for managing client connections,
//! with each client connection treated as a separate flow."
//!
//! Delivery semantics live here because the paper assigns them to the final
//! destination: intermediate nodes forward out of order, and "the final
//! destination is responsible for buffering received packets until they can
//! be delivered in order" (§III-A); for real-time flows, "if a recovered
//! packet arrives after later packets were already delivered, it is
//! discarded" (§IV-A).

use std::collections::{BTreeMap, HashMap};

use son_netsim::process::ProcessId;
use son_netsim::time::{SimDuration, SimTime};
use son_topo::NodeId;

use crate::addr::{Destination, FlowKey, OverlayAddr, VirtualPort};
use crate::packet::{DataPacket, SessionEvent};
use crate::service::FlowSpec;

/// How long an ordered flow without a deadline holds out-of-order packets
/// before giving up on the gap. Far above any hop-by-hop recovery time, so
/// reliable flows are unaffected unless the missing packets are truly gone.
pub const DEFAULT_ORDERED_HOLD: SimDuration = SimDuration::from_secs(1);

/// What the session layer asks the node to do.
#[derive(Debug)]
pub enum SessionAction {
    /// Deliver a session event to the client on `port`.
    ToClient {
        /// The client's virtual port.
        port: VirtualPort,
        /// The event.
        event: SessionEvent,
    },
    /// Arm a timer; `token` returns via `on_timer`.
    Timer {
        /// Delay until expiry.
        delay: SimDuration,
        /// Discriminator echoed back.
        token: u32,
    },
}

/// Errors from session operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The virtual port is already bound by another client.
    PortInUse(VirtualPort),
    /// The port is not connected.
    NotConnected(VirtualPort),
    /// The client referenced a flow it never opened.
    UnknownFlow(u32),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::PortInUse(p) => write!(f, "virtual port {} already in use", p.0),
            SessionError::NotConnected(p) => write!(f, "virtual port {} not connected", p.0),
            SessionError::UnknownFlow(id) => write!(f, "unknown local flow {id}"),
        }
    }
}

impl std::error::Error for SessionError {}

#[derive(Debug)]
struct OutFlow {
    key: FlowKey,
    spec: FlowSpec,
    next_seq: u64,
}

/// Destination-side delivery statistics for one flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Packets handed to clients.
    pub delivered: u64,
    /// Packets discarded because they arrived after their deadline or after
    /// later packets had already been delivered.
    pub discarded_late: u64,
    /// Sequence numbers skipped by deadline-driven gap release.
    pub skipped: u64,
}

#[derive(Debug, Default)]
struct InFlow {
    next_expected: u64,
    buffer: BTreeMap<u64, DataPacket>,
    stats: DeliveryStats,
}

/// The session table of one overlay node.
#[derive(Debug)]
pub struct SessionTable {
    me: NodeId,
    clients: HashMap<VirtualPort, ProcessId>,
    out_flows: HashMap<(VirtualPort, u32), OutFlow>,
    /// Reverse index for backpressure: flow -> (port, local id).
    by_key: HashMap<FlowKey, (VirtualPort, u32)>,
    in_flows: HashMap<FlowKey, InFlow>,
    timer_purpose: HashMap<u32, (FlowKey, u64)>,
    next_token: u32,
}

impl SessionTable {
    /// Creates an empty session table for node `me`.
    #[must_use]
    pub fn new(me: NodeId) -> Self {
        SessionTable {
            me,
            clients: HashMap::new(),
            out_flows: HashMap::new(),
            by_key: HashMap::new(),
            in_flows: HashMap::new(),
            timer_purpose: HashMap::new(),
            next_token: 0,
        }
    }

    /// Connects a client process on a virtual port.
    ///
    /// # Errors
    ///
    /// [`SessionError::PortInUse`] if the port is taken.
    pub fn connect(
        &mut self,
        port: VirtualPort,
        proc: ProcessId,
        out: &mut Vec<SessionAction>,
    ) -> Result<OverlayAddr, SessionError> {
        if self.clients.contains_key(&port) {
            return Err(SessionError::PortInUse(port));
        }
        self.clients.insert(port, proc);
        let addr = OverlayAddr {
            node: self.me,
            port,
        };
        out.push(SessionAction::ToClient {
            port,
            event: SessionEvent::Connected { addr },
        });
        Ok(addr)
    }

    /// Disconnects a client, dropping its flows. Returns the keys of the
    /// dropped flows so the node can retire their shared state (flow
    /// contexts, dedup windows).
    pub fn disconnect(&mut self, port: VirtualPort) -> Vec<FlowKey> {
        self.clients.remove(&port);
        let gone: Vec<(VirtualPort, u32)> = self
            .out_flows
            .keys()
            .filter(|(p, _)| *p == port)
            .copied()
            .collect();
        let mut keys = Vec::with_capacity(gone.len());
        for k in gone {
            if let Some(f) = self.out_flows.remove(&k) {
                self.by_key.remove(&f.key);
                keys.push(f.key);
            }
        }
        keys
    }

    /// The simulator process serving a connected port.
    #[must_use]
    pub fn client_proc(&self, port: VirtualPort) -> Option<ProcessId> {
        self.clients.get(&port).copied()
    }

    /// Connected ports, ascending.
    #[must_use]
    pub fn ports(&self) -> Vec<VirtualPort> {
        let mut v: Vec<VirtualPort> = self.clients.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Registers an outgoing flow for a connected client.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotConnected`] if the port is not connected.
    pub fn open_flow(
        &mut self,
        port: VirtualPort,
        local_flow: u32,
        dst: Destination,
        spec: FlowSpec,
    ) -> Result<FlowKey, SessionError> {
        if !self.clients.contains_key(&port) {
            return Err(SessionError::NotConnected(port));
        }
        let key = FlowKey::new(
            OverlayAddr {
                node: self.me,
                port,
            },
            dst,
        );
        self.out_flows.insert(
            (port, local_flow),
            OutFlow {
                key,
                spec,
                next_seq: 0,
            },
        );
        self.by_key.insert(key, (port, local_flow));
        Ok(key)
    }

    /// Closes one outgoing flow, returning its key so the node can retire
    /// the flow's shared state. `None` if the client never opened it.
    pub fn close_flow(&mut self, port: VirtualPort, local_flow: u32) -> Option<FlowKey> {
        let f = self.out_flows.remove(&(port, local_flow))?;
        self.by_key.remove(&f.key);
        Some(f.key)
    }

    /// Prepares the next send on a flow: returns `(key, spec, seq)` the node
    /// uses to build the packet.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownFlow`] if the flow was never opened.
    pub fn next_send(
        &mut self,
        port: VirtualPort,
        local_flow: u32,
    ) -> Result<(FlowKey, FlowSpec, u64), SessionError> {
        let f = self
            .out_flows
            .get_mut(&(port, local_flow))
            .ok_or(SessionError::UnknownFlow(local_flow))?;
        f.next_seq += 1;
        Ok((f.key, f.spec, f.next_seq))
    }

    /// The local client binding of an outgoing flow — `(port, local id)` —
    /// if this node originated it. Backpressure state itself lives in the
    /// shared [`FlowTable`](crate::flow::FlowTable); the node uses this
    /// binding to route pause/resume events to the owning client.
    #[must_use]
    pub fn local_binding(&self, flow: &FlowKey) -> Option<(VirtualPort, u32)> {
        self.by_key.get(flow).copied()
    }

    /// Delivery statistics for an incoming flow.
    #[must_use]
    pub fn delivery_stats(&self, flow: FlowKey) -> DeliveryStats {
        self.in_flows
            .get(&flow)
            .map_or(DeliveryStats::default(), |f| f.stats)
    }

    /// Handles a packet that reached this node for local delivery to
    /// `targets` (the local ports interested in it).
    ///
    /// Applies the flow's delivery semantics: immediate for unordered flows;
    /// reorder buffering for ordered flows; deadline-based skip/discard for
    /// ordered flows with deadlines.
    pub fn deliver(
        &mut self,
        now: SimTime,
        pkt: DataPacket,
        targets: &[VirtualPort],
        out: &mut Vec<SessionAction>,
    ) {
        let flow = pkt.flow;
        let spec = pkt.spec;
        let state = self.in_flows.entry(flow).or_default();

        // Deadline check on arrival: a packet past its one-way deadline is
        // useless to a deadline-bound application.
        if let Some(deadline) = spec.deadline {
            if now > pkt.created_at + deadline {
                state.stats.discarded_late += 1;
                return;
            }
        }

        if !spec.ordered {
            state.next_expected = state.next_expected.max(pkt.flow_seq);
            state.stats.delivered += 1;
            push_deliver(&pkt, targets, out);
            return;
        }

        // Ordered delivery.
        if state.next_expected == 0 {
            state.next_expected = 1;
        }
        if pkt.flow_seq < state.next_expected {
            // Recovered too late: later packets were already delivered.
            state.stats.discarded_late += 1;
            return;
        }
        if pkt.flow_seq == state.next_expected {
            state.stats.delivered += 1;
            state.next_expected += 1;
            push_deliver(&pkt, targets, out);
            // Flush the contiguous run in the buffer.
            while let Some(next) = state.buffer.remove(&state.next_expected) {
                state.stats.delivered += 1;
                state.next_expected += 1;
                push_deliver(&next, targets, out);
            }
            return;
        }
        // A gap: buffer, and arm a release timer so the buffered packet is
        // not held forever. Deadline flows release at the packet's own
        // deadline; other ordered flows get a generous hold that outlives
        // any hop-by-hop recovery but bounds head-of-line blocking when the
        // missing packets will never come (e.g. a destination that started
        // receiving mid-stream after an anycast failover or late join).
        let seq = pkt.flow_seq;
        let created = pkt.created_at;
        state.buffer.insert(seq, pkt);
        let delay = match spec.deadline {
            Some(deadline) => (created + deadline).saturating_since(now),
            None => DEFAULT_ORDERED_HOLD,
        };
        let token = self.next_token;
        self.next_token = self.next_token.wrapping_add(1);
        self.timer_purpose.insert(token, (flow, seq));
        out.push(SessionAction::Timer { delay, token });
    }

    /// The flow a pending release timer belongs to, so the node can compute
    /// the current local delivery targets before calling
    /// [`SessionTable::on_timer`].
    #[must_use]
    pub fn timer_flow(&self, token: u32) -> Option<FlowKey> {
        self.timer_purpose.get(&token).map(|&(flow, _)| flow)
    }

    /// Handles a deadline-release timer: skips missing sequence numbers so
    /// the buffered packet is delivered before it goes stale.
    pub fn on_timer(
        &mut self,
        _now: SimTime,
        token: u32,
        targets: &[VirtualPort],
        out: &mut Vec<SessionAction>,
    ) {
        let Some((flow, seq)) = self.timer_purpose.remove(&token) else {
            return;
        };
        let Some(state) = self.in_flows.get_mut(&flow) else {
            return;
        };
        if seq < state.next_expected || !state.buffer.contains_key(&seq) {
            return; // already delivered or otherwise resolved
        }
        // Skip everything missing up to the first buffered packet, then
        // flush the contiguous run.
        let first_buffered = *state.buffer.keys().next().expect("buffer non-empty");
        state.stats.skipped += first_buffered - state.next_expected;
        state.next_expected = first_buffered;
        while let Some(next) = state.buffer.remove(&state.next_expected) {
            state.stats.delivered += 1;
            state.next_expected += 1;
            push_deliver(&next, targets, out);
        }
    }
}

fn push_deliver(pkt: &DataPacket, targets: &[VirtualPort], out: &mut Vec<SessionAction>) {
    for &port in targets {
        out.push(SessionAction::ToClient {
            port,
            event: SessionEvent::Deliver {
                flow: pkt.flow,
                seq: pkt.flow_seq,
                size: pkt.size,
                payload: pkt.payload.clone(),
                created_at: pkt.created_at,
            },
        });
    }
}

impl son_obs::MemFootprint for SessionTable {
    fn footprint_bytes(&self) -> usize {
        use son_obs::footprint::{btreemap_bytes, hashmap_bytes};
        let held: usize = self
            .in_flows
            .values()
            .map(|f| {
                btreemap_bytes(&f.buffer)
                    + f.buffer.values().map(|p| p.payload.len()).sum::<usize>()
            })
            .sum();
        hashmap_bytes(&self.clients)
            + hashmap_bytes(&self.out_flows)
            + hashmap_bytes(&self.by_key)
            + hashmap_bytes(&self.in_flows)
            + hashmap_bytes(&self.timer_purpose)
            + held
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GroupId;
    use bytes::Bytes;

    fn pkt(seq: u64, spec: FlowSpec, created_ms: u64) -> DataPacket {
        DataPacket {
            flow: FlowKey::new(
                OverlayAddr::new(NodeId(0), 1),
                Destination::Unicast(OverlayAddr::new(NodeId(1), 2)),
            ),
            flow_seq: seq,
            origin: NodeId(0),
            spec,
            mask: None,
            resolved_dst: None,
            link_seq: 0,
            created_at: SimTime::from_millis(created_ms),
            size: 100,
            payload: Bytes::new(),
            ttl: 32,
            auth_tag: 0,
            trace: None,
        }
    }

    fn delivered_seqs(out: &[SessionAction]) -> Vec<u64> {
        out.iter()
            .filter_map(|a| match a {
                SessionAction::ToClient {
                    event: SessionEvent::Deliver { seq, .. },
                    ..
                } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    const P: VirtualPort = VirtualPort(2);

    fn table() -> SessionTable {
        let mut t = SessionTable::new(NodeId(1));
        let mut out = Vec::new();
        t.connect(P, ProcessId(9), &mut out).unwrap();
        t
    }

    #[test]
    fn connect_assigns_address_and_rejects_duplicates() {
        let mut t = SessionTable::new(NodeId(3));
        let mut out = Vec::new();
        let addr = t.connect(VirtualPort(7), ProcessId(1), &mut out).unwrap();
        assert_eq!(addr, OverlayAddr::new(NodeId(3), 7));
        assert!(matches!(
            out[0],
            SessionAction::ToClient {
                event: SessionEvent::Connected { .. },
                ..
            }
        ));
        assert_eq!(
            t.connect(VirtualPort(7), ProcessId(2), &mut out),
            Err(SessionError::PortInUse(VirtualPort(7)))
        );
        assert_eq!(t.client_proc(VirtualPort(7)), Some(ProcessId(1)));
    }

    #[test]
    fn open_flow_and_send_sequence() {
        let mut t = table();
        let key = t
            .open_flow(
                P,
                1,
                Destination::Multicast(GroupId(4)),
                FlowSpec::best_effort(),
            )
            .unwrap();
        assert_eq!(key.src, OverlayAddr::new(NodeId(1), 2));
        let (_, _, s1) = t.next_send(P, 1).unwrap();
        let (_, _, s2) = t.next_send(P, 1).unwrap();
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(t.next_send(P, 99), Err(SessionError::UnknownFlow(99)));
        assert!(t
            .open_flow(
                VirtualPort(50),
                1,
                Destination::Multicast(GroupId(4)),
                FlowSpec::best_effort()
            )
            .is_err());
    }

    #[test]
    fn unordered_delivery_is_immediate() {
        let mut t = table();
        let mut out = Vec::new();
        t.deliver(
            SimTime::from_millis(10),
            pkt(5, FlowSpec::best_effort(), 0),
            &[P],
            &mut out,
        );
        t.deliver(
            SimTime::from_millis(11),
            pkt(2, FlowSpec::best_effort(), 0),
            &[P],
            &mut out,
        );
        assert_eq!(delivered_seqs(&out), vec![5, 2]);
    }

    #[test]
    fn ordered_delivery_buffers_and_flushes() {
        let mut t = table();
        let mut out = Vec::new();
        let spec = FlowSpec::reliable();
        t.deliver(SimTime::from_millis(1), pkt(2, spec, 0), &[P], &mut out);
        assert!(
            delivered_seqs(&out).is_empty(),
            "2 buffered until 1 arrives"
        );
        t.deliver(SimTime::from_millis(2), pkt(3, spec, 0), &[P], &mut out);
        t.deliver(SimTime::from_millis(3), pkt(1, spec, 0), &[P], &mut out);
        assert_eq!(delivered_seqs(&out), vec![1, 2, 3]);
        let flow = pkt(1, spec, 0).flow;
        assert_eq!(t.delivery_stats(flow).delivered, 3);
    }

    #[test]
    fn late_recovery_discarded_after_later_delivered() {
        let mut t = table();
        let spec = FlowSpec::reliable();
        let mut out = Vec::new();
        t.deliver(SimTime::from_millis(1), pkt(1, spec, 0), &[P], &mut out);
        t.deliver(SimTime::from_millis(2), pkt(2, spec, 0), &[P], &mut out);
        out.clear();
        t.deliver(SimTime::from_millis(9), pkt(1, spec, 0), &[P], &mut out);
        assert!(delivered_seqs(&out).is_empty());
        assert_eq!(t.delivery_stats(pkt(1, spec, 0).flow).discarded_late, 1);
    }

    #[test]
    fn deadline_discards_stale_arrivals() {
        let mut t = table();
        let spec = FlowSpec::reliable().with_deadline(SimDuration::from_millis(50));
        let mut out = Vec::new();
        // Created at 0, arrives at 60ms: past the 50ms deadline.
        t.deliver(SimTime::from_millis(60), pkt(1, spec, 0), &[P], &mut out);
        assert!(delivered_seqs(&out).is_empty());
        assert_eq!(t.delivery_stats(pkt(1, spec, 0).flow).discarded_late, 1);
    }

    #[test]
    fn deadline_gap_release_skips_missing() {
        let mut t = table();
        let spec = FlowSpec::reliable().with_deadline(SimDuration::from_millis(50));
        let mut out = Vec::new();
        // seq 1 delivered; 2 lost; 3 buffered with a release timer.
        t.deliver(SimTime::from_millis(10), pkt(1, spec, 5), &[P], &mut out);
        t.deliver(SimTime::from_millis(20), pkt(3, spec, 15), &[P], &mut out);
        assert_eq!(delivered_seqs(&out), vec![1]);
        let (delay, token) = out
            .iter()
            .find_map(|a| match a {
                SessionAction::Timer { delay, token } => Some((*delay, *token)),
                _ => None,
            })
            .expect("release timer armed");
        // Fires at created(15) + 50 = 65ms; now is 20ms, so delay is 45ms.
        assert_eq!(delay, SimDuration::from_millis(45));
        out.clear();
        t.on_timer(SimTime::from_millis(65), token, &[P], &mut out);
        assert_eq!(delivered_seqs(&out), vec![3]);
        let stats = t.delivery_stats(pkt(1, spec, 0).flow);
        assert_eq!(stats.skipped, 1, "seq 2 given up");
        // If 2 shows up now, it is discarded.
        out.clear();
        t.deliver(SimTime::from_millis(66), pkt(2, spec, 16), &[P], &mut out);
        assert!(delivered_seqs(&out).is_empty());
    }

    #[test]
    fn release_timer_noop_when_gap_already_filled() {
        let mut t = table();
        let spec = FlowSpec::reliable().with_deadline(SimDuration::from_millis(50));
        let mut out = Vec::new();
        t.deliver(SimTime::from_millis(10), pkt(1, spec, 5), &[P], &mut out);
        t.deliver(SimTime::from_millis(20), pkt(3, spec, 15), &[P], &mut out);
        let token = out
            .iter()
            .find_map(|a| match a {
                SessionAction::Timer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        // 2 recovered in time: 2 and 3 flush.
        out.clear();
        t.deliver(SimTime::from_millis(30), pkt(2, spec, 10), &[P], &mut out);
        assert_eq!(delivered_seqs(&out), vec![2, 3]);
        out.clear();
        t.on_timer(SimTime::from_millis(65), token, &[P], &mut out);
        assert!(out.is_empty(), "stale release timer is a no-op");
    }

    #[test]
    fn multicast_delivery_fans_out_to_all_local_ports() {
        let mut t = table();
        let mut out = Vec::new();
        t.connect(VirtualPort(5), ProcessId(10), &mut out).unwrap();
        out.clear();
        t.deliver(
            SimTime::from_millis(1),
            pkt(1, FlowSpec::best_effort(), 0),
            &[P, VirtualPort(5)],
            &mut out,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn local_binding_resolves_own_flows_only() {
        let mut t = table();
        let key = t
            .open_flow(
                P,
                3,
                Destination::Unicast(OverlayAddr::new(NodeId(0), 1)),
                FlowSpec::reliable(),
            )
            .unwrap();
        assert_eq!(t.local_binding(&key), Some((P, 3)));
        // A flow this node only transits has no binding.
        let foreign = FlowKey::new(
            OverlayAddr::new(NodeId(7), 1),
            Destination::Unicast(OverlayAddr::new(NodeId(8), 2)),
        );
        assert_eq!(t.local_binding(&foreign), None);
    }

    #[test]
    fn close_flow_removes_binding_and_send_state() {
        let mut t = table();
        let key = t
            .open_flow(
                P,
                3,
                Destination::Unicast(OverlayAddr::new(NodeId(0), 1)),
                FlowSpec::reliable(),
            )
            .unwrap();
        assert_eq!(t.close_flow(P, 99), None, "unknown flow");
        assert_eq!(t.close_flow(P, 3), Some(key));
        assert_eq!(t.local_binding(&key), None);
        assert!(t.next_send(P, 3).is_err());
        assert_eq!(t.close_flow(P, 3), None, "second close is a no-op");
    }

    #[test]
    fn disconnect_cleans_flows() {
        let mut t = table();
        let key = t
            .open_flow(
                P,
                1,
                Destination::Unicast(OverlayAddr::new(NodeId(0), 1)),
                FlowSpec::reliable(),
            )
            .unwrap();
        let dropped = t.disconnect(P);
        assert_eq!(dropped, vec![key]);
        assert_eq!(t.client_proc(P), None);
        assert!(t.next_send(P, 1).is_err());
        assert_eq!(t.local_binding(&key), None);
    }
}
