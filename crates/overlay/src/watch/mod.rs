//! `son-watch`: the in-daemon anomaly watchdog (detection + remediation
//! policy).
//!
//! This module holds the watchdog's *pure* state machines — configuration,
//! per-link NM-Strikes-style suspension with exponential-backoff probing,
//! overload shedding, and the adaptive trace sampler. The glue that feeds
//! them from the daemon's observability state each evaluation epoch (and
//! applies their decisions through the connectivity monitor) lives in the
//! node's timer level (`node::watch_level`), keeping these types unit-
//! testable without a simulator.
//!
//! Signals → detectors → remediations (`DESIGN.md` §10):
//!
//! - drained [`TraceRing`](son_obs::trace::TraceRing) events → per-hop
//!   recovery latency vs the link's budget → strikes → link suspension;
//! - registry counter deltas → retransmit-storm and reroute-flap
//!   detections → LSA flap damping (in the connectivity monitor);
//! - per-link forwarding receipts from neighbors → the silent-blackhole
//!   signature (control-plane-alive, data-plane-dead) → strikes;
//! - link-protocol queue depths → sustained-growth detection → graceful
//!   shedding of the lowest-priority flows at the ingress (`drop.shed`).
//!
//! Every detection and remediation is recorded as a
//! [`WatchEvent`](son_obs::watch::WatchEvent) for the `son-trace
//! --watch-audit` offline cross-check.

use std::collections::HashMap;

use son_netsim::time::SimDuration;

use crate::state::connectivity::FlapDamping;

/// Watchdog thresholds and cadences. Defaults are tabulated in
/// `DESIGN.md` §10 and exercised by the `son-netsim` fault campaigns.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Evaluation-epoch cadence; every signal below is per-epoch.
    pub epoch: SimDuration,
    /// Per-hop recovery budget as a multiple of the link's nominal one-way
    /// latency.
    pub recovery_budget_factor: f64,
    /// Floor on the recovery budget (short links get slack for timers).
    pub recovery_budget_min: SimDuration,
    /// Node-level retransmissions within one epoch that count as a storm.
    pub storm_retransmits: u64,
    /// Route recomputations within one epoch that count as a flap. Set
    /// above the deployment size: a convergence wave recomputes once per
    /// changed remote origin, so a full-topology refresh is not a flap —
    /// per-origin oscillation is caught by `damping` instead.
    pub flap_reroutes: u64,
    /// Strikes against one link before it is suspended.
    pub strike_threshold: u32,
    /// Minimum data packets a neighbor must report receiving in an epoch
    /// before the progressed/received ratio is meaningful.
    pub blackhole_min_packets: u64,
    /// Consecutive suspicious epochs before the blackhole detection fires.
    pub blackhole_epochs: u32,
    /// Initial suspension length, in epochs (doubles per repeat offense).
    pub probe_backoff_epochs: u64,
    /// Cap on the suspension length, in epochs.
    pub probe_backoff_max_epochs: u64,
    /// Consecutive healthy probe epochs before a suspended link readmits.
    pub hold_down_epochs: u32,
    /// Summed link-protocol queue depth above which an epoch counts as hot.
    pub queue_depth_limit: usize,
    /// Consecutive hot epochs before shedding escalates (and cool epochs
    /// before it decays).
    pub queue_epochs: u32,
    /// Shedding never rises to this priority: flows at or above it are
    /// always admitted ([`crate::service::Priority::NORMAL`] by default).
    pub shed_max_priority: u8,
    /// Adaptive sampling: hot flows are traced `boost`× as densely.
    pub sample_boost: u32,
    /// Epochs a flow stays hot after its last loss/recovery/reroute event.
    pub sample_hot_epochs: u32,
    /// LSA flap-damping parameters installed into the connectivity monitor.
    pub damping: FlapDamping,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            epoch: SimDuration::from_millis(500),
            recovery_budget_factor: 6.0,
            recovery_budget_min: SimDuration::from_millis(5),
            storm_retransmits: 48,
            flap_reroutes: 16,
            strike_threshold: 3,
            blackhole_min_packets: 10,
            blackhole_epochs: 2,
            probe_backoff_epochs: 4,
            probe_backoff_max_epochs: 64,
            hold_down_epochs: 3,
            queue_depth_limit: 96,
            queue_epochs: 2,
            shed_max_priority: 4,
            sample_boost: 8,
            sample_hot_epochs: 4,
            damping: FlapDamping::default(),
        }
    }
}

/// What the per-link state machine asks the node to do this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// Suspend the link (advertise it down) after `strikes` strikes.
    Suspend {
        /// Strikes accumulated when the threshold tripped.
        strikes: u64,
    },
    /// The suspension elapsed; the link is now probing for readmission.
    Probe {
        /// Length of the suspension that just elapsed, milliseconds.
        backoff_ms: u64,
    },
    /// The probe hold-down passed; readmit the link.
    Readmit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    Healthy,
    Suspended { remaining_epochs: u64 },
    Probing { healthy_epochs: u32 },
}

/// NM-Strikes-style per-link watchdog state: strikes accumulate from
/// detections; at the threshold the link is suspended for an exponentially
/// backed-off number of epochs, then probed (hellos keep flowing while the
/// link is advertised down) and readmitted only after a healthy hold-down.
/// A repeat offender re-earns strikes after readmission and serves a
/// doubled suspension.
#[derive(Debug)]
pub struct LinkWatch {
    /// Per-hop recovery-latency budget for this link, nanoseconds.
    pub budget_ns: u64,
    state: LinkState,
    strikes: u32,
    /// Suspension length for the next offense, in epochs.
    backoff_epochs: u64,
    /// Length of the currently-served (or last-served) suspension.
    serving_epochs: u64,
    /// Consecutive epochs showing the blackhole signature.
    pub blackhole_epochs: u32,
    /// Latest unevaluated neighbor receipt `(received, progressed)`.
    pub last_receipt: Option<(u64, u64)>,
    /// Data packets received on this in-link since the last receipt sent.
    pub recv_window: u64,
    /// How many of those progressed past the adversary check.
    pub progressed_window: u64,
}

impl LinkWatch {
    fn new(budget_ns: u64, initial_backoff_epochs: u64) -> Self {
        LinkWatch {
            budget_ns,
            state: LinkState::Healthy,
            strikes: 0,
            backoff_epochs: initial_backoff_epochs.max(1),
            serving_epochs: 0,
            blackhole_epochs: 0,
            last_receipt: None,
            recv_window: 0,
            progressed_window: 0,
        }
    }

    /// Records `n` strikes of fresh evidence against this link. Ignored
    /// while suspended: no data flows, so stale evidence must not extend
    /// the sentence.
    pub fn strike(&mut self, n: u32) {
        if !matches!(self.state, LinkState::Suspended { .. }) {
            self.strikes = self.strikes.saturating_add(n);
        }
    }

    /// Whether the link is currently suspended or probing (advertised down
    /// either way).
    #[must_use]
    pub fn is_suspended(&self) -> bool {
        !matches!(self.state, LinkState::Healthy)
    }

    /// Whether the link is in its readmission probe window — suspended for
    /// traffic, but accumulating healthy-epoch evidence toward recovery.
    /// Telemetry distinguishes this from a hard suspension so an operator
    /// can see a link on its way back.
    #[must_use]
    pub fn is_probing(&self) -> bool {
        matches!(self.state, LinkState::Probing { .. })
    }

    /// Advances the state machine one epoch. `probe_healthy` is the
    /// hello-derived verdict (link up, loss low) used during probing.
    pub fn on_epoch(
        &mut self,
        cfg: &WatchConfig,
        epoch_ms: u64,
        probe_healthy: bool,
        out: &mut Vec<LinkDecision>,
    ) {
        match self.state {
            LinkState::Healthy => {
                if self.strikes >= cfg.strike_threshold {
                    self.serving_epochs = self.backoff_epochs;
                    self.state = LinkState::Suspended {
                        remaining_epochs: self.serving_epochs,
                    };
                    out.push(LinkDecision::Suspend {
                        strikes: u64::from(self.strikes),
                    });
                    self.strikes = 0;
                    self.backoff_epochs =
                        (self.backoff_epochs * 2).min(cfg.probe_backoff_max_epochs.max(1));
                }
            }
            LinkState::Suspended { remaining_epochs } => {
                if remaining_epochs <= 1 {
                    self.state = LinkState::Probing { healthy_epochs: 0 };
                    out.push(LinkDecision::Probe {
                        backoff_ms: self.serving_epochs * epoch_ms,
                    });
                } else {
                    self.state = LinkState::Suspended {
                        remaining_epochs: remaining_epochs - 1,
                    };
                }
            }
            LinkState::Probing { healthy_epochs } => {
                // New evidence or a bad probe restarts the hold-down; the
                // link stays advertised down, so this is safe, and it keeps
                // the audit invariant (no re-suspension without detection).
                if self.strikes > 0 || !probe_healthy {
                    self.strikes = 0;
                    self.state = LinkState::Probing { healthy_epochs: 0 };
                } else {
                    let h = healthy_epochs + 1;
                    if h >= cfg.hold_down_epochs {
                        self.state = LinkState::Healthy;
                        out.push(LinkDecision::Readmit);
                    } else {
                        self.state = LinkState::Probing { healthy_epochs: h };
                    }
                }
            }
        }
    }
}

/// What the shedding controller asks the node to do this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedDecision {
    /// Queues stayed above the limit; emitted before any escalation.
    Growth {
        /// The summed queue depth observed.
        depth: u64,
    },
    /// Shedding escalated: flows with priority strictly below are shed.
    Engage {
        /// The new shedding floor.
        below: u8,
    },
    /// Queues recovered and the floor decayed to zero.
    Release,
}

/// Graceful-overload controller: sustained queue growth raises a shedding
/// floor one priority at a time (lowest-priority flows shed first, never
/// reaching `shed_max_priority`); sustained calm lowers it again.
#[derive(Debug, Default)]
pub struct ShedState {
    /// Ingress packets of flows with priority strictly below this are shed.
    pub below: u8,
    hot_epochs: u32,
    cool_epochs: u32,
}

impl ShedState {
    /// Feeds one epoch's summed queue depth through the controller.
    pub fn on_epoch(&mut self, cfg: &WatchConfig, depth: usize, out: &mut Vec<ShedDecision>) {
        if depth > cfg.queue_depth_limit {
            self.hot_epochs += 1;
            self.cool_epochs = 0;
            if self.hot_epochs >= cfg.queue_epochs {
                self.hot_epochs = 0;
                out.push(ShedDecision::Growth {
                    depth: depth as u64,
                });
                if self.below < cfg.shed_max_priority {
                    self.below += 1;
                    out.push(ShedDecision::Engage { below: self.below });
                }
            }
        } else {
            self.hot_epochs = 0;
            if self.below > 0 {
                self.cool_epochs += 1;
                if self.cool_epochs >= cfg.queue_epochs {
                    self.cool_epochs = 0;
                    self.below -= 1;
                    if self.below == 0 {
                        out.push(ShedDecision::Release);
                    }
                }
            } else {
                self.cool_epochs = 0;
            }
        }
    }
}

/// Adaptive trace sampling: flows with recent loss/recovery/reroute events
/// are traced `boost`× as densely as the configured base rate; heat decays
/// after `hot_epochs` quiet epochs. With tracing disabled (base 0) the
/// sampler stays inert, preserving the zero-overhead default.
#[derive(Debug)]
pub struct AdaptiveSampler {
    base: u32,
    boost: u32,
    hot_epochs: u32,
    /// Flow stable id → epochs of heat remaining.
    hot: HashMap<u64, u32>,
}

impl AdaptiveSampler {
    /// Creates a sampler over the ingress base rate (1-in-`base`; 0 = off).
    #[must_use]
    pub fn new(base: u32, boost: u32, hot_epochs: u32) -> Self {
        AdaptiveSampler {
            base,
            boost: boost.max(1),
            hot_epochs: hot_epochs.max(1),
            hot: HashMap::new(),
        }
    }

    /// Marks `flow` anomalous: it samples densely for `hot_epochs` epochs.
    pub fn note_anomaly(&mut self, flow: u64) {
        if self.base > 0 {
            self.hot.insert(flow, self.hot_epochs);
        }
    }

    /// The current 1-in-N sampling rate for `flow`.
    #[must_use]
    pub fn rate_for(&self, flow: u64) -> u32 {
        if self.base == 0 {
            0
        } else if self.hot.contains_key(&flow) {
            (self.base / self.boost).max(1)
        } else {
            self.base
        }
    }

    /// Decays every flow's heat by one epoch.
    pub fn on_epoch(&mut self) {
        self.hot.retain(|_, left| {
            *left -= 1;
            *left > 0
        });
    }

    /// Flows currently sampling at the boosted rate.
    #[must_use]
    pub fn hot_flows(&self) -> usize {
        self.hot.len()
    }
}

/// The watchdog's full runtime state, owned by the daemon and advanced once
/// per [`WatchConfig::epoch`] from the node timer level.
#[derive(Debug)]
pub struct WatchState {
    /// The thresholds this watchdog runs with.
    pub config: WatchConfig,
    /// Evaluation epochs completed.
    pub epoch_index: u64,
    /// Per-link state, in local link order (empty until links are wired).
    pub links: Vec<LinkWatch>,
    /// The adaptive trace sampler consulted by the ingress.
    pub sampler: AdaptiveSampler,
    /// The overload-shedding controller consulted by the ingress.
    pub shed: ShedState,
    /// Last epoch's `link.retransmit` registry total.
    pub prev_retransmits: u64,
    /// Last epoch's `reroutes` registry total.
    pub prev_reroutes: u64,
}

impl WatchState {
    /// Creates watchdog state; `trace_sample` is the ingress base sampling
    /// rate the adaptive sampler modulates.
    #[must_use]
    pub fn new(config: WatchConfig, trace_sample: u32) -> Self {
        let sampler =
            AdaptiveSampler::new(trace_sample, config.sample_boost, config.sample_hot_epochs);
        WatchState {
            config,
            epoch_index: 0,
            links: Vec::new(),
            sampler,
            shed: ShedState::default(),
            prev_retransmits: 0,
            prev_reroutes: 0,
        }
    }

    /// (Re)builds per-link state for links with the given nominal one-way
    /// latencies (milliseconds), in local link order.
    pub fn wire(&mut self, nominal_latencies_ms: &[f64]) {
        let min_ns = self.config.recovery_budget_min.as_nanos();
        self.links = nominal_latencies_ms
            .iter()
            .map(|&ms| {
                let budget_ns =
                    ((ms * self.config.recovery_budget_factor * 1e6) as u64).max(min_ns);
                LinkWatch::new(budget_ns, self.config.probe_backoff_epochs)
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchConfig {
        WatchConfig::default()
    }

    #[test]
    fn sampler_boosts_on_anomaly_and_decays() {
        let mut s = AdaptiveSampler::new(64, 8, 2);
        assert_eq!(s.rate_for(7), 64, "healthy flows sample at the base rate");
        s.note_anomaly(7);
        assert_eq!(s.rate_for(7), 8, "hot flows sample densely");
        assert_eq!(s.rate_for(8), 64, "heat is per flow");
        s.on_epoch();
        assert_eq!(s.rate_for(7), 8, "still hot within the window");
        s.on_epoch();
        assert_eq!(s.rate_for(7), 64, "decayed back to base");
        assert_eq!(s.hot_flows(), 0);
        // Re-noting refreshes the window.
        s.note_anomaly(7);
        s.on_epoch();
        s.note_anomaly(7);
        s.on_epoch();
        assert_eq!(s.rate_for(7), 8);
    }

    #[test]
    fn sampler_stays_inert_when_tracing_is_off() {
        let mut s = AdaptiveSampler::new(0, 8, 2);
        s.note_anomaly(7);
        assert_eq!(s.rate_for(7), 0, "base 0 means tracing stays off");
        assert_eq!(s.hot_flows(), 0, "no heat is accumulated");
    }

    #[test]
    fn sampler_boost_never_rounds_to_zero() {
        let mut s = AdaptiveSampler::new(4, 8, 2);
        s.note_anomaly(1);
        assert_eq!(s.rate_for(1), 1, "boost saturates at trace-everything");
    }

    fn run_epoch(lw: &mut LinkWatch, c: &WatchConfig, healthy: bool) -> Vec<LinkDecision> {
        let mut out = Vec::new();
        lw.on_epoch(c, 500, healthy, &mut out);
        out
    }

    #[test]
    fn strikes_suspend_then_probe_then_readmit() {
        let c = cfg();
        let mut lw = LinkWatch::new(1_000_000, c.probe_backoff_epochs);
        lw.strike(2);
        assert!(run_epoch(&mut lw, &c, true).is_empty(), "below threshold");
        lw.strike(1);
        assert_eq!(
            run_epoch(&mut lw, &c, true),
            vec![LinkDecision::Suspend { strikes: 3 }]
        );
        assert!(lw.is_suspended());
        // Strikes while suspended are ignored (stale evidence).
        lw.strike(5);
        // Serve the 4-epoch suspension, then probe.
        for _ in 0..3 {
            assert!(run_epoch(&mut lw, &c, true).is_empty());
        }
        assert_eq!(
            run_epoch(&mut lw, &c, true),
            vec![LinkDecision::Probe { backoff_ms: 2000 }]
        );
        assert!(lw.is_suspended(), "probing still advertises down");
        // Hold-down: 3 healthy epochs readmit.
        assert!(run_epoch(&mut lw, &c, true).is_empty());
        assert!(run_epoch(&mut lw, &c, true).is_empty());
        assert_eq!(run_epoch(&mut lw, &c, true), vec![LinkDecision::Readmit]);
        assert!(!lw.is_suspended());
    }

    #[test]
    fn repeat_offender_serves_doubled_backoff() {
        let c = cfg();
        let mut lw = LinkWatch::new(1_000_000, c.probe_backoff_epochs);
        lw.strike(c.strike_threshold);
        assert!(matches!(
            run_epoch(&mut lw, &c, true)[..],
            [LinkDecision::Suspend { .. }]
        ));
        // 4-epoch sentence, probe, 3 healthy epochs to readmit.
        let mut probes = 0;
        for _ in 0..16 {
            for d in run_epoch(&mut lw, &c, true) {
                if matches!(d, LinkDecision::Probe { .. }) {
                    probes += 1;
                }
            }
            if !lw.is_suspended() {
                break;
            }
        }
        assert_eq!(probes, 1);
        // Re-offend: the sentence doubles to 8 epochs.
        lw.strike(c.strike_threshold);
        assert!(matches!(
            run_epoch(&mut lw, &c, true)[..],
            [LinkDecision::Suspend { .. }]
        ));
        for _ in 0..7 {
            assert!(run_epoch(&mut lw, &c, true).is_empty());
        }
        assert_eq!(
            run_epoch(&mut lw, &c, true),
            vec![LinkDecision::Probe { backoff_ms: 4000 }]
        );
    }

    #[test]
    fn unhealthy_probe_restarts_the_hold_down() {
        let c = cfg();
        let mut lw = LinkWatch::new(1_000_000, c.probe_backoff_epochs);
        lw.strike(c.strike_threshold);
        run_epoch(&mut lw, &c, true);
        for _ in 0..4 {
            run_epoch(&mut lw, &c, true);
        }
        // Probing now; two healthy epochs, then a bad one.
        assert!(run_epoch(&mut lw, &c, true).is_empty());
        assert!(run_epoch(&mut lw, &c, false).is_empty());
        // The hold-down restarted: three more healthy epochs needed.
        assert!(run_epoch(&mut lw, &c, true).is_empty());
        assert!(run_epoch(&mut lw, &c, true).is_empty());
        assert_eq!(run_epoch(&mut lw, &c, true), vec![LinkDecision::Readmit]);
    }

    #[test]
    fn shedding_escalates_under_sustained_growth_and_decays() {
        let c = cfg();
        let mut shed = ShedState::default();
        let mut out = Vec::new();
        // One hot epoch: nothing yet (needs queue_epochs = 2).
        shed.on_epoch(&c, c.queue_depth_limit + 1, &mut out);
        assert!(out.is_empty());
        shed.on_epoch(&c, c.queue_depth_limit + 1, &mut out);
        assert_eq!(
            out,
            vec![
                ShedDecision::Growth {
                    depth: c.queue_depth_limit as u64 + 1
                },
                ShedDecision::Engage { below: 1 },
            ]
        );
        assert_eq!(shed.below, 1);
        // A calm epoch in between resets the hot streak.
        out.clear();
        shed.on_epoch(&c, 0, &mut out);
        shed.on_epoch(&c, c.queue_depth_limit + 1, &mut out);
        shed.on_epoch(&c, 0, &mut out);
        assert!(out.is_empty(), "no escalation without a sustained streak");
        // Sustained calm decays the floor back to zero.
        out.clear();
        shed.on_epoch(&c, 0, &mut out);
        assert_eq!(out, vec![ShedDecision::Release]);
        assert_eq!(shed.below, 0);
    }

    #[test]
    fn shedding_never_reaches_the_priority_ceiling() {
        let c = cfg();
        let mut shed = ShedState::default();
        let mut out = Vec::new();
        for _ in 0..40 {
            shed.on_epoch(&c, c.queue_depth_limit + 1, &mut out);
        }
        assert_eq!(shed.below, c.shed_max_priority);
        assert!(out
            .iter()
            .all(|d| !matches!(d, ShedDecision::Engage { below } if *below > c.shed_max_priority)));
    }

    #[test]
    fn wire_computes_per_link_budgets_with_floor() {
        let mut w = WatchState::new(WatchConfig::default(), 64);
        w.wire(&[10.0, 0.1]);
        assert_eq!(w.links.len(), 2);
        assert_eq!(w.links[0].budget_ns, 60_000_000, "10ms x factor 6");
        assert_eq!(w.links[1].budget_ns, 5_000_000, "floored at 5ms");
    }
}
