//! Per-node observability: the daemon's window into `son-obs`.
//!
//! [`NodeObs`] bundles the node's metrics [`Registry`] and packet-lifecycle
//! [`SpanRing`] behind the recording API the daemon actually uses. Two cost
//! tiers keep the forwarding path as cheap as the plain struct fields it
//! replaced:
//!
//! - **Always on**: counters (one `Vec` index + add, pre-registered
//!   handles) and the rare-event recovery/delivery histograms. These back
//!   [`NodeMetrics`] snapshots and the experiment exporters, so they cannot
//!   be opted out of.
//! - **Detail** (`NodeConfig::obs_detail`): per-packet lifecycle span
//!   events. Off by default; when off, [`NodeObs::span`] is a branch and a
//!   return.
//!
//! Every instrument carries a `node=<id>` label so per-node registries can
//! be [`Registry::absorb`]ed into one experiment-wide registry without
//! collisions.

use son_netsim::stats::Counters;
use son_netsim::time::SimTime;
use son_obs::trace::{TraceContext, TraceEvent, TraceRing, TraceStage};
use son_obs::watch::{WatchEvent, WatchKind, WatchRing};
use son_obs::{
    CounterId, DropClass, HistId, MemFootprint, PacketKey, PerfRegistry, Registry, SpanEvent,
    SpanRing, SpanStage,
};
use son_topo::NodeId;

use crate::linkproto::LinkEvent;
use crate::metrics::NodeMetrics;
use crate::packet::DataPacket;

/// Retained lifecycle events per node when detail is enabled.
const SPAN_CAPACITY: usize = 4096;

/// Retained distributed-trace events per node. Traces are sampled (1/64-ish
/// of packets) so this holds minutes of history; overflow is counted in
/// `obs.trace_overflow` rather than lost silently.
const TRACE_CAPACITY: usize = 32768;

/// Retained watchdog audit events per node. Detections and remediations are
/// rare by construction (per-epoch, per-link), so this holds whole runs.
const WATCH_CAPACITY: usize = 4096;

/// Pre-registered counter handles for one flow's life at this node, created
/// once when the flow's [`FlowContext`](crate::flow::FlowContext) is built
/// and then incremented handle-only on the hot path.
///
/// The instruments are named `flow.*` (not `drop.*`) so per-flow accounting
/// never double-counts against the node-level drop ledger; each carries
/// `node=<id>` and `flow=<stable_id hex>` labels, so absorbed experiment
/// registries can be sliced per flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowObs {
    /// Packets this flow's client handed to the ingress (`flow.sent`).
    pub sent: CounterId,
    /// Packets delivered to local clients of this flow (`flow.delivered`).
    pub delivered: CounterId,
    /// Packets of this flow forwarded onto links (`flow.forwarded`).
    pub forwarded: CounterId,
    /// Packets of this flow this node dropped, any class (`flow.dropped`).
    pub dropped: CounterId,
}

/// The daemon's observability state: registry, span ring, and the
/// pre-registered handles for every hot-path counter.
#[derive(Debug)]
pub struct NodeObs {
    registry: Registry,
    spans: SpanRing,
    traces: TraceRing,
    watch: WatchRing,
    perf: PerfRegistry,
    detail: bool,
    node_id: u32,
    node_label: String,
    span_overflow: CounterId,
    trace_overflow: CounterId,
    forwarded: CounterId,
    delivered_local: CounterId,
    adversary_injected: CounterId,
    drop_ttl: CounterId,
    drop_auth: CounterId,
    drop_dedup: CounterId,
    drop_unroutable: CounterId,
    drop_adversary: CounterId,
    delivery_latency: HistId,
}

impl NodeObs {
    /// Observability state for node `me`; `detail` additionally enables
    /// per-packet span recording.
    #[must_use]
    pub fn new(me: NodeId, detail: bool) -> Self {
        let node_label = me.0.to_string();
        let mut registry = Registry::new();
        let labels: &[(&str, &str)] = &[("node", &node_label)];
        let span_overflow = registry.counter("obs.span_overflow", labels);
        let trace_overflow = registry.counter("obs.trace_overflow", labels);
        let forwarded = registry.counter("node.forwarded", labels);
        let delivered_local = registry.counter("node.delivered_local", labels);
        let adversary_injected = registry.counter("node.adversary_injected", labels);
        let drop_ttl = registry.counter(DropClass::Ttl.label(), labels);
        let drop_auth = registry.counter(DropClass::Auth.label(), labels);
        let drop_dedup = registry.counter(DropClass::DedupDuplicate.label(), labels);
        let drop_unroutable = registry.counter(DropClass::Unroutable.label(), labels);
        let drop_adversary = registry.counter(DropClass::Adversary.label(), labels);
        let delivery_latency = registry.histogram("node.delivery_latency_ns", labels);
        NodeObs {
            registry,
            spans: SpanRing::new(SPAN_CAPACITY),
            traces: TraceRing::new(TRACE_CAPACITY),
            watch: WatchRing::new(WATCH_CAPACITY),
            perf: PerfRegistry::new(false),
            detail,
            node_id: me.0 as u32,
            node_label,
            span_overflow,
            trace_overflow,
            forwarded,
            delivered_local,
            adversary_injected,
            drop_ttl,
            drop_auth,
            drop_dedup,
            drop_unroutable,
            drop_adversary,
            delivery_latency,
        }
    }

    /// Whether per-packet span recording is enabled.
    #[must_use]
    pub fn detail(&self) -> bool {
        self.detail
    }

    /// The node's hot-path wall-clock profiler. Disabled by default; see
    /// [`NodeObs::set_perf_enabled`]. Spans are entered/exited through the
    /// borrow-free [`son_obs::PerfToken`] API so instrumented code can keep
    /// `&mut self` access to the rest of the node between enter and exit.
    #[must_use]
    pub fn perf(&self) -> &PerfRegistry {
        &self.perf
    }

    /// Runtime kill-switch for the wall-clock profiler. When off (the
    /// default), every instrumented site costs one flag load.
    pub fn set_perf_enabled(&mut self, enabled: bool) {
        self.perf.set_enabled(enabled);
        if enabled {
            self.perf.set_sample_every(son_obs::PERF_SAMPLE_EVERY);
        }
    }

    /// A packet was forwarded toward another node.
    #[inline]
    pub fn forwarded(&mut self) {
        self.registry.inc(self.forwarded);
    }

    /// A packet was delivered to a local client; `latency` is its
    /// origin-to-delivery time.
    #[inline]
    pub fn delivered_local(&mut self, latency_ns: u64) {
        self.registry.inc(self.delivered_local);
        self.registry.observe(self.delivery_latency, latency_ns);
    }

    /// Adversarial behaviour originated a junk packet.
    #[inline]
    pub fn adversary_injected(&mut self) {
        self.registry.inc(self.adversary_injected);
    }

    /// The node dropped a packet for `class` (node-layer classes only; link
    /// protocols report theirs through [`NodeObs::link_event`]).
    pub fn drop(&mut self, class: DropClass) {
        let id = match class {
            DropClass::Ttl => self.drop_ttl,
            DropClass::Auth => self.drop_auth,
            DropClass::DedupDuplicate => self.drop_dedup,
            DropClass::Unroutable => self.drop_unroutable,
            DropClass::Adversary => self.drop_adversary,
            other => {
                let label = self.node_label.clone();
                self.registry.counter(other.label(), &[("node", &label)])
            }
        };
        self.registry.inc(id);
    }

    /// Bumps the ad-hoc counter `name` (kept dot-free so snapshots can route
    /// it into [`NodeMetrics::counters`] under its historical name).
    pub fn named(&mut self, name: &str) {
        let label = self.node_label.clone();
        let id = self.registry.counter(name, &[("node", &label)]);
        self.registry.inc(id);
    }

    /// Registers (or re-resolves) the per-flow counter handles for `flow`.
    /// Called once per flow at context creation; the returned handles make
    /// subsequent per-packet accounting a plain `Vec` index.
    #[must_use]
    pub fn flow_counters(&mut self, flow: &crate::addr::FlowKey) -> FlowObs {
        let node = self.node_label.clone();
        let fid = format!("{:016x}", flow.stable_id());
        let labels: &[(&str, &str)] = &[("node", &node), ("flow", &fid)];
        FlowObs {
            sent: self.registry.counter("flow.sent", labels),
            delivered: self.registry.counter("flow.delivered", labels),
            forwarded: self.registry.counter("flow.forwarded", labels),
            dropped: self.registry.counter("flow.dropped", labels),
        }
    }

    /// Increments a pre-registered counter by handle (the per-flow hot path).
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.registry.inc(id);
    }

    /// Records what a link protocol on `proto` observed: retransmissions and
    /// protocol drops become counters, recoveries feed the per-proto
    /// `link.recovery_ns` histogram.
    pub fn link_event(&mut self, proto: &'static str, event: LinkEvent) {
        let label = self.node_label.clone();
        let labels: &[(&str, &str)] = &[("node", &label), ("proto", proto)];
        match event {
            LinkEvent::Retransmit => {
                let id = self.registry.counter("link.retransmit", labels);
                self.registry.inc(id);
            }
            LinkEvent::LossDetected => {
                let id = self.registry.counter("link.loss_detected", labels);
                self.registry.inc(id);
            }
            LinkEvent::Recovered { after } => {
                let id = self.registry.histogram("link.recovery_ns", labels);
                self.registry.observe(id, after.as_nanos());
            }
            LinkEvent::Drop(class) => {
                let id = self.registry.counter(class.label(), labels);
                self.registry.inc(id);
            }
        }
    }

    /// Records a lifecycle span event for `pkt` (no-op unless detail is on).
    #[inline]
    pub fn span(&mut self, now: SimTime, pkt: &DataPacket, stage: SpanStage, link: Option<usize>) {
        if !self.detail {
            return;
        }
        let evicted = self.spans.record(SpanEvent {
            at_ns: now.as_nanos(),
            packet: PacketKey {
                flow: pkt.flow.stable_id(),
                seq: pkt.flow_seq,
            },
            stage,
            link: link.map(|l| l as u32),
        });
        if evicted {
            self.registry.inc(self.span_overflow);
        }
    }

    /// Records a distributed-trace event for a sampled packet. Always on:
    /// the ingress made the sampling decision, so transit nodes record
    /// regardless of their own configuration (the Dapper model).
    pub fn trace(
        &mut self,
        now: SimTime,
        ctx: TraceContext,
        pkt: &DataPacket,
        stage: TraceStage,
        link: Option<usize>,
    ) {
        let evicted = self.traces.record(TraceEvent {
            at_ns: now.as_nanos(),
            trace_id: ctx.id,
            node: self.node_id,
            hop: ctx.hop,
            packet: PacketKey {
                flow: pkt.flow.stable_id(),
                seq: pkt.flow_seq,
            },
            stage,
            link: link.map(|l| l as u32),
        });
        if evicted {
            self.registry.inc(self.trace_overflow);
        }
    }

    /// Records a node-scope trace marker (reroute, loss-detected): an event
    /// not tied to a sampled packet, exported with trace id 0 so the
    /// analyzer can correlate it by time without building a timeline for it.
    pub fn trace_marker(&mut self, now: SimTime, stage: TraceStage, link: Option<usize>) {
        let evicted = self.traces.record(TraceEvent {
            at_ns: now.as_nanos(),
            trace_id: 0,
            node: self.node_id,
            hop: 0,
            packet: PacketKey { flow: 0, seq: 0 },
            stage,
            link: link.map(|l| l as u32),
        });
        if evicted {
            self.registry.inc(self.trace_overflow);
        }
    }

    /// Records one watchdog detection or remediation in the audit ring and
    /// bumps its per-kind counter (`watch.<label>`, summable per node).
    pub fn watch_event(&mut self, now: SimTime, kind: WatchKind, link: Option<usize>) {
        let label = self.node_label.clone();
        let name = format!("watch.{}", kind.label());
        let id = self.registry.counter(&name, &[("node", &label)]);
        self.registry.inc(id);
        self.watch.record(WatchEvent {
            at_ns: now.as_nanos(),
            node: self.node_id,
            link: link.map(|l| l as u32),
            kind,
        });
    }

    /// Retained watchdog audit events.
    #[must_use]
    pub fn watch_events(&self) -> &WatchRing {
        &self.watch
    }

    /// Mutable access to the trace ring, for the watchdog's per-epoch
    /// [`TraceRing::drain_since`] sweep.
    pub fn traces_mut(&mut self) -> &mut TraceRing {
        &mut self.traces
    }

    /// The node's metrics registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Retained lifecycle events (empty unless detail is on).
    #[must_use]
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Retained distributed-trace events (empty unless sampled packets
    /// passed through this node).
    #[must_use]
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// The legacy [`NodeMetrics`] view of the registry: typed fields from
    /// the pre-registered counters, dot-free ad-hoc counters under their
    /// historical names in [`NodeMetrics::counters`].
    #[must_use]
    pub fn snapshot(&self) -> NodeMetrics {
        let mut counters = Counters::default();
        for (desc, v) in self.registry.counters() {
            if !desc.name.contains('.') && v > 0 {
                counters.add(&desc.name, v);
            }
        }
        NodeMetrics {
            forwarded: self.registry.counter_value(self.forwarded),
            delivered_local: self.registry.counter_value(self.delivered_local),
            dropped_ttl: self.registry.counter_value(self.drop_ttl),
            auth_failures: self.registry.counter_value(self.drop_auth),
            dedup_suppressed: self.registry.counter_value(self.drop_dedup),
            adversary_dropped: self.registry.counter_value(self.drop_adversary),
            adversary_injected: self.registry.counter_value(self.adversary_injected),
            unroutable: self.registry.counter_value(self.drop_unroutable),
            counters,
        }
    }
}

impl MemFootprint for NodeObs {
    fn footprint_bytes(&self) -> usize {
        self.registry.footprint_bytes()
            + self.spans.footprint_bytes()
            + self.traces.footprint_bytes()
            + self.watch.footprint_bytes()
            + self.perf.footprint_bytes()
            + son_obs::footprint::string_bytes(&self.node_label)
    }
}

#[cfg(test)]
mod tests {
    use son_netsim::time::SimDuration;

    use super::*;

    #[test]
    fn snapshot_mirrors_registry() {
        let mut obs = NodeObs::new(NodeId(3), false);
        obs.forwarded();
        obs.forwarded();
        obs.delivered_local(1_000);
        obs.drop(DropClass::Ttl);
        obs.drop(DropClass::Auth);
        obs.named("provider_switches");
        let m = obs.snapshot();
        assert_eq!(m.forwarded, 2);
        assert_eq!(m.delivered_local, 1);
        assert_eq!(m.dropped_ttl, 1);
        assert_eq!(m.auth_failures, 1);
        assert_eq!(m.dedup_suppressed, 0);
        assert_eq!(m.counters.get("provider_switches"), 1);
        // Dotted names stay out of the ad-hoc view.
        assert_eq!(m.counters.get("node.forwarded"), 0);
    }

    #[test]
    fn link_events_register_per_proto_instruments() {
        let mut obs = NodeObs::new(NodeId(0), false);
        obs.link_event("reliable", LinkEvent::Retransmit);
        obs.link_event(
            "reliable",
            LinkEvent::Recovered {
                after: SimDuration::from_millis(8),
            },
        );
        obs.link_event("realtime", LinkEvent::Drop(DropClass::Expired));
        let r = obs.registry();
        assert_eq!(
            r.counter_named("link.retransmit", &[("node", "0"), ("proto", "reliable")]),
            Some(1)
        );
        let h = r
            .hist_named("link.recovery_ns", &[("node", "0"), ("proto", "reliable")])
            .unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 8_000_000);
        assert_eq!(
            r.counter_named("drop.expired", &[("node", "0"), ("proto", "realtime")]),
            Some(1)
        );
        // Per-proto drops aggregate with node drops under the same name.
        obs.drop(DropClass::Expired);
        assert_eq!(obs.registry().counter_total("drop.expired"), 2);
    }

    #[test]
    fn span_overflow_is_counted_not_silent() {
        use crate::linkproto::testutil::pkt;
        let mut obs = NodeObs::new(NodeId(2), true);
        let extra = 37u64;
        let total = SPAN_CAPACITY as u64 + extra;
        for i in 0..total {
            let p = pkt(i, 10);
            obs.span(SimTime::from_millis(i), &p, SpanStage::Transmit, Some(0));
        }
        assert_eq!(obs.spans().recorded(), total);
        assert_eq!(obs.spans().evicted(), extra);
        assert_eq!(
            obs.registry()
                .counter_named("obs.span_overflow", &[("node", "2")]),
            Some(extra),
            "overflow counter must match evicted entries"
        );
    }

    #[test]
    fn traces_record_regardless_of_detail_and_count_overflow() {
        use crate::linkproto::testutil::pkt;
        let p = pkt(7, 100);
        let ctx = TraceContext { id: 42, hop: 3 };
        let mut obs = NodeObs::new(NodeId(5), false);
        obs.trace(
            SimTime::from_millis(1),
            ctx,
            &p,
            TraceStage::Enqueue,
            Some(1),
        );
        obs.trace_marker(SimTime::from_millis(2), TraceStage::Reroute, None);
        assert_eq!(obs.traces().recorded(), 2);
        let evs: Vec<&TraceEvent> = obs.traces().events().collect();
        assert_eq!(evs[0].trace_id, 42);
        assert_eq!(evs[0].hop, 3);
        assert_eq!(evs[0].node, 5);
        assert_eq!(evs[0].stage, TraceStage::Enqueue);
        assert!(evs[1].is_marker());

        for i in 0..TRACE_CAPACITY as u64 + 9 {
            obs.trace_marker(SimTime::from_millis(i), TraceStage::LossDetected, None);
        }
        assert_eq!(
            obs.registry()
                .counter_named("obs.trace_overflow", &[("node", "5")]),
            Some(11), // the 2 early events were evicted too
        );
        assert_eq!(obs.traces().evicted(), 11);
    }

    #[test]
    fn spans_only_record_in_detail_mode() {
        use crate::linkproto::testutil::pkt;
        let p = pkt(7, 100);
        let mut quiet = NodeObs::new(NodeId(1), false);
        quiet.span(SimTime::from_millis(1), &p, SpanStage::Transmit, Some(0));
        assert_eq!(quiet.spans().recorded(), 0);
        let mut loud = NodeObs::new(NodeId(1), true);
        loud.span(SimTime::from_millis(1), &p, SpanStage::Transmit, Some(0));
        loud.span(SimTime::from_millis(2), &p, SpanStage::Deliver, None);
        assert_eq!(loud.spans().recorded(), 2);
        let key = PacketKey {
            flow: p.flow.stable_id(),
            seq: 7,
        };
        let stages: Vec<SpanStage> = loud.spans().for_packet(key).map(|e| e.stage).collect();
        assert_eq!(stages, vec![SpanStage::Transmit, SpanStage::Deliver]);
    }
}
