//! Per-node metrics for experiments and diagnostics.

use son_netsim::stats::Counters;

/// Counters an overlay node maintains while running. Beyond these typed
/// fields, ad-hoc named counters live in [`NodeMetrics::counters`].
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// Data packets forwarded toward other nodes.
    pub forwarded: u64,
    /// Data packets delivered to local clients.
    pub delivered_local: u64,
    /// Packets dropped because their TTL expired (loop guard).
    pub dropped_ttl: u64,
    /// Packets dropped because authentication failed.
    pub auth_failures: u64,
    /// Duplicate copies suppressed by flow-level de-duplication.
    pub dedup_suppressed: u64,
    /// Packets dropped by adversarial behaviour (when compromised).
    pub adversary_dropped: u64,
    /// Junk packets originated by adversarial behaviour.
    pub adversary_injected: u64,
    /// Packets that could not be routed (no usable next hop).
    pub unroutable: u64,
    /// Free-form counters.
    pub counters: Counters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = NodeMetrics::default();
        assert_eq!(m.forwarded, 0);
        assert_eq!(m.counters.get("anything"), 0);
    }
}
