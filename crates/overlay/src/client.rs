//! Client processes: the application side of the session interface.
//!
//! "To receive service from the overlay, a client simply connects to an
//! overlay node" (§II-B). [`ClientProcess`] is a scripted client driven by a
//! [`Workload`], recording per-flow delivery metrics (latency, jitter,
//! sequence coverage, duplicates) that the experiments harvest after a run.

use std::collections::HashMap;

use bytes::Bytes;
use son_netsim::link::PipeId;
use son_netsim::process::{Process, ProcessId};
use son_netsim::sim::Ctx;
use son_netsim::stats::Percentiles;
use son_netsim::time::{SimDuration, SimTime};

use crate::addr::{Destination, FlowKey, GroupId, OverlayAddr};
use crate::node::CLIENT_IPC_DELAY;
use crate::packet::{ClientOp, SessionEvent, Wire};
use crate::service::FlowSpec;

/// The send schedule of one client flow.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Never sends (a pure receiver).
    None,
    /// Constant bit rate: `count` packets of `size` bytes every `interval`,
    /// starting at `start`.
    Cbr {
        /// Payload bytes per packet.
        size: usize,
        /// Gap between packets.
        interval: SimDuration,
        /// Packets to send (`u64::MAX` ≈ unbounded).
        count: u64,
        /// When the first packet goes out.
        start: SimTime,
    },
    /// Poisson arrivals: exponential gaps with the given mean.
    Poisson {
        /// Payload bytes per packet.
        size: usize,
        /// Mean gap between packets.
        mean_interval: SimDuration,
        /// Packets to send.
        count: u64,
        /// When the process starts.
        start: SimTime,
    },
    /// An explicit schedule: `(send_time, size)` pairs in time order.
    /// Used for variable-bitrate sources (e.g. video GOP patterns).
    Trace {
        /// The packets to send, in nondecreasing time order.
        schedule: std::sync::Arc<Vec<(SimTime, usize)>>,
    },
}

/// One flow a client opens: destination, services, and workload.
#[derive(Debug, Clone)]
pub struct ClientFlow {
    /// Client-local flow handle.
    pub local_flow: u32,
    /// Where it goes.
    pub dst: Destination,
    /// Selected services.
    pub spec: FlowSpec,
    /// Send schedule.
    pub workload: Workload,
}

/// Configuration of a scripted client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The daemon process to attach to.
    pub daemon: ProcessId,
    /// The virtual port to bind.
    pub port: u16,
    /// Groups to join at startup (receivers join; senders need not).
    pub joins: Vec<GroupId>,
    /// Flows to open at startup.
    pub flows: Vec<ClientFlow>,
}

/// Receive-side metrics of one incoming flow at this client.
#[derive(Debug, Default, Clone)]
pub struct FlowRecv {
    /// One-way delivery latencies, in milliseconds.
    pub latency_ms: Percentiles,
    /// Per-packet delay variation (|Δ latency|), in milliseconds.
    pub jitter_ms: Percentiles,
    /// Packets delivered.
    pub received: u64,
    /// Application-level duplicates (same seq delivered twice) — must stay
    /// zero if in-network de-duplication works.
    pub app_duplicates: u64,
    /// Deliveries whose seq was lower than an earlier delivery.
    pub out_of_order: u64,
    /// Highest sequence number delivered.
    pub max_seq: u64,
    /// Arrival times of deliveries (for gap/outage analysis).
    pub arrivals: Vec<(SimTime, u64)>,
    /// Per-delivery one-way latencies in milliseconds, parallel to
    /// `arrivals` (for delivered-within-deadline analysis).
    pub latencies_ms: Vec<f64>,
    seen: std::collections::HashSet<u64>,
    last_latency_ms: Option<f64>,
    last_seq: u64,
}

impl FlowRecv {
    /// Deliveries whose one-way latency was within `deadline`.
    #[must_use]
    pub fn within_deadline(&self, deadline: SimDuration) -> u64 {
        let ms = deadline.as_millis_f64();
        self.latencies_ms.iter().filter(|&&l| l <= ms).count() as u64
    }
}

/// Send-side state of one outgoing flow.
#[derive(Debug)]
struct FlowSend {
    flow: ClientFlow,
    sent: u64,
    paused: bool,
    /// Sends suppressed while paused (backpressure honored).
    withheld: u64,
}

/// A scripted overlay client.
#[derive(Debug)]
pub struct ClientProcess {
    config: ClientConfig,
    /// Assigned overlay address once connected.
    pub addr: Option<OverlayAddr>,
    /// Receive metrics per incoming flow.
    pub recv: HashMap<FlowKey, FlowRecv>,
    sends: Vec<FlowSend>,
    /// Total packets sent per local flow index.
    pub sent_counts: HashMap<u32, u64>,
    /// Pause/resume events observed, for backpressure assertions.
    pub pause_events: u64,
    /// Resume events observed.
    pub resume_events: u64,
}

impl ClientProcess {
    /// Creates a client from its script.
    #[must_use]
    pub fn new(config: ClientConfig) -> Self {
        let sends = config
            .flows
            .iter()
            .map(|f| FlowSend {
                flow: f.clone(),
                sent: 0,
                paused: false,
                withheld: 0,
            })
            .collect();
        ClientProcess {
            config,
            addr: None,
            recv: HashMap::new(),
            sends,
            sent_counts: HashMap::new(),
            pause_events: 0,
            resume_events: 0,
        }
    }

    /// Total packets sent on a local flow.
    #[must_use]
    pub fn sent(&self, local_flow: u32) -> u64 {
        self.sent_counts.get(&local_flow).copied().unwrap_or(0)
    }

    /// Sends withheld due to backpressure on a local flow.
    #[must_use]
    pub fn withheld(&self, local_flow: u32) -> u64 {
        self.sends
            .iter()
            .find(|s| s.flow.local_flow == local_flow)
            .map_or(0, |s| s.withheld)
    }

    /// The single receive log, when exactly one flow was received
    /// (convenience for experiments).
    ///
    /// # Panics
    ///
    /// Panics if zero or multiple flows were received.
    #[must_use]
    pub fn sole_recv(&self) -> &FlowRecv {
        assert_eq!(self.recv.len(), 1, "expected exactly one received flow");
        self.recv.values().next().expect("one flow")
    }

    fn daemon_send(&self, ctx: &mut Ctx<'_, Wire>, op: ClientOp) {
        ctx.send_direct(self.config.daemon, CLIENT_IPC_DELAY, Wire::FromClient(op));
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_, Wire>, idx: usize, first: bool) {
        let (delay, done) = {
            let s = &self.sends[idx];
            match &s.flow.workload {
                Workload::None => return,
                Workload::Cbr {
                    interval,
                    count,
                    start,
                    ..
                } => {
                    if s.sent + s.withheld >= *count {
                        (SimDuration::ZERO, true)
                    } else if first {
                        (start.saturating_since(ctx.now()), false)
                    } else {
                        (*interval, false)
                    }
                }
                Workload::Poisson {
                    mean_interval,
                    count,
                    start,
                    ..
                } => {
                    if s.sent + s.withheld >= *count {
                        (SimDuration::ZERO, true)
                    } else if first {
                        (start.saturating_since(ctx.now()), false)
                    } else {
                        let gap = ctx.rng().exponential(mean_interval.as_secs_f64());
                        (SimDuration::from_secs_f64(gap), false)
                    }
                }
                Workload::Trace { schedule } => {
                    let next = (s.sent + s.withheld) as usize;
                    match schedule.get(next) {
                        Some(&(at, _)) => (at.saturating_since(ctx.now()), false),
                        None => (SimDuration::ZERO, true),
                    }
                }
            }
        };
        if !done {
            ctx.set_timer(delay, idx as u64);
        }
    }

    fn fire_send(&mut self, ctx: &mut Ctx<'_, Wire>, idx: usize) {
        let (local_flow, size, paused) = {
            let s = &self.sends[idx];
            let size = match &s.flow.workload {
                Workload::Cbr { size, .. } | Workload::Poisson { size, .. } => *size,
                Workload::Trace { schedule } => {
                    match schedule.get((s.sent + s.withheld) as usize) {
                        Some(&(_, size)) => size,
                        None => return,
                    }
                }
                Workload::None => return,
            };
            (s.flow.local_flow, size, s.paused)
        };
        if paused {
            self.sends[idx].withheld += 1;
        } else {
            self.sends[idx].sent += 1;
            *self.sent_counts.entry(local_flow).or_insert(0) += 1;
            self.daemon_send(
                ctx,
                ClientOp::Send {
                    local_flow,
                    size,
                    payload: Bytes::new(),
                },
            );
        }
        self.schedule_next(ctx, idx, false);
    }

    fn record_delivery(&mut self, now: SimTime, flow: FlowKey, seq: u64, created_at: SimTime) {
        let r = self.recv.entry(flow).or_default();
        if !r.seen.insert(seq) {
            r.app_duplicates += 1;
            return;
        }
        let latency = now.saturating_since(created_at).as_millis_f64();
        r.latency_ms.record(latency);
        if let Some(prev) = r.last_latency_ms {
            r.jitter_ms.record((latency - prev).abs());
        }
        r.last_latency_ms = Some(latency);
        if seq < r.last_seq {
            r.out_of_order += 1;
        }
        r.last_seq = seq;
        r.max_seq = r.max_seq.max(seq);
        r.received += 1;
        r.arrivals.push((now, seq));
        r.latencies_ms.push(latency);
    }
}

impl Process<Wire> for ClientProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        self.daemon_send(
            ctx,
            ClientOp::Connect {
                port: self.config.port,
            },
        );
        for g in self.config.joins.clone() {
            self.daemon_send(ctx, ClientOp::Join(g));
        }
        for f in self.config.flows.clone() {
            self.daemon_send(
                ctx,
                ClientOp::OpenFlow {
                    local_flow: f.local_flow,
                    dst: f.dst,
                    spec: f.spec,
                },
            );
        }
        for idx in 0..self.sends.len() {
            self.schedule_next(ctx, idx, true);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        _from: ProcessId,
        _pipe: Option<PipeId>,
        msg: Wire,
    ) {
        let Wire::ToClient(event) = msg else { return };
        match event {
            SessionEvent::Connected { addr } => self.addr = Some(addr),
            SessionEvent::Deliver {
                flow,
                seq,
                created_at,
                ..
            } => {
                self.record_delivery(ctx.now(), flow, seq, created_at);
            }
            SessionEvent::FlowPaused { local_flow } => {
                self.pause_events += 1;
                if let Some(s) = self
                    .sends
                    .iter_mut()
                    .find(|s| s.flow.local_flow == local_flow)
                {
                    s.paused = true;
                }
            }
            SessionEvent::FlowResumed { local_flow } => {
                self.resume_events += 1;
                if let Some(s) = self
                    .sends
                    .iter_mut()
                    .find(|s| s.flow.local_flow == local_flow)
                {
                    s.paused = false;
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, token: u64) {
        let idx = token as usize;
        if idx < self.sends.len() {
            self.fire_send(ctx, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_key() -> FlowKey {
        FlowKey::new(
            OverlayAddr::new(son_topo::NodeId(0), 1),
            Destination::Unicast(OverlayAddr::new(son_topo::NodeId(1), 2)),
        )
    }

    #[test]
    fn record_delivery_tracks_latency_and_dups() {
        let mut c = ClientProcess::new(ClientConfig {
            daemon: ProcessId(0),
            port: 1,
            joins: vec![],
            flows: vec![],
        });
        c.record_delivery(
            SimTime::from_millis(15),
            flow_key(),
            1,
            SimTime::from_millis(5),
        );
        c.record_delivery(
            SimTime::from_millis(27),
            flow_key(),
            2,
            SimTime::from_millis(15),
        );
        c.record_delivery(
            SimTime::from_millis(30),
            flow_key(),
            2,
            SimTime::from_millis(15),
        );
        let r = c.sole_recv();
        assert_eq!(r.received, 2);
        assert_eq!(r.app_duplicates, 1);
        assert_eq!(r.max_seq, 2);
        assert_eq!(r.latency_ms.samples(), &[10.0, 12.0]);
        assert_eq!(r.jitter_ms.samples(), &[2.0]);
    }

    #[test]
    fn out_of_order_detection() {
        let mut c = ClientProcess::new(ClientConfig {
            daemon: ProcessId(0),
            port: 1,
            joins: vec![],
            flows: vec![],
        });
        for seq in [1, 3, 2] {
            c.record_delivery(SimTime::from_millis(seq), flow_key(), seq, SimTime::ZERO);
        }
        assert_eq!(c.sole_recv().out_of_order, 1);
    }

    #[test]
    #[should_panic(expected = "exactly one received flow")]
    fn sole_recv_panics_when_empty() {
        let c = ClientProcess::new(ClientConfig {
            daemon: ProcessId(0),
            port: 1,
            joins: vec![],
            flows: vec![],
        });
        let _ = c.sole_recv();
    }
}
