//! Overlay addressing: node + virtual port, with multicast and anycast
//! groups carved out of the same address space.
//!
//! "Clients are identified by the IP address of the overlay node to which
//! they connect and a virtual port, mimicking the IP address plus port
//! addressing scheme of the Internet. Anycast and multicast are implemented
//! similarly as part of the IP space, just like in IP" (§II-B).

use serde::{Deserialize, Serialize};
use son_topo::NodeId;

/// A virtual port on an overlay node, scoping one client connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtualPort(pub u16);

/// A unicast overlay address: the overlay node a client is connected to plus
/// its virtual port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OverlayAddr {
    /// The overlay node serving the client.
    pub node: NodeId,
    /// The client's virtual port at that node.
    pub port: VirtualPort,
}

impl OverlayAddr {
    /// Creates an address.
    #[must_use]
    pub fn new(node: NodeId, port: u16) -> Self {
        OverlayAddr {
            node,
            port: VirtualPort(port),
        }
    }
}

impl std::fmt::Display for OverlayAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port.0)
    }
}

/// A multicast/anycast group identifier, part of the overlay address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Where a flow's packets are headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Destination {
    /// Exactly one client at one overlay node.
    Unicast(OverlayAddr),
    /// Every member of a group (receivers join; any client may send).
    Multicast(GroupId),
    /// Exactly one member of a group, chosen as the best current target.
    Anycast(GroupId),
}

impl Destination {
    /// The group involved, if this is a group destination.
    #[must_use]
    pub fn group(&self) -> Option<GroupId> {
        match self {
            Destination::Unicast(_) => None,
            Destination::Multicast(g) | Destination::Anycast(g) => Some(*g),
        }
    }
}

impl std::fmt::Display for Destination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Destination::Unicast(a) => write!(f, "{a}"),
            Destination::Multicast(g) => write!(f, "mcast:{g}"),
            Destination::Anycast(g) => write!(f, "anycast:{g}"),
        }
    }
}

/// Uniquely identifies an application data flow end to end: the ingress
/// address and the destination. Flow-based processing keys its state on this
/// ([§II-C]: "a flow consists of a source, one or more destinations, and the
/// overlay services selected for that flow").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// The source client's overlay address.
    pub src: OverlayAddr,
    /// The flow's destination (unicast, multicast, or anycast).
    pub dst: DestKey,
}

/// `Destination` flattened into an `Ord`-friendly key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DestKey {
    /// See [`Destination::Unicast`].
    Unicast(OverlayAddr),
    /// See [`Destination::Multicast`].
    Multicast(GroupId),
    /// See [`Destination::Anycast`].
    Anycast(GroupId),
}

impl From<Destination> for DestKey {
    fn from(d: Destination) -> Self {
        match d {
            Destination::Unicast(a) => DestKey::Unicast(a),
            Destination::Multicast(g) => DestKey::Multicast(g),
            Destination::Anycast(g) => DestKey::Anycast(g),
        }
    }
}

impl From<DestKey> for Destination {
    fn from(d: DestKey) -> Self {
        match d {
            DestKey::Unicast(a) => Destination::Unicast(a),
            DestKey::Multicast(g) => Destination::Multicast(g),
            DestKey::Anycast(g) => Destination::Anycast(g),
        }
    }
}

impl FlowKey {
    /// Builds the key for a flow from `src` to `dst`.
    #[must_use]
    pub fn new(src: OverlayAddr, dst: Destination) -> Self {
        FlowKey {
            src,
            dst: dst.into(),
        }
    }

    /// The destination as a `Destination`.
    #[must_use]
    pub fn dst(&self) -> Destination {
        self.dst.into()
    }

    /// A stable 64-bit identity of this flow, used to attribute simulator
    /// drops and packet-lifecycle spans to flows (FNV-1a over the key's
    /// components, independent of `Hash` implementation details).
    #[must_use]
    pub fn stable_id(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.src.node.0 as u64);
        mix(u64::from(self.src.port.0));
        match self.dst {
            DestKey::Unicast(a) => {
                mix(1);
                mix(a.node.0 as u64);
                mix(u64::from(a.port.0));
            }
            DestKey::Multicast(g) => {
                mix(2);
                mix(u64::from(g.0));
            }
            DestKey::Anycast(g) => {
                mix(3);
                mix(u64::from(g.0));
            }
        }
        h
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}", self.src, self.dst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let a = OverlayAddr::new(NodeId(3), 7);
        assert_eq!(a.to_string(), "n3:7");
        assert_eq!(Destination::Multicast(GroupId(9)).to_string(), "mcast:g9");
        assert_eq!(Destination::Anycast(GroupId(2)).to_string(), "anycast:g2");
        let fk = FlowKey::new(a, Destination::Unicast(OverlayAddr::new(NodeId(0), 1)));
        assert_eq!(fk.to_string(), "n3:7->n0:1");
    }

    #[test]
    fn destination_group_extraction() {
        assert_eq!(
            Destination::Unicast(OverlayAddr::new(NodeId(0), 1)).group(),
            None
        );
        assert_eq!(Destination::Multicast(GroupId(4)).group(), Some(GroupId(4)));
        assert_eq!(Destination::Anycast(GroupId(4)).group(), Some(GroupId(4)));
    }

    #[test]
    fn dest_key_round_trips() {
        for d in [
            Destination::Unicast(OverlayAddr::new(NodeId(1), 2)),
            Destination::Multicast(GroupId(3)),
            Destination::Anycast(GroupId(4)),
        ] {
            let key: DestKey = d.into();
            let back: Destination = key.into();
            assert_eq!(back, d);
        }
    }

    #[test]
    fn stable_ids_distinguish_flows() {
        use std::collections::BTreeSet;
        let mut ids = BTreeSet::new();
        for n in 0..4 {
            for p in 0..4 {
                let src = OverlayAddr::new(NodeId(n), p);
                ids.insert(
                    FlowKey::new(src, Destination::Unicast(OverlayAddr::new(NodeId(9), 1)))
                        .stable_id(),
                );
                ids.insert(FlowKey::new(src, Destination::Multicast(GroupId(1))).stable_id());
                ids.insert(FlowKey::new(src, Destination::Anycast(GroupId(1))).stable_id());
            }
        }
        assert_eq!(ids.len(), 48, "no collisions across 48 distinct flows");
        let fk = FlowKey::new(
            OverlayAddr::new(NodeId(1), 2),
            Destination::Multicast(GroupId(3)),
        );
        assert_eq!(fk.stable_id(), fk.stable_id(), "deterministic");
    }

    #[test]
    fn flow_keys_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        for n in 0..3 {
            for p in 0..3 {
                set.insert(FlowKey::new(
                    OverlayAddr::new(NodeId(n), p),
                    Destination::Multicast(GroupId(0)),
                ));
            }
        }
        assert_eq!(set.len(), 9);
    }
}
