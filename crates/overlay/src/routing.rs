//! The routing level (Fig. 2): forwarding decisions from shared state.
//!
//! "The routing level makes decisions about how to forward incoming packets
//! based on the routing service specified for the flow (Link State or Source
//! Based), the current state of the network (obtained via the Connectivity
//! Graph Maintenance component), and the packet's source and destination or
//! destinations (with multicast group membership maintained by the Group
//! State component)."
//!
//! [`Forwarding`] is a pure decision engine over the current shared topology
//! view; the node daemon consults it per packet. The view is an immutable
//! [`TopoSnapshot`] shared by `Arc` with the connectivity monitor, tagged
//! with the connectivity version: [`Forwarding::install`] with an unchanged
//! version is a no-op (nothing recomputed, nothing invalidated), while a
//! real change rebuilds the dense per-destination next-hop table in a single
//! SPT pass and drops the version-scoped caches. Per-packet lookups are
//! O(1) table reads and the multicast path returns a borrowed slice — no
//! allocation on the data plane.

use std::collections::HashMap;
use std::sync::Arc;

use son_topo::csr::{Spt, SptScratch, TopoSnapshot};
use son_topo::{
    constrained_flooding, k_node_disjoint_paths, overlapping_paths_mask,
    robust_dissemination_graph, EdgeId, EdgeMask, Graph, NodeId,
};

use crate::service::SourceRoute;

/// Edge weight above which a link is considered unusable (down links are
/// advertised at 1e12 by the connectivity monitor).
const UNUSABLE: f64 = 1e9;

/// The per-node forwarding engine.
#[derive(Debug)]
pub struct Forwarding {
    me: NodeId,
    snap: Arc<TopoSnapshot>,
    /// Connectivity version the snapshot and caches correspond to.
    version: u64,
    /// Dense per-destination next-hop table: the usable-cost SPT rooted at
    /// `me`, rebuilt once per topology change.
    my_spt: Spt,
    /// Shortest-path trees by root (multicast origins), computed on demand.
    spt: HashMap<NodeId, Spt>,
    /// Multicast out-edge sets by (origin, member-set fingerprint).
    mcast: HashMap<(NodeId, u64), Vec<EdgeId>>,
    /// Reusable Dijkstra working memory.
    scratch: SptScratch,
    /// Total SPT computations performed (observability / regression tests).
    spt_builds: u64,
    /// Times a new topology view was actually installed.
    installs: u64,
}

impl Forwarding {
    /// Creates a forwarding engine for node `me` over an initial topology
    /// view (installed as version 0).
    #[must_use]
    pub fn new(me: NodeId, graph: Graph) -> Self {
        let mut f = Forwarding {
            me,
            snap: Arc::new(TopoSnapshot::new(graph)),
            version: 0,
            my_spt: Spt::empty(),
            spt: HashMap::new(),
            mcast: HashMap::new(),
            scratch: SptScratch::new(),
            spt_builds: 0,
            installs: 0,
        };
        f.rebuild_my_spt();
        f
    }

    /// Installs the shared topology view for connectivity `version`.
    ///
    /// If `version` matches the installed one this is a no-op: the snapshot
    /// is unchanged by construction, so nothing is invalidated and nothing
    /// is recomputed. On a real change the per-destination next-hop table
    /// is rebuilt in one SPT pass (reusing the previous table's memory) and
    /// the version-scoped caches are dropped.
    pub fn install(&mut self, snap: Arc<TopoSnapshot>, version: u64) {
        if version == self.version {
            return;
        }
        self.snap = snap;
        self.version = version;
        self.spt.clear();
        self.mcast.clear();
        self.installs += 1;
        self.rebuild_my_spt();
    }

    /// Installs a fresh topology view built from a plain graph. Legacy
    /// entry point (and the pre-snapshot comparison path for benchmarks):
    /// always freezes and recomputes, like every LSA arrival used to.
    pub fn set_graph(&mut self, graph: Graph) {
        let next = self.version.wrapping_add(1);
        self.install(Arc::new(TopoSnapshot::new(graph)), next);
    }

    /// The current topology view.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.snap.graph()
    }

    /// The connectivity version of the installed view.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total SPT computations performed since creation. A cache hit does
    /// no graph work, so this stays flat across repeated lookups.
    #[must_use]
    pub fn spt_builds(&self) -> u64 {
        self.spt_builds
    }

    /// Times a new topology view was installed (caches invalidated).
    /// A no-op [`Forwarding::install`] leaves this unchanged.
    #[must_use]
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Link-state unicast: the edge to forward on from this node toward
    /// `dst`, or `None` if `dst` is unreachable or is this node. O(1): one
    /// dense-table read.
    #[must_use]
    pub fn unicast_next_hop(&self, dst: NodeId) -> Option<EdgeId> {
        self.my_spt.next_hop(dst).map(|(_, e)| e)
    }

    /// Whether this node currently has a usable route to `dst` (trivially
    /// true for itself). The membership maintenance loop uses this as its
    /// per-epoch liveness evidence.
    #[must_use]
    pub fn reaches(&self, dst: NodeId) -> bool {
        dst == self.me || self.my_spt.next_hop(dst).is_some()
    }

    /// Link-state multicast: the edges this node forwards a packet from
    /// `origin` on, given the group's member nodes. Every node computes the
    /// same origin-rooted tree from shared state, so the union of these
    /// local decisions is exactly the tree. Returns a borrowed slice into
    /// the version-scoped cache — a hit does no graph work and no
    /// allocation.
    pub fn multicast_out_edges(&mut self, origin: NodeId, members: &[NodeId]) -> &[EdgeId] {
        let key = (origin, fingerprint(members));
        if !self.mcast.contains_key(&key) {
            let Forwarding {
                me,
                ref snap,
                ref my_spt,
                ref mut spt,
                ref mut scratch,
                ref mut spt_builds,
                ..
            } = *self;
            let spt = if origin == me {
                my_spt
            } else {
                spt_entry(snap, spt, scratch, spt_builds, origin)
            };
            let mut out = Vec::new();
            if snap.edge_count() <= son_topo::graph::MAX_EDGES {
                // The edge set of the origin-rooted tree spanning the
                // members. This node forwards on tree edges whose *child*
                // side is the far endpoint (i.e. edges by which some
                // member's path leaves `me`).
                let tree = spt.tree_mask(members);
                for e in tree.iter() {
                    let (a, b) = snap.endpoints(e);
                    let far = if a == me {
                        b
                    } else if b == me {
                        a
                    } else {
                        continue;
                    };
                    // `e` is downstream of me iff far's tree parent is me
                    // via e.
                    if spt.parent(far) == Some((me, e)) {
                        out.push(e);
                    }
                }
            } else {
                // Beyond the EdgeMask capacity: walk each member's tree
                // path instead of materializing a mask. Same edge set;
                // sorted to match the mask path's ascending-id order.
                for &m in members {
                    let mut cur = m;
                    while let Some((p, e)) = spt.parent(cur) {
                        if p == me && !out.contains(&e) {
                            out.push(e);
                        }
                        cur = p;
                    }
                }
                out.sort_unstable();
            }
            self.mcast.insert(key, out);
        }
        self.mcast.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Anycast: resolve the best member node from this (ingress) node.
    #[must_use]
    pub fn anycast_resolve(&self, members: &[NodeId]) -> Option<NodeId> {
        let me = self.me;
        if members.contains(&me) {
            return Some(me);
        }
        members
            .iter()
            .filter_map(|&m| self.my_spt.dist(m).map(|d| (d, m)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)))
            .map(|(_, m)| m)
    }

    /// Computes the source-route stamp for a flow from this node to
    /// `dst`, per the selected scheme. Returns `None` if no route exists.
    ///
    /// Runs against the frozen graph inside the snapshot — no topology
    /// clone per stamp. Down links stay in the graph at weight 1e12, so
    /// any path using one is worse than every real alternative and the
    /// algorithms prune them naturally.
    pub fn source_route_mask(&mut self, scheme: SourceRoute, dst: NodeId) -> Option<EdgeMask> {
        let usable = self.snap.graph();
        // EdgeMask stamps address at most MAX_EDGES edges; larger scale
        // topologies cannot be source-routed, so the flow is refused here
        // (the ingress reports it unroutable) instead of panicking inside
        // the mask constructors.
        if usable.edge_count() > son_topo::graph::MAX_EDGES {
            return None;
        }
        match scheme {
            SourceRoute::DisjointPaths(k) => {
                let dp = k_node_disjoint_paths(usable, self.me, dst, usize::from(k.max(1)));
                if dp.is_empty() {
                    None
                } else {
                    Some(dp.mask())
                }
            }
            SourceRoute::OverlappingPaths(k) => {
                let mask = overlapping_paths_mask(usable, self.me, dst, usize::from(k.max(1)));
                if mask.is_empty() {
                    None
                } else {
                    Some(mask)
                }
            }
            SourceRoute::DisseminationGraph => {
                let mask = robust_dissemination_graph(usable, self.me, dst);
                if mask.is_empty() {
                    None
                } else {
                    Some(mask)
                }
            }
            SourceRoute::ConstrainedFlooding => Some(constrained_flooding(usable)),
            SourceRoute::Static(mask) => Some(mask),
        }
    }

    /// Source-based forwarding: the mask edges incident to this node, except
    /// the one the packet arrived on. Combined with per-flow de-duplication
    /// this floods the packet over exactly the stamped subgraph.
    #[must_use]
    pub fn mask_out_edges(&self, mask: &EdgeMask, arrived_on: Option<EdgeId>) -> Vec<EdgeId> {
        let mut out = Vec::new();
        self.mask_out_edges_into(mask, arrived_on, &mut out);
        out
    }

    /// Like [`Forwarding::mask_out_edges`], but appends into a caller-owned
    /// buffer so the per-packet path allocates nothing once warm.
    pub fn mask_out_edges_into(
        &self,
        mask: &EdgeMask,
        arrived_on: Option<EdgeId>,
        out: &mut Vec<EdgeId>,
    ) {
        out.extend(
            self.snap
                .neighbors(self.me)
                .filter(|&(_, e)| mask.contains(e) && Some(e) != arrived_on)
                .map(|(_, e)| e),
        );
    }

    /// Rebuilds the dense next-hop table rooted at `me`, reusing its
    /// allocations.
    fn rebuild_my_spt(&mut self) {
        let Forwarding {
            me,
            ref snap,
            ref mut my_spt,
            ref mut scratch,
            ref mut spt_builds,
            ..
        } = *self;
        snap.spt_with_into(me, |e| usable_cost(snap, e), scratch, my_spt);
        *spt_builds += 1;
    }
}

/// Cache lookup with split borrows: the snapshot stays immutably borrowed
/// while the SPT cache takes the mutable borrow.
fn spt_entry<'a>(
    snap: &TopoSnapshot,
    cache: &'a mut HashMap<NodeId, Spt>,
    scratch: &mut SptScratch,
    builds: &mut u64,
    root: NodeId,
) -> &'a Spt {
    cache.entry(root).or_insert_with(|| {
        *builds += 1;
        snap.spt_with(root, |e| usable_cost(snap, e), scratch)
    })
}

/// Edge cost that refuses to traverse unusable (down) edges.
fn usable_cost(snap: &TopoSnapshot, e: EdgeId) -> f64 {
    let w = snap.weight(e);
    if w >= UNUSABLE {
        f64::INFINITY
    } else {
        w
    }
}

fn fingerprint(members: &[NodeId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for m in members {
        h ^= m.0 as u64 + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl son_obs::MemFootprint for Forwarding {
    fn footprint_bytes(&self) -> usize {
        use son_obs::footprint::{hashmap_bytes, vec_bytes};
        // The Arc-shared snapshot is charged here (once per node), per the
        // attribution policy in DESIGN.md: routing is the authoritative
        // holder of the frozen shared view.
        self.snap.approx_bytes()
            + self.my_spt.approx_bytes()
            + hashmap_bytes(&self.spt)
            + self
                .spt
                .values()
                .map(son_topo::Spt::approx_bytes)
                .sum::<usize>()
            + hashmap_bytes(&self.mcast)
            + self.mcast.values().map(vec_bytes).sum::<usize>()
            + self.scratch.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Square with diagonal: 0-1, 1-3, 0-2, 2-3, 0-3(longer).
    fn square() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0); // e0
        g.add_edge(NodeId(1), NodeId(3), 1.0); // e1
        g.add_edge(NodeId(0), NodeId(2), 2.0); // e2
        g.add_edge(NodeId(2), NodeId(3), 2.0); // e3
        g.add_edge(NodeId(0), NodeId(3), 5.0); // e4
        g
    }

    #[test]
    fn unicast_follows_shortest_path() {
        let f = Forwarding::new(NodeId(0), square());
        assert_eq!(f.unicast_next_hop(NodeId(3)), Some(EdgeId(0)));
        assert_eq!(f.unicast_next_hop(NodeId(0)), None, "no hop to self");
    }

    #[test]
    fn reroute_after_set_graph() {
        let mut f = Forwarding::new(NodeId(0), square());
        assert_eq!(f.unicast_next_hop(NodeId(3)), Some(EdgeId(0)));
        // Link e0 goes down (advertised at 1e12): reroute via 0-2-3.
        let mut g = square();
        g.set_weight(EdgeId(0), 1e12);
        f.set_graph(g);
        assert_eq!(f.unicast_next_hop(NodeId(3)), Some(EdgeId(2)));
    }

    #[test]
    fn down_edge_is_never_used_even_if_only_route() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1e12);
        let f = Forwarding::new(NodeId(0), g);
        assert_eq!(f.unicast_next_hop(NodeId(1)), None);
    }

    #[test]
    fn multicast_tree_edges_from_origin_perspective() {
        // Members at 1 and 3; origin 0. Tree: e0 (0->1), e1 (1->3).
        let mut f0 = Forwarding::new(NodeId(0), square());
        let out0 = f0.multicast_out_edges(NodeId(0), &[NodeId(1), NodeId(3)]);
        assert_eq!(out0, [EdgeId(0)], "origin forwards only into the tree");

        let mut f1 = Forwarding::new(NodeId(1), square());
        let out1 = f1.multicast_out_edges(NodeId(0), &[NodeId(1), NodeId(3)]);
        assert_eq!(out1, [EdgeId(1)], "interior node forwards downstream");

        let mut f3 = Forwarding::new(NodeId(3), square());
        let out3 = f3.multicast_out_edges(NodeId(0), &[NodeId(1), NodeId(3)]);
        assert!(out3.is_empty(), "leaf forwards nowhere");

        let mut f2 = Forwarding::new(NodeId(2), square());
        let out2 = f2.multicast_out_edges(NodeId(0), &[NodeId(1), NodeId(3)]);
        assert!(out2.is_empty(), "off-tree node forwards nowhere");
    }

    #[test]
    fn multicast_cache_invalidated_on_graph_change() {
        let mut f = Forwarding::new(NodeId(0), square());
        let before = f.multicast_out_edges(NodeId(0), &[NodeId(3)]).to_vec();
        assert_eq!(before, vec![EdgeId(0)]);
        let mut g = square();
        g.set_weight(EdgeId(0), 1e12);
        f.set_graph(g);
        let after = f.multicast_out_edges(NodeId(0), &[NodeId(3)]);
        assert_eq!(after, [EdgeId(2)]);
    }

    #[test]
    fn multicast_cache_hit_does_no_graph_work() {
        // From a non-origin node so the origin SPT is demand-built once.
        let mut f = Forwarding::new(NodeId(1), square());
        let members = [NodeId(1), NodeId(3)];
        let first = f.multicast_out_edges(NodeId(0), &members).to_vec();
        let builds = f.spt_builds();
        for _ in 0..100 {
            let again = f.multicast_out_edges(NodeId(0), &members);
            assert_eq!(again, first.as_slice());
        }
        assert_eq!(f.spt_builds(), builds, "cache hits must not recompute");
    }

    #[test]
    fn install_same_version_is_noop() {
        let mut f = Forwarding::new(NodeId(0), square());
        let _ = f.multicast_out_edges(NodeId(0), &[NodeId(3)]);
        let builds = f.spt_builds();
        let installs = f.installs();
        // Re-install the same version (a no-op LSA refresh downstream).
        let snap = Arc::new(square().freeze());
        f.install(snap, f.version());
        assert_eq!(f.spt_builds(), builds, "no recompute on unchanged version");
        assert_eq!(f.installs(), installs, "no invalidation either");
    }

    #[test]
    fn anycast_prefers_self_then_nearest() {
        let f = Forwarding::new(NodeId(0), square());
        assert_eq!(f.anycast_resolve(&[NodeId(0), NodeId(3)]), Some(NodeId(0)));
        // dist(2) = 2 via e2 and dist(3) = 2 via 0-1-3: tie breaks to the
        // lower node id.
        assert_eq!(f.anycast_resolve(&[NodeId(2), NodeId(3)]), Some(NodeId(2)));
        assert_eq!(f.anycast_resolve(&[]), None);
    }

    #[test]
    fn source_route_masks() {
        let mut f = Forwarding::new(NodeId(0), square());
        let two = f
            .source_route_mask(SourceRoute::DisjointPaths(2), NodeId(3))
            .unwrap();
        assert!(two.contains(EdgeId(0)) && two.contains(EdgeId(1)));
        assert!(two.contains(EdgeId(2)) && two.contains(EdgeId(3)));

        let flood = f
            .source_route_mask(SourceRoute::ConstrainedFlooding, NodeId(3))
            .unwrap();
        assert_eq!(flood.len(), 5);

        let fixed = EdgeMask::from_edges([EdgeId(4)]);
        assert_eq!(
            f.source_route_mask(SourceRoute::Static(fixed), NodeId(3)),
            Some(fixed)
        );

        let dg = f
            .source_route_mask(SourceRoute::DisseminationGraph, NodeId(3))
            .unwrap();
        assert!(dg.is_superset(&two));

        let overlap = f
            .source_route_mask(SourceRoute::OverlappingPaths(2), NodeId(3))
            .unwrap();
        assert!(
            overlap.len() >= 2,
            "at least the shortest path plus a deviation"
        );
    }

    #[test]
    fn mask_forwarding_excludes_arrival_edge() {
        let f = Forwarding::new(NodeId(1), square());
        let mask = EdgeMask::from_edges([EdgeId(0), EdgeId(1)]);
        assert_eq!(f.mask_out_edges(&mask, Some(EdgeId(0))), vec![EdgeId(1)]);
        let both = f.mask_out_edges(&mask, None);
        assert_eq!(both, vec![EdgeId(0), EdgeId(1)], "ingress forwards on all");
    }

    #[test]
    fn mask_out_edges_into_appends_without_clearing() {
        let f = Forwarding::new(NodeId(1), square());
        let mask = EdgeMask::from_edges([EdgeId(0), EdgeId(1)]);
        let mut buf = Vec::with_capacity(4);
        f.mask_out_edges_into(&mask, Some(EdgeId(0)), &mut buf);
        assert_eq!(buf, vec![EdgeId(1)]);
    }

    #[test]
    fn anycast_tie_break_is_lowest_id() {
        // 1 and 2 both at distance 1 from 0.
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        let f = Forwarding::new(NodeId(0), g);
        assert_eq!(f.anycast_resolve(&[NodeId(2), NodeId(1)]), Some(NodeId(1)));
    }
}
