//! The routing level (Fig. 2): forwarding decisions from shared state.
//!
//! "The routing level makes decisions about how to forward incoming packets
//! based on the routing service specified for the flow (Link State or Source
//! Based), the current state of the network (obtained via the Connectivity
//! Graph Maintenance component), and the packet's source and destination or
//! destinations (with multicast group membership maintained by the Group
//! State component)."
//!
//! [`Forwarding`] is a pure decision engine over the current shared topology
//! view; the node daemon consults it per packet. All computations are cached
//! and invalidated by the connectivity/group state version counters.

use std::collections::HashMap;

use son_topo::dijkstra::ShortestPaths;
use son_topo::{
    constrained_flooding, k_node_disjoint_paths, overlapping_paths_mask,
    robust_dissemination_graph, EdgeId, EdgeMask, Graph, NodeId,
};

use crate::service::SourceRoute;

/// Edge weight above which a link is considered unusable (down links are
/// advertised at 1e12 by the connectivity monitor).
const UNUSABLE: f64 = 1e9;

/// The per-node forwarding engine.
#[derive(Debug)]
pub struct Forwarding {
    me: NodeId,
    graph: Graph,
    /// Shortest-path trees by root, computed on demand.
    spt: HashMap<NodeId, ShortestPaths>,
    /// Multicast out-edge sets by (origin, member-set fingerprint).
    mcast: HashMap<(NodeId, u64), Vec<EdgeId>>,
}

impl Forwarding {
    /// Creates a forwarding engine for node `me` over an initial topology
    /// view.
    #[must_use]
    pub fn new(me: NodeId, graph: Graph) -> Self {
        Forwarding {
            me,
            graph,
            spt: HashMap::new(),
            mcast: HashMap::new(),
        }
    }

    /// Installs a fresh topology view (connectivity state changed) and
    /// drops every cache. This is the sub-second reroute moment.
    pub fn set_graph(&mut self, graph: Graph) {
        self.graph = graph;
        self.spt.clear();
        self.mcast.clear();
    }

    /// The current topology view.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Link-state unicast: the edge to forward on from this node toward
    /// `dst`, or `None` if `dst` is unreachable or is this node.
    pub fn unicast_next_hop(&mut self, dst: NodeId) -> Option<EdgeId> {
        let me = self.me;
        if dst == me {
            return None;
        }
        // Forwarding tables are per-destination: route along the SPT rooted
        // at *this* node.
        spt_entry(&self.graph, &mut self.spt, me)
            .next_hop(dst)
            .map(|(_, e)| e)
    }

    /// Link-state multicast: the edges this node forwards a packet from
    /// `origin` on, given the group's member nodes. Every node computes the
    /// same origin-rooted tree from shared state, so the union of these
    /// local decisions is exactly the tree.
    pub fn multicast_out_edges(&mut self, origin: NodeId, members: &[NodeId]) -> Vec<EdgeId> {
        let fp = fingerprint(members);
        if let Some(cached) = self.mcast.get(&(origin, fp)) {
            return cached.clone();
        }
        let me = self.me;
        let spt = spt_entry(&self.graph, &mut self.spt, origin);
        // The edge set of the origin-rooted tree spanning the members.
        let tree = spt.tree_mask(members);
        // This node forwards on tree edges whose *child* side is the far
        // endpoint (i.e. edges by which some member's path leaves `me`).
        let mut out = Vec::new();
        for e in tree.iter() {
            let (a, b) = self.graph.endpoints(e);
            let far = if a == me {
                b
            } else if b == me {
                a
            } else {
                continue;
            };
            // `e` is downstream of me iff far's tree parent is me via e.
            if spt.parent(far) == Some((me, e)) {
                out.push(e);
            }
        }
        self.mcast.insert((origin, fp), out.clone());
        out
    }

    /// Anycast: resolve the best member node from this (ingress) node.
    pub fn anycast_resolve(&mut self, members: &[NodeId]) -> Option<NodeId> {
        let me = self.me;
        if members.contains(&me) {
            return Some(me);
        }
        let spt = spt_entry(&self.graph, &mut self.spt, me);
        members
            .iter()
            .filter_map(|&m| spt.dist(m).map(|d| (d, m)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)))
            .map(|(_, m)| m)
    }

    /// Computes the source-route stamp for a flow from this node to
    /// `dst`, per the selected scheme. Returns `None` if no route exists.
    pub fn source_route_mask(&mut self, scheme: SourceRoute, dst: NodeId) -> Option<EdgeMask> {
        let usable = self.usable_graph();
        match scheme {
            SourceRoute::DisjointPaths(k) => {
                let dp = k_node_disjoint_paths(&usable, self.me, dst, usize::from(k.max(1)));
                if dp.is_empty() {
                    None
                } else {
                    Some(dp.mask())
                }
            }
            SourceRoute::OverlappingPaths(k) => {
                let mask = overlapping_paths_mask(&usable, self.me, dst, usize::from(k.max(1)));
                if mask.is_empty() {
                    None
                } else {
                    Some(mask)
                }
            }
            SourceRoute::DisseminationGraph => {
                let mask = robust_dissemination_graph(&usable, self.me, dst);
                if mask.is_empty() {
                    None
                } else {
                    Some(mask)
                }
            }
            SourceRoute::ConstrainedFlooding => Some(constrained_flooding(&self.graph)),
            SourceRoute::Static(mask) => Some(mask),
        }
    }

    /// Source-based forwarding: the mask edges incident to this node, except
    /// the one the packet arrived on. Combined with per-flow de-duplication
    /// this floods the packet over exactly the stamped subgraph.
    #[must_use]
    pub fn mask_out_edges(&self, mask: &EdgeMask, arrived_on: Option<EdgeId>) -> Vec<EdgeId> {
        self.graph
            .neighbors(self.me)
            .filter(|&(_, e)| mask.contains(e) && Some(e) != arrived_on)
            .map(|(_, e)| e)
            .collect()
    }

    /// A copy of the current view with down links removed entirely, for
    /// algorithms that must not route over them.
    fn usable_graph(&self) -> Graph {
        // Rebuild, skipping unusable edges. Edge ids change, so translate
        // the resulting masks back via endpoint lookup.
        // Simpler: keep ids by cloning and leaving weights; the disjoint-path
        // and dissemination algorithms treat huge weights as usable-but-bad,
        // so instead build a filtered graph preserving edge ids is required.
        // Graph does not support edge removal by design (ids are bitmask
        // positions), so we pass the full graph but rely on weights: a down
        // link costs 1e12, and any path using one is worse than every real
        // alternative; prune those paths after the fact.
        self.graph.clone()
    }
}

/// Cache lookup with split borrows: `graph` stays immutably borrowed while
/// the SPT cache takes the mutable borrow.
fn spt_entry<'a>(
    graph: &Graph,
    cache: &'a mut HashMap<NodeId, ShortestPaths>,
    root: NodeId,
) -> &'a ShortestPaths {
    cache
        .entry(root)
        .or_insert_with(|| dijkstra_usable(graph, root))
}

/// Dijkstra that refuses to traverse unusable (down) edges.
fn dijkstra_usable(graph: &Graph, root: NodeId) -> ShortestPaths {
    son_topo::dijkstra_with(graph, root, |e| {
        let w = graph.weight(e);
        if w >= UNUSABLE {
            f64::INFINITY
        } else {
            w
        }
    })
}

fn fingerprint(members: &[NodeId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for m in members {
        h ^= m.0 as u64 + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Square with diagonal: 0-1, 1-3, 0-2, 2-3, 0-3(longer).
    fn square() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0); // e0
        g.add_edge(NodeId(1), NodeId(3), 1.0); // e1
        g.add_edge(NodeId(0), NodeId(2), 2.0); // e2
        g.add_edge(NodeId(2), NodeId(3), 2.0); // e3
        g.add_edge(NodeId(0), NodeId(3), 5.0); // e4
        g
    }

    #[test]
    fn unicast_follows_shortest_path() {
        let mut f = Forwarding::new(NodeId(0), square());
        assert_eq!(f.unicast_next_hop(NodeId(3)), Some(EdgeId(0)));
        assert_eq!(f.unicast_next_hop(NodeId(0)), None, "no hop to self");
    }

    #[test]
    fn reroute_after_set_graph() {
        let mut f = Forwarding::new(NodeId(0), square());
        assert_eq!(f.unicast_next_hop(NodeId(3)), Some(EdgeId(0)));
        // Link e0 goes down (advertised at 1e12): reroute via 0-2-3.
        let mut g = square();
        g.set_weight(EdgeId(0), 1e12);
        f.set_graph(g);
        assert_eq!(f.unicast_next_hop(NodeId(3)), Some(EdgeId(2)));
    }

    #[test]
    fn down_edge_is_never_used_even_if_only_route() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1e12);
        let mut f = Forwarding::new(NodeId(0), g);
        assert_eq!(f.unicast_next_hop(NodeId(1)), None);
    }

    #[test]
    fn multicast_tree_edges_from_origin_perspective() {
        // Members at 1 and 3; origin 0. Tree: e0 (0->1), e1 (1->3).
        let mut f0 = Forwarding::new(NodeId(0), square());
        let out0 = f0.multicast_out_edges(NodeId(0), &[NodeId(1), NodeId(3)]);
        assert_eq!(out0, vec![EdgeId(0)], "origin forwards only into the tree");

        let mut f1 = Forwarding::new(NodeId(1), square());
        let out1 = f1.multicast_out_edges(NodeId(0), &[NodeId(1), NodeId(3)]);
        assert_eq!(out1, vec![EdgeId(1)], "interior node forwards downstream");

        let mut f3 = Forwarding::new(NodeId(3), square());
        let out3 = f3.multicast_out_edges(NodeId(0), &[NodeId(1), NodeId(3)]);
        assert!(out3.is_empty(), "leaf forwards nowhere");

        let mut f2 = Forwarding::new(NodeId(2), square());
        let out2 = f2.multicast_out_edges(NodeId(0), &[NodeId(1), NodeId(3)]);
        assert!(out2.is_empty(), "off-tree node forwards nowhere");
    }

    #[test]
    fn multicast_cache_invalidated_on_graph_change() {
        let mut f = Forwarding::new(NodeId(0), square());
        let before = f.multicast_out_edges(NodeId(0), &[NodeId(3)]);
        assert_eq!(before, vec![EdgeId(0)]);
        let mut g = square();
        g.set_weight(EdgeId(0), 1e12);
        f.set_graph(g);
        let after = f.multicast_out_edges(NodeId(0), &[NodeId(3)]);
        assert_eq!(after, vec![EdgeId(2)]);
    }

    #[test]
    fn anycast_prefers_self_then_nearest() {
        let mut f = Forwarding::new(NodeId(0), square());
        assert_eq!(f.anycast_resolve(&[NodeId(0), NodeId(3)]), Some(NodeId(0)));
        // dist(2) = 2 via e2 and dist(3) = 2 via 0-1-3: tie breaks to the
        // lower node id.
        assert_eq!(f.anycast_resolve(&[NodeId(2), NodeId(3)]), Some(NodeId(2)));
        assert_eq!(f.anycast_resolve(&[]), None);
    }

    #[test]
    fn source_route_masks() {
        let mut f = Forwarding::new(NodeId(0), square());
        let two = f
            .source_route_mask(SourceRoute::DisjointPaths(2), NodeId(3))
            .unwrap();
        assert!(two.contains(EdgeId(0)) && two.contains(EdgeId(1)));
        assert!(two.contains(EdgeId(2)) && two.contains(EdgeId(3)));

        let flood = f
            .source_route_mask(SourceRoute::ConstrainedFlooding, NodeId(3))
            .unwrap();
        assert_eq!(flood.len(), 5);

        let fixed = EdgeMask::from_edges([EdgeId(4)]);
        assert_eq!(
            f.source_route_mask(SourceRoute::Static(fixed), NodeId(3)),
            Some(fixed)
        );

        let dg = f
            .source_route_mask(SourceRoute::DisseminationGraph, NodeId(3))
            .unwrap();
        assert!(dg.is_superset(&two));

        let overlap = f
            .source_route_mask(SourceRoute::OverlappingPaths(2), NodeId(3))
            .unwrap();
        assert!(
            overlap.len() >= 2,
            "at least the shortest path plus a deviation"
        );
    }

    #[test]
    fn mask_forwarding_excludes_arrival_edge() {
        let f = Forwarding::new(NodeId(1), square());
        let mask = EdgeMask::from_edges([EdgeId(0), EdgeId(1)]);
        assert_eq!(f.mask_out_edges(&mask, Some(EdgeId(0))), vec![EdgeId(1)]);
        let both = f.mask_out_edges(&mask, None);
        assert_eq!(both, vec![EdgeId(0), EdgeId(1)], "ingress forwards on all");
    }

    #[test]
    fn anycast_tie_break_is_lowest_id() {
        // 1 and 2 both at distance 1 from 0.
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        let mut f = Forwarding::new(NodeId(0), g);
        assert_eq!(f.anycast_resolve(&[NodeId(2), NodeId(1)]), Some(NodeId(1)));
    }
}
