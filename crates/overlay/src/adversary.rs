//! Compromised-node behaviour models (§IV-B).
//!
//! The intrusion-tolerance experiments need overlay nodes that hold valid
//! credentials but misbehave: they participate correctly in the control
//! plane (so link-state routing does not simply route around them) while
//! attacking the data plane. This module enumerates the behaviours the
//! paper's schemes must withstand.

use son_netsim::time::SimDuration;
use son_topo::NodeId;

use crate::addr::Destination;
use crate::packet::DataPacket;

/// How a compromised node treats data packets it should forward.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// Not compromised.
    Correct,
    /// Silently drops every data packet it should forward (while remaining
    /// a fully correct control-plane participant, so it is not routed
    /// around).
    Blackhole,
    /// Drops data packets originating at specific overlay nodes.
    SelectiveDrop {
        /// Origins whose packets are dropped.
        victims: Vec<NodeId>,
    },
    /// Holds forwarded packets for an extra delay (destroys timeliness
    /// without visible loss).
    Delay {
        /// The added forwarding delay.
        extra: SimDuration,
    },
    /// Forwards each packet multiple times (amplification; tests
    /// de-duplication).
    Duplicate {
        /// Total copies transmitted per packet (≥ 2).
        copies: u8,
    },
    /// Forwards transit packets out a deterministic *wrong* link instead of
    /// the routed one (routing disruption without visible loss at this hop).
    Misroute,
    /// Originates junk traffic toward a destination at a fixed rate — the
    /// resource-consumption attack the fair schedulers defend against.
    Flood {
        /// Where the junk goes.
        dst: Destination,
        /// Packets per second.
        rate_pps: u64,
        /// Payload size per junk packet.
        size: usize,
    },
}

impl Behavior {
    /// `true` for [`Behavior::Correct`].
    #[must_use]
    pub fn is_correct(&self) -> bool {
        matches!(self, Behavior::Correct)
    }

    /// The forwarding verdict this behaviour gives for a transit packet.
    #[must_use]
    pub fn forward_verdict(&self, pkt: &DataPacket) -> Verdict {
        match self {
            Behavior::Correct | Behavior::Flood { .. } => Verdict::Forward,
            Behavior::Blackhole => Verdict::Drop,
            Behavior::SelectiveDrop { victims } => {
                if victims.contains(&pkt.origin) {
                    Verdict::Drop
                } else {
                    Verdict::Forward
                }
            }
            Behavior::Delay { extra } => Verdict::Delay(*extra),
            Behavior::Duplicate { copies } => Verdict::Duplicate((*copies).max(2)),
            Behavior::Misroute => Verdict::Misroute,
        }
    }
}

/// The per-packet decision of a behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward normally.
    Forward,
    /// Silently drop.
    Drop,
    /// Forward after an extra delay.
    Delay(SimDuration),
    /// Transmit this many copies.
    Duplicate(u8),
    /// Forward out a wrong link.
    Misroute,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{FlowKey, OverlayAddr};
    use crate::service::FlowSpec;
    use bytes::Bytes;
    use son_netsim::time::SimTime;

    fn pkt(origin: usize) -> DataPacket {
        DataPacket {
            flow: FlowKey::new(
                OverlayAddr::new(NodeId(origin), 1),
                Destination::Unicast(OverlayAddr::new(NodeId(9), 1)),
            ),
            flow_seq: 1,
            origin: NodeId(origin),
            spec: FlowSpec::best_effort(),
            mask: None,
            resolved_dst: None,
            link_seq: 0,
            created_at: SimTime::ZERO,
            size: 10,
            payload: Bytes::new(),
            ttl: 8,
            auth_tag: 0,
            trace: None,
        }
    }

    #[test]
    fn verdicts_match_behaviours() {
        assert_eq!(Behavior::Correct.forward_verdict(&pkt(0)), Verdict::Forward);
        assert_eq!(Behavior::Blackhole.forward_verdict(&pkt(0)), Verdict::Drop);
        let sel = Behavior::SelectiveDrop {
            victims: vec![NodeId(3)],
        };
        assert_eq!(sel.forward_verdict(&pkt(3)), Verdict::Drop);
        assert_eq!(sel.forward_verdict(&pkt(4)), Verdict::Forward);
        assert_eq!(
            Behavior::Delay {
                extra: SimDuration::from_millis(30)
            }
            .forward_verdict(&pkt(0)),
            Verdict::Delay(SimDuration::from_millis(30))
        );
        assert_eq!(
            Behavior::Duplicate { copies: 1 }.forward_verdict(&pkt(0)),
            Verdict::Duplicate(2)
        );
        assert_eq!(
            Behavior::Misroute.forward_verdict(&pkt(0)),
            Verdict::Misroute
        );
        let flood = Behavior::Flood {
            dst: Destination::Unicast(OverlayAddr::new(NodeId(1), 1)),
            rate_pps: 100,
            size: 100,
        };
        assert_eq!(
            flood.forward_verdict(&pkt(0)),
            Verdict::Forward,
            "flooders still forward"
        );
        assert!(Behavior::Correct.is_correct());
        assert!(!flood.is_correct());
    }
}
