//! Overlay service selection: the routing-level and link-level protocols a
//! client picks per flow (Fig. 2).
//!
//! "Each client specifies the particular overlay services that should be
//! used for its flow. ... Client applications can select the combination of
//! routing and link protocols that best supports their particular demands"
//! (§II-B).

use serde::{Deserialize, Serialize};
use son_netsim::time::SimDuration;
use son_topo::EdgeMask;

/// The routing-level service of a flow (Fig. 2, Routing level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingService {
    /// Hop-by-hop forwarding on the current shortest path, recomputed from
    /// shared connectivity state (sub-second rerouting).
    LinkState,
    /// Source-based routing: the ingress node stamps each packet with the
    /// exact set of overlay links to traverse.
    SourceBased(SourceRoute),
}

/// How the ingress computes the source-route stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceRoute {
    /// `k` minimum-latency node-disjoint paths; survives any `k-1`
    /// compromised nodes (§IV-B).
    DisjointPaths(u8),
    /// `k` cheapest loopless paths, which may overlap — cheaper than
    /// disjoint paths but shares fate where they overlap (\[13\] in the
    /// paper's related work).
    OverlappingPaths(u8),
    /// A robust source/destination-problematic dissemination graph (§V-A).
    DisseminationGraph,
    /// Constrained flooding over every overlay link; delivers whenever a
    /// correct path exists (§IV-B).
    ConstrainedFlooding,
    /// A fixed caller-provided subgraph stamp.
    Static(EdgeMask),
}

/// The link-level service of a flow (Fig. 2, Link level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkService {
    /// Stateless per-hop forwarding; no recovery.
    BestEffort,
    /// Reliable Data Link: hop-by-hop ARQ with out-of-order forwarding and
    /// in-order delivery at the destination (§III-A).
    Reliable,
    /// Real-time recovery (NM-Strikes): N spaced retransmission requests ×
    /// M spaced retransmissions within a latency budget; complete
    /// timeliness, bounded (not complete) reliability (§IV-A, Fig. 4).
    Realtime(RealtimeParams),
    /// Intrusion-Tolerant Priority messaging: per-source bounded buffers,
    /// priority + age eviction, round-robin egress (§IV-B).
    ItPriority,
    /// Intrusion-Tolerant Reliable messaging: per-flow bounded buffers,
    /// round-robin egress, hop-by-hop backpressure (§IV-B).
    ItReliable,
    /// A single shared FIFO queue with tail drop — the non-intrusion-
    /// tolerant baseline the fair schedulers are evaluated against. Not in
    /// the paper's Fig. 2; added through the architecture's "new protocols
    /// can be easily added" extension point (§II-B).
    Fifo,
    /// Forward error correction: every block of `k` data packets is
    /// followed by `r` repair packets; any `k` of the `k + r` reconstruct
    /// the block. Fixed proactive overhead `(k+r)/k`, zero feedback — the
    /// OverQoS-style alternative (\[10\] in the paper's related work) used as
    /// an ablation against the reactive NM-Strikes protocol.
    Fec(FecParams),
}

/// Parameters of the FEC link protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FecParams {
    /// Data packets per block.
    pub k: u8,
    /// Repair packets per block.
    pub r: u8,
}

impl FecParams {
    /// A light 10% -overhead code.
    #[must_use]
    pub fn light() -> Self {
        FecParams { k: 10, r: 1 }
    }

    /// A strong 30%-overhead code.
    #[must_use]
    pub fn strong() -> Self {
        FecParams { k: 10, r: 3 }
    }

    /// The fixed wire overhead ratio `(k+r)/k`.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        f64::from(self.k as u16 + self.r as u16) / f64::from(self.k)
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if `k` or `r` is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be at least 1".into());
        }
        if self.r == 0 {
            return Err("r must be at least 1".into());
        }
        Ok(())
    }
}

impl LinkService {
    /// A compact label for metrics and experiment tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            LinkService::BestEffort => "best_effort",
            LinkService::Reliable => "reliable",
            LinkService::Realtime(_) => "realtime",
            LinkService::ItPriority => "it_priority",
            LinkService::ItReliable => "it_reliable",
            LinkService::Fifo => "fifo",
            LinkService::Fec(_) => "fec",
        }
    }

    /// The slot index multiplexing per-link protocol instances.
    #[must_use]
    pub(crate) fn slot(&self) -> usize {
        match self {
            LinkService::BestEffort => 0,
            LinkService::Reliable => 1,
            LinkService::Realtime(_) => 2,
            LinkService::ItPriority => 3,
            LinkService::ItReliable => 4,
            LinkService::Fifo => 5,
            LinkService::Fec(_) => 6,
        }
    }
}

/// Number of distinct link-protocol slots a link multiplexes.
pub(crate) const SERVICE_SLOTS: usize = 7;

/// The metrics label of a protocol slot (the inverse of
/// [`LinkService::slot`], for observability events that arrive tagged with a
/// slot index rather than a service value).
#[must_use]
pub(crate) fn slot_label(slot: usize) -> &'static str {
    match slot {
        0 => "best_effort",
        1 => "reliable",
        2 => "realtime",
        3 => "it_priority",
        4 => "it_reliable",
        5 => "fifo",
        _ => "fec",
    }
}

/// Parameters of the NM-Strikes real-time link protocol (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RealtimeParams {
    /// Number of retransmission requests the receiver schedules per missing
    /// packet ("N strikes").
    pub n_requests: u8,
    /// Number of retransmissions the sender schedules on the first request
    /// ("M strikes").
    pub m_retransmissions: u8,
    /// The per-hop recovery budget: the window within which requests and
    /// retransmissions must be spread so that even the Mth response to the
    /// Nth request arrives before the flow deadline.
    pub budget: SimDuration,
}

impl RealtimeParams {
    /// The paper's live-TV setting: a 200 ms one-way bound on a continental
    /// path leaves ~160 ms for recovery (§IV-A).
    #[must_use]
    pub fn live_tv() -> Self {
        RealtimeParams {
            n_requests: 3,
            m_retransmissions: 2,
            budget: SimDuration::from_millis(160),
        }
    }

    /// The VoIP-era predecessor protocol: a single request and a single
    /// retransmission per lost packet \[6,7\], used as the building block for
    /// remote manipulation (§V-A).
    #[must_use]
    pub fn single_strike(budget: SimDuration) -> Self {
        RealtimeParams {
            n_requests: 1,
            m_retransmissions: 1,
            budget,
        }
    }

    /// The spacing between consecutive requests (and retransmissions):
    /// the budget divided over all scheduled events, "spaced out as much as
    /// possible, but not so much that the deadline is not met".
    #[must_use]
    pub fn spacing(&self) -> SimDuration {
        let slots = u64::from(self.n_requests) + u64::from(self.m_retransmissions);
        self.budget / slots.max(1)
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if N or M is zero or the budget is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_requests == 0 {
            return Err("n_requests must be at least 1".into());
        }
        if self.m_retransmissions == 0 {
            return Err("m_retransmissions must be at least 1".into());
        }
        if self.budget.is_zero() {
            return Err("budget must be positive".into());
        }
        Ok(())
    }
}

/// Message priority for Intrusion-Tolerant Priority messaging: higher values
/// are kept longer when a source's buffer fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(pub u8);

impl Priority {
    /// The default, middling priority.
    pub const NORMAL: Priority = Priority(4);
    /// The highest priority.
    pub const HIGH: Priority = Priority(7);
    /// The lowest priority.
    pub const LOW: Priority = Priority(0);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

/// Everything a client selects for one flow: routing service, link service,
/// delivery semantics, and an optional end-to-end deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Routing-level protocol.
    pub routing: RoutingService,
    /// Link-level protocol.
    pub link: LinkService,
    /// Deliver in order at the destination (buffering out-of-order arrivals)?
    pub ordered: bool,
    /// End-to-end one-way deadline; packets later than this are discarded at
    /// the destination ("if a recovered packet arrives after later packets
    /// were already delivered, it is discarded" — realtime flows).
    pub deadline: Option<SimDuration>,
    /// Priority for [`LinkService::ItPriority`] flows.
    pub priority: Priority,
}

impl FlowSpec {
    /// Best-effort link-state unicast — the plain Internet-like service.
    #[must_use]
    pub fn best_effort() -> Self {
        FlowSpec {
            routing: RoutingService::LinkState,
            link: LinkService::BestEffort,
            ordered: false,
            deadline: None,
            priority: Priority::NORMAL,
        }
    }

    /// Reliable, ordered delivery over link-state routing with hop-by-hop
    /// recovery — broadcast-quality video transport (§III-A).
    #[must_use]
    pub fn reliable() -> Self {
        FlowSpec {
            routing: RoutingService::LinkState,
            link: LinkService::Reliable,
            ordered: true,
            deadline: None,
            priority: Priority::NORMAL,
        }
    }

    /// Live broadcast video: NM-Strikes under a one-way deadline (§IV-A).
    #[must_use]
    pub fn live_video(deadline: SimDuration) -> Self {
        FlowSpec {
            routing: RoutingService::LinkState,
            link: LinkService::Realtime(RealtimeParams::live_tv()),
            ordered: true,
            deadline: Some(deadline),
            priority: Priority::NORMAL,
        }
    }

    /// Sets the routing service.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingService) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the link service.
    #[must_use]
    pub fn with_link(mut self, link: LinkService) -> Self {
        self.link = link;
        self
    }

    /// Sets the end-to-end deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets ordered delivery.
    #[must_use]
    pub fn with_ordered(mut self, ordered: bool) -> Self {
        self.ordered = ordered;
        self
    }

    /// Sets the priority.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

impl Default for FlowSpec {
    fn default() -> Self {
        FlowSpec::best_effort()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_settings() {
        let tv = RealtimeParams::live_tv();
        assert_eq!(tv.n_requests, 3);
        assert_eq!(tv.m_retransmissions, 2);
        assert_eq!(tv.budget, SimDuration::from_millis(160));
        assert!(tv.validate().is_ok());

        let single = RealtimeParams::single_strike(SimDuration::from_millis(20));
        assert_eq!(single.n_requests, 1);
        assert_eq!(single.m_retransmissions, 1);
    }

    #[test]
    fn spacing_spreads_budget_over_all_strikes() {
        let p = RealtimeParams {
            n_requests: 3,
            m_retransmissions: 2,
            budget: SimDuration::from_millis(100),
        };
        assert_eq!(p.spacing(), SimDuration::from_millis(20));
    }

    #[test]
    fn validate_rejects_degenerate_params() {
        let bad_n = RealtimeParams {
            n_requests: 0,
            m_retransmissions: 1,
            budget: SimDuration::from_millis(1),
        };
        assert!(bad_n.validate().is_err());
        let bad_m = RealtimeParams {
            n_requests: 1,
            m_retransmissions: 0,
            budget: SimDuration::from_millis(1),
        };
        assert!(bad_m.validate().is_err());
        let bad_b = RealtimeParams {
            n_requests: 1,
            m_retransmissions: 1,
            budget: SimDuration::ZERO,
        };
        assert!(bad_b.validate().is_err());
    }

    #[test]
    fn flow_spec_builders_chain() {
        let spec = FlowSpec::best_effort()
            .with_link(LinkService::ItPriority)
            .with_priority(Priority::HIGH)
            .with_ordered(false)
            .with_routing(RoutingService::SourceBased(SourceRoute::DisjointPaths(2)))
            .with_deadline(SimDuration::from_millis(65));
        assert_eq!(spec.link, LinkService::ItPriority);
        assert_eq!(spec.priority, Priority::HIGH);
        assert_eq!(spec.deadline, Some(SimDuration::from_millis(65)));
        assert!(matches!(
            spec.routing,
            RoutingService::SourceBased(SourceRoute::DisjointPaths(2))
        ));
    }

    #[test]
    fn link_service_slots_are_distinct() {
        let services = [
            LinkService::BestEffort,
            LinkService::Reliable,
            LinkService::Realtime(RealtimeParams::live_tv()),
            LinkService::ItPriority,
            LinkService::ItReliable,
            LinkService::Fifo,
            LinkService::Fec(FecParams::light()),
        ];
        let mut slots: Vec<usize> = services.iter().map(LinkService::slot).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), services.len());
        assert_eq!(LinkService::Reliable.label(), "reliable");
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::HIGH > Priority::NORMAL);
        assert!(Priority::NORMAL > Priority::LOW);
        assert_eq!(Priority::default(), Priority::NORMAL);
    }
}
