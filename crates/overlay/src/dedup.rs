//! Flow-scoped duplicate suppression for redundant dissemination.
//!
//! Redundant dissemination (disjoint paths, dissemination graphs,
//! constrained flooding) intentionally delivers several copies of each
//! packet to intermediate nodes. The overlay "can make use of the physical
//! computer's ample memory ... to track received messages to allow
//! de-duplication of retransmitted or redundantly transmitted messages"
//! (§II-B). Each node keeps, per flow, a sliding window of seen end-to-end
//! sequence numbers; the first copy wins, later copies are dropped (and
//! counted, so experiments can report wire overhead vs. app-level
//! duplicates).

use std::collections::HashMap;

use crate::addr::FlowKey;

/// Width of the per-flow sliding window, in sequence numbers.
///
/// Windows this wide cover several seconds of the highest-rate flows in the
/// experiments; anything older is treated as seen (it could not still be in
/// flight).
pub const WINDOW: u64 = 4096;

#[derive(Debug, Clone)]
struct FlowWindow {
    /// The highest sequence number observed.
    high: u64,
    /// Ring of bits covering `[high.saturating_sub(WINDOW-1), high]`.
    bits: Vec<u64>,
    /// Whether any packet has been observed at all.
    any: bool,
}

impl FlowWindow {
    fn new() -> Self {
        FlowWindow {
            high: 0,
            bits: vec![0; (WINDOW as usize).div_ceil(64)],
            any: false,
        }
    }

    fn bit(&mut self, seq: u64) -> (usize, u64) {
        let slot = (seq % WINDOW) as usize;
        (slot / 64, 1 << (slot % 64))
    }

    fn test_and_set(&mut self, seq: u64) -> bool {
        if !self.any {
            self.any = true;
            self.high = seq;
            let (w, m) = self.bit(seq);
            self.bits[w] |= m;
            return false;
        }
        if seq > self.high {
            // Clear the bits for the newly uncovered range.
            let start = self.high + 1;
            let clear_from = start.max(seq.saturating_sub(WINDOW - 1));
            if seq - clear_from >= WINDOW {
                for w in self.bits.iter_mut() {
                    *w = 0;
                }
            } else {
                for s in clear_from..=seq {
                    let (w, m) = self.bit(s);
                    self.bits[w] &= !m;
                }
            }
            self.high = seq;
            let (w, m) = self.bit(seq);
            self.bits[w] |= m;
            return false;
        }
        if self.high - seq >= WINDOW {
            // Too old to track: conservatively call it a duplicate.
            return true;
        }
        let (w, m) = self.bit(seq);
        let seen = self.bits[w] & m != 0;
        self.bits[w] |= m;
        seen
    }
}

/// Per-node duplicate suppression table, keyed by flow.
#[derive(Debug, Clone, Default)]
pub struct DedupTable {
    flows: HashMap<FlowKey, FlowWindow>,
    duplicates: u64,
    accepted: u64,
}

impl DedupTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival of `(flow, seq)`.
    ///
    /// Returns `true` if this is the **first** copy (process it), `false`
    /// if it is a duplicate (drop it).
    pub fn first_sighting(&mut self, flow: FlowKey, seq: u64) -> bool {
        let dup = self
            .flows
            .entry(flow)
            .or_insert_with(FlowWindow::new)
            .test_and_set(seq);
        if dup {
            self.duplicates += 1;
        } else {
            self.accepted += 1;
        }
        !dup
    }

    /// Total duplicates suppressed.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Total first copies accepted.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of flows with live windows.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Forgets a flow's window (e.g. when the flow closes).
    pub fn forget(&mut self, flow: &FlowKey) {
        self.flows.remove(flow);
    }

    /// Forgets every flow window whose ingress or unicast destination is
    /// `node` (membership-layer eviction of a departed member's state).
    /// Group-addressed windows are kept: the flow's surviving members still
    /// need duplicate suppression.
    pub fn forget_endpoint(&mut self, node: son_topo::NodeId) {
        self.flows.retain(|k, _| {
            k.src.node != node
                && !matches!(k.dst, crate::addr::DestKey::Unicast(a) if a.node == node)
        });
    }
}

impl son_obs::MemFootprint for DedupTable {
    fn footprint_bytes(&self) -> usize {
        use son_obs::footprint::{hashmap_bytes, vec_bytes};
        hashmap_bytes(&self.flows)
            + self
                .flows
                .values()
                .map(|w| vec_bytes(&w.bits))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Destination, GroupId, OverlayAddr};
    use son_topo::NodeId;

    fn flow(n: usize) -> FlowKey {
        FlowKey::new(
            OverlayAddr::new(NodeId(n), 1),
            Destination::Multicast(GroupId(0)),
        )
    }

    #[test]
    fn first_copy_accepted_second_dropped() {
        let mut t = DedupTable::new();
        assert!(t.first_sighting(flow(0), 1));
        assert!(!t.first_sighting(flow(0), 1));
        assert!(!t.first_sighting(flow(0), 1));
        assert_eq!(t.accepted(), 1);
        assert_eq!(t.duplicates(), 2);
    }

    #[test]
    fn flows_are_independent() {
        let mut t = DedupTable::new();
        assert!(t.first_sighting(flow(0), 5));
        assert!(t.first_sighting(flow(1), 5));
        assert_eq!(t.flow_count(), 2);
    }

    #[test]
    fn out_of_order_within_window_is_tracked_exactly() {
        let mut t = DedupTable::new();
        assert!(t.first_sighting(flow(0), 10));
        assert!(t.first_sighting(flow(0), 3)); // older but within window
        assert!(!t.first_sighting(flow(0), 3));
        assert!(t.first_sighting(flow(0), 7));
        assert!(!t.first_sighting(flow(0), 10));
    }

    #[test]
    fn far_future_seq_resets_window() {
        let mut t = DedupTable::new();
        assert!(t.first_sighting(flow(0), 1));
        assert!(t.first_sighting(flow(0), 1 + 10 * WINDOW));
        // The old seq is now out of the window: conservatively duplicate.
        assert!(!t.first_sighting(flow(0), 1));
    }

    #[test]
    fn window_slide_clears_reused_slots() {
        let mut t = DedupTable::new();
        assert!(t.first_sighting(flow(0), 0));
        // Slide forward exactly WINDOW: slot of seq 0 is reused by WINDOW.
        assert!(t.first_sighting(flow(0), WINDOW));
        assert!(!t.first_sighting(flow(0), WINDOW));
        // seq 1..WINDOW-1 were never seen; they are still within the window.
        assert!(t.first_sighting(flow(0), WINDOW - 1));
        assert!(t.first_sighting(flow(0), 1));
    }

    #[test]
    fn every_seq_exactly_once_under_random_redundancy() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut t = DedupTable::new();
        let mut firsts = 0;
        // Deliver each of 500 seqs 1-4 times in shuffled bursts.
        let mut arrivals: Vec<u64> = Vec::new();
        for seq in 0..500u64 {
            for _ in 0..rng.gen_range(1..=4) {
                arrivals.push(seq);
            }
        }
        // Shuffle with bounded displacement so the window always covers.
        for i in 0..arrivals.len() {
            let j = (i + rng.gen_range(0..30)).min(arrivals.len() - 1);
            arrivals.swap(i, j);
        }
        for seq in arrivals {
            if t.first_sighting(flow(0), seq) {
                firsts += 1;
            }
        }
        assert_eq!(firsts, 500, "each payload processed exactly once");
    }

    #[test]
    fn forget_endpoint_sweeps_departed_node_windows() {
        let mut t = DedupTable::new();
        // flow(0): src node 0 multicast; a unicast flow to node 3; one from 3.
        let to3 = FlowKey::new(
            OverlayAddr::new(NodeId(1), 1),
            Destination::Unicast(OverlayAddr::new(NodeId(3), 2)),
        );
        let from3 = FlowKey::new(
            OverlayAddr::new(NodeId(3), 1),
            Destination::Unicast(OverlayAddr::new(NodeId(1), 2)),
        );
        t.first_sighting(flow(0), 1);
        t.first_sighting(to3, 1);
        t.first_sighting(from3, 1);
        assert_eq!(t.flow_count(), 3);
        t.forget_endpoint(NodeId(3));
        assert_eq!(t.flow_count(), 1, "both node-3 endpoint windows evicted");
        t.forget_endpoint(NodeId(9));
        assert_eq!(t.flow_count(), 1);
    }

    #[test]
    fn forget_drops_state() {
        let mut t = DedupTable::new();
        t.first_sighting(flow(0), 1);
        t.forget(&flow(0));
        assert_eq!(t.flow_count(), 0);
        // After forgetting, the same seq is new again.
        assert!(t.first_sighting(flow(0), 1));
    }
}
