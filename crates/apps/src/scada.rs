//! Monitoring and control of critical infrastructure (§V-B): SCADA with
//! intrusion-tolerant agreement over the overlay.
//!
//! "Certain critical infrastructure control systems, such as SCADA for the
//! power grid, require strict timeliness, on the order of 100-200ms for a
//! control command to be delivered and executed in response to received
//! monitoring data. For the control system to withstand compromises, this
//! 100-200ms can include the time to execute an intrusion-tolerant
//! agreement protocol." The paper flags this combination as "the subject of
//! current research"; this module implements the latency-envelope skeleton:
//! a signed-echo-broadcast agreement among `n = 3f + 1` control-center
//! replicas spread across the overlay.
//!
//! ## Protocol (per monitoring event)
//!
//! 1. A field unit multicasts the event to the replica group.
//! 2. The leader replica assigns a sequence number and multicasts
//!    `PROPOSE(seq, event)`.
//! 3. Every replica that sees a proposal multicasts `ECHO(seq, event)`.
//! 4. On `2f + 1` matching echoes a replica *commits* and multicasts the
//!    control command to the device group; devices act on the first copy.
//!
//! With authenticated messages (the overlay's per-node tags), `2f + 1`
//! quorums intersect in a correct replica, so no two correct replicas
//! commit different events for one sequence number even with `f` Byzantine
//! replicas echoing garbage. **Scope**: leader equivocation/failure needs a
//! view-change protocol, which the paper leaves as open research; here the
//! leader is correct and faults are `f` arbitrary non-leader replicas
//! (silent or equivocating), which is exactly what the timeliness question
//! needs — three authenticated rounds across the overlay.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::Bytes;
use son_netsim::link::PipeId;
use son_netsim::process::{Process, ProcessId};
use son_netsim::sim::Ctx;
use son_netsim::stats::Percentiles;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::node::CLIENT_IPC_DELAY;
use son_overlay::packet::{ClientOp, SessionEvent};
use son_overlay::{Destination, FlowSpec, GroupId, Wire};

/// Group every control-center replica joins.
pub const REPLICA_GROUP: GroupId = GroupId(120);
/// Group field devices join to receive committed commands.
pub const DEVICE_GROUP: GroupId = GroupId(121);
/// Group replicas join to receive field monitoring events.
pub const MONITOR_GROUP: GroupId = GroupId(122);

/// Per-packet processing charged for signature generation/verification.
///
/// §V-B: "the cryptography required to support intrusion tolerance today
/// becomes a barrier to timely message delivery as the size of the system
/// grows". RSA-2048 signing is ~0.5-1 ms on commodity hardware.
pub const CRYPTO_DELAY: SimDuration = SimDuration::from_micros(700);

/// How a compromised replica misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFault {
    /// Fully correct.
    None,
    /// Crashed / silent: sends nothing.
    Silent,
    /// Echoes a corrupted event id for every proposal (equivocation noise).
    Equivocate,
}

/// Agreement message encoding (rides in packet payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// A field monitoring event: `(event_id, originated_at_ns)`.
    Event(u64, u64),
    /// Leader proposal `(seq, event_id, originated_at_ns)`.
    Propose(u64, u64, u64),
    /// Replica echo `(seq, event_id, originated_at_ns, replica)`.
    Echo(u64, u64, u64, u16),
    /// Committed command `(seq, event_id, originated_at_ns)`.
    Command(u64, u64, u64),
}

impl Msg {
    /// Serializes to a compact binary payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut v = Vec::with_capacity(27);
        match *self {
            Msg::Event(e, t) => {
                v.push(0);
                v.extend_from_slice(&e.to_le_bytes());
                v.extend_from_slice(&t.to_le_bytes());
            }
            Msg::Propose(s, e, t) => {
                v.push(1);
                v.extend_from_slice(&s.to_le_bytes());
                v.extend_from_slice(&e.to_le_bytes());
                v.extend_from_slice(&t.to_le_bytes());
            }
            Msg::Echo(s, e, t, r) => {
                v.push(2);
                v.extend_from_slice(&s.to_le_bytes());
                v.extend_from_slice(&e.to_le_bytes());
                v.extend_from_slice(&t.to_le_bytes());
                v.extend_from_slice(&r.to_le_bytes());
            }
            Msg::Command(s, e, t) => {
                v.push(3);
                v.extend_from_slice(&s.to_le_bytes());
                v.extend_from_slice(&e.to_le_bytes());
                v.extend_from_slice(&t.to_le_bytes());
            }
        }
        Bytes::from(v)
    }

    /// Parses a payload; `None` if malformed.
    #[must_use]
    pub fn decode(b: &[u8]) -> Option<Msg> {
        let u64at = |i: usize| -> Option<u64> {
            b.get(i..i + 8)
                .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
        };
        match *b.first()? {
            0 => Some(Msg::Event(u64at(1)?, u64at(9)?)),
            1 => Some(Msg::Propose(u64at(1)?, u64at(9)?, u64at(17)?)),
            2 => Some(Msg::Echo(
                u64at(1)?,
                u64at(9)?,
                u64at(17)?,
                u16::from_le_bytes(b.get(25..27)?.try_into().expect("2 bytes")),
            )),
            3 => Some(Msg::Command(u64at(1)?, u64at(9)?, u64at(17)?)),
            _ => None,
        }
    }
}

const FLOW_REPLICAS: u32 = 1;
const FLOW_DEVICES: u32 = 2;

/// Configuration of one control-center replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The overlay daemon to attach to.
    pub daemon: ProcessId,
    /// Virtual port.
    pub port: u16,
    /// This replica's index (`0` is the leader).
    pub index: u16,
    /// Total number of replicas (`n = 3f + 1`).
    pub n: u16,
    /// Fault behaviour.
    pub fault: ReplicaFault,
    /// Services for replica-to-replica traffic (flooding + auth
    /// recommended).
    pub spec: FlowSpec,
}

#[derive(Debug, Default)]
struct SlotState {
    event: Option<(u64, u64)>,
    echoes: HashSet<u16>,
    committed: bool,
}

/// A control-center replica running the agreement protocol.
#[derive(Debug)]
pub struct Replica {
    config: ReplicaConfig,
    next_seq: u64,
    /// Events already proposed (leader only; idempotence under multicast).
    proposed: HashSet<u64>,
    slots: BTreeMap<u64, SlotState>,
    /// Commit latency from event origination, ms (this replica's view).
    pub commit_latency_ms: Percentiles,
    /// Commands committed.
    pub committed: u64,
    /// Pending crypto work (signature delays), token -> message to send.
    pending: HashMap<u64, (u32, Msg)>,
    next_token: u64,
}

impl Replica {
    /// Creates a replica.
    #[must_use]
    pub fn new(config: ReplicaConfig) -> Self {
        Replica {
            config,
            next_seq: 0,
            proposed: HashSet::new(),
            slots: BTreeMap::new(),
            commit_latency_ms: Percentiles::new(),
            committed: 0,
            pending: HashMap::new(),
            next_token: 0,
        }
    }

    /// The quorum size `2f + 1` for `n = 3f + 1`.
    #[must_use]
    pub fn quorum(&self) -> usize {
        let f = usize::from(self.config.n.saturating_sub(1)) / 3;
        2 * f + 1
    }

    fn send_after_crypto(&mut self, ctx: &mut Ctx<'_, Wire>, flow: u32, msg: Msg) {
        // Signing costs CRYPTO_DELAY before the message leaves.
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (flow, msg));
        ctx.set_timer(CRYPTO_DELAY, token);
    }

    fn on_agreement_msg(&mut self, ctx: &mut Ctx<'_, Wire>, msg: Msg) {
        if self.config.fault == ReplicaFault::Silent {
            return;
        }
        match msg {
            Msg::Event(event_id, t) => {
                // Leader proposes each event exactly once.
                if self.config.index == 0 && self.proposed.insert(event_id) {
                    self.next_seq += 1;
                    self.send_after_crypto(
                        ctx,
                        FLOW_REPLICAS,
                        Msg::Propose(self.next_seq, event_id, t),
                    );
                }
            }
            Msg::Propose(seq, event_id, t) => {
                let (event_id, t) = if self.config.fault == ReplicaFault::Equivocate {
                    (event_id ^ 0xdead_beef, t) // corrupted echo
                } else {
                    (event_id, t)
                };
                let slot = self.slots.entry(seq).or_default();
                if slot.event.is_none() {
                    slot.event = Some((event_id, t));
                    let me = self.config.index;
                    self.send_after_crypto(ctx, FLOW_REPLICAS, Msg::Echo(seq, event_id, t, me));
                }
            }
            Msg::Echo(seq, event_id, t, replica) => {
                if replica >= self.config.n {
                    return; // not a valid replica id
                }
                let quorum = self.quorum();
                let me = self.config.index;
                let mut echo_back = false;
                let mut commit: Option<(u64, u64)> = None;
                {
                    let slot = self.slots.entry(seq).or_default();
                    // Echo verification: count only echoes matching the
                    // proposal we echoed ourselves (authenticated senders).
                    match slot.event {
                        Some((e, _)) if e == event_id => {
                            slot.echoes.insert(replica);
                        }
                        None => {
                            // Echo raced ahead of the proposal: adopt it
                            // tentatively; quorum intersection keeps it safe.
                            slot.event = Some((event_id, t));
                            slot.echoes.insert(replica);
                            echo_back = true;
                        }
                        _ => return, // mismatched echo (equivocation noise)
                    }
                    if !slot.committed && slot.echoes.len() >= quorum {
                        slot.committed = true;
                        commit = slot.event;
                    }
                }
                if echo_back {
                    self.send_after_crypto(ctx, FLOW_REPLICAS, Msg::Echo(seq, event_id, t, me));
                }
                if let Some((e, t0)) = commit {
                    self.committed += 1;
                    let now = ctx.now().as_nanos();
                    self.commit_latency_ms
                        .record((now.saturating_sub(t0)) as f64 / 1e6);
                    self.send_after_crypto(ctx, FLOW_DEVICES, Msg::Command(seq, e, t0));
                }
            }
            Msg::Command(..) => { /* replicas ignore device traffic */ }
        }
    }
}

impl Process<Wire> for Replica {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let daemon = self.config.daemon;
        let send = |ctx: &mut Ctx<'_, Wire>, op| {
            ctx.send_direct(daemon, CLIENT_IPC_DELAY, Wire::FromClient(op));
        };
        send(
            ctx,
            ClientOp::Connect {
                port: self.config.port,
            },
        );
        send(ctx, ClientOp::Join(REPLICA_GROUP));
        send(ctx, ClientOp::Join(MONITOR_GROUP));
        send(
            ctx,
            ClientOp::OpenFlow {
                local_flow: FLOW_REPLICAS,
                dst: Destination::Multicast(REPLICA_GROUP),
                spec: self.config.spec,
            },
        );
        send(
            ctx,
            ClientOp::OpenFlow {
                local_flow: FLOW_DEVICES,
                dst: Destination::Multicast(DEVICE_GROUP),
                spec: self.config.spec,
            },
        );
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        _from: ProcessId,
        _pipe: Option<PipeId>,
        msg: Wire,
    ) {
        let Wire::ToClient(SessionEvent::Deliver { payload, .. }) = msg else {
            return;
        };
        // Crypto verification cost is charged on the send side lump sum;
        // decoding is free in the simulator.
        if let Some(m) = Msg::decode(&payload) {
            self.on_agreement_msg(ctx, m);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, token: u64) {
        if let Some((flow, msg)) = self.pending.remove(&token) {
            let payload = msg.encode();
            ctx.send_direct(
                self.config.daemon,
                CLIENT_IPC_DELAY,
                Wire::FromClient(ClientOp::Send {
                    local_flow: flow,
                    size: payload.len() + 256, // signature bytes on the wire
                    payload,
                }),
            );
        }
    }
}

/// A field device: receives committed commands, acts on the first copy of
/// each sequence number, and records event-to-actuation latency.
#[derive(Debug)]
pub struct Device {
    daemon: ProcessId,
    port: u16,
    /// Event-to-command latency per unique command, ms.
    pub latency_ms: Percentiles,
    /// First-copy arrival per sequence number.
    pub commands: BTreeMap<u64, SimTime>,
    /// Redundant command copies ignored.
    pub duplicate_copies: u64,
}

impl Device {
    /// Creates a device attached to `daemon`.
    #[must_use]
    pub fn new(daemon: ProcessId, port: u16) -> Self {
        Device {
            daemon,
            port,
            latency_ms: Percentiles::new(),
            commands: BTreeMap::new(),
            duplicate_copies: 0,
        }
    }
}

impl Process<Wire> for Device {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        ctx.send_direct(
            self.daemon,
            CLIENT_IPC_DELAY,
            Wire::FromClient(ClientOp::Connect { port: self.port }),
        );
        ctx.send_direct(
            self.daemon,
            CLIENT_IPC_DELAY,
            Wire::FromClient(ClientOp::Join(DEVICE_GROUP)),
        );
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        _from: ProcessId,
        _pipe: Option<PipeId>,
        msg: Wire,
    ) {
        let Wire::ToClient(SessionEvent::Deliver { payload, .. }) = msg else {
            return;
        };
        let Some(Msg::Command(seq, _event, t0)) = Msg::decode(&payload) else {
            return;
        };
        if self.commands.contains_key(&seq) {
            self.duplicate_copies += 1;
            return;
        }
        self.commands.insert(seq, ctx.now());
        self.latency_ms
            .record((ctx.now().as_nanos().saturating_sub(t0)) as f64 / 1e6);
    }
}

/// A field unit that multicasts monitoring events at a fixed rate; the
/// event payload carries its origination time so end-to-end latency can be
/// measured at devices.
#[derive(Debug)]
pub struct FieldUnit {
    daemon: ProcessId,
    port: u16,
    interval: SimDuration,
    count: u64,
    sent: u64,
    spec: FlowSpec,
}

impl FieldUnit {
    /// Creates a field unit emitting `count` events every `interval`.
    #[must_use]
    pub fn new(
        daemon: ProcessId,
        port: u16,
        interval: SimDuration,
        count: u64,
        spec: FlowSpec,
    ) -> Self {
        FieldUnit {
            daemon,
            port,
            interval,
            count,
            sent: 0,
            spec,
        }
    }

    /// Events emitted so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Process<Wire> for FieldUnit {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        ctx.send_direct(
            self.daemon,
            CLIENT_IPC_DELAY,
            Wire::FromClient(ClientOp::Connect { port: self.port }),
        );
        ctx.send_direct(
            self.daemon,
            CLIENT_IPC_DELAY,
            Wire::FromClient(ClientOp::OpenFlow {
                local_flow: 1,
                dst: Destination::Multicast(MONITOR_GROUP),
                spec: self.spec,
            }),
        );
        ctx.set_timer(SimDuration::from_secs(1), 0);
    }

    fn on_message(&mut self, _: &mut Ctx<'_, Wire>, _: ProcessId, _: Option<PipeId>, _: Wire) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, _token: u64) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        let payload = Msg::Event(self.sent, ctx.now().as_nanos()).encode();
        ctx.send_direct(
            self.daemon,
            CLIENT_IPC_DELAY,
            Wire::FromClient(ClientOp::Send {
                local_flow: 1,
                size: payload.len() + 64,
                payload,
            }),
        );
        ctx.set_timer(self.interval, 0);
    }
}

/// The flow spec recommended for agreement traffic: constrained flooding
/// (survives compromised overlay nodes) with authentication.
#[must_use]
pub fn agreement_spec() -> FlowSpec {
    FlowSpec::best_effort().with_routing(son_overlay::RoutingService::SourceBased(
        son_overlay::SourceRoute::ConstrainedFlooding,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_netsim::sim::Simulation;
    use son_overlay::builder::OverlayBuilder;
    use son_topo::NodeId;

    #[test]
    fn msg_encoding_round_trips() {
        for msg in [
            Msg::Event(7, 123),
            Msg::Propose(1, 7, 123),
            Msg::Echo(1, 7, 123, 3),
            Msg::Command(1, 7, 123),
        ] {
            assert_eq!(Msg::decode(&msg.encode()), Some(msg));
        }
        assert_eq!(Msg::decode(&[]), None);
        assert_eq!(Msg::decode(&[9, 0, 0]), None);
        assert_eq!(Msg::decode(&[2, 1]), None, "truncated echo");
    }

    /// n=4 replicas on a 4-node overlay, field unit and device on the ends.
    fn scada_sim(
        faults: [ReplicaFault; 4],
    ) -> (Simulation<Wire>, Vec<ProcessId>, ProcessId, ProcessId) {
        let mut topo = son_topo::Graph::new(6);
        // replicas at 1..=4 in a diamond-ish mesh; field unit at 0, device at 5.
        for (a, b) in [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (3, 5),
            (4, 5),
            (1, 4),
            (2, 3),
        ] {
            topo.add_edge(NodeId(a), NodeId(b), 5.0);
        }
        let config = son_overlay::NodeConfig {
            auth_enabled: true,
            ..Default::default()
        };
        let mut sim: Simulation<Wire> = Simulation::new(77);
        let overlay = OverlayBuilder::new(topo)
            .node_config(config)
            .build(&mut sim);
        let replicas: Vec<ProcessId> = (0..4u16)
            .map(|i| {
                sim.add_process(Replica::new(ReplicaConfig {
                    daemon: overlay.daemon(NodeId(1 + usize::from(i))),
                    port: 300,
                    index: i,
                    n: 4,
                    fault: faults[usize::from(i)],
                    spec: agreement_spec(),
                }))
            })
            .collect();
        let device = sim.add_process(Device::new(overlay.daemon(NodeId(5)), 301));
        let unit = sim.add_process(FieldUnit::new(
            overlay.daemon(NodeId(0)),
            302,
            SimDuration::from_millis(200),
            20,
            agreement_spec(),
        ));
        (sim, replicas, device, unit)
    }

    #[test]
    fn all_correct_commits_and_actuates_every_event() {
        let (mut sim, replicas, device, unit) = scada_sim([ReplicaFault::None; 4]);
        sim.run_until(SimTime::from_secs(10));
        let sent = sim.proc_ref::<FieldUnit>(unit).unwrap().sent();
        assert_eq!(sent, 20);
        for &r in &replicas {
            let rep = sim.proc_ref::<Replica>(r).unwrap();
            assert_eq!(
                rep.committed, 20,
                "every correct replica commits every event"
            );
        }
        let dev = sim.proc_ref::<Device>(device).unwrap();
        assert_eq!(dev.commands.len(), 20);
        assert!(
            dev.duplicate_copies > 0,
            "other replicas' copies arrive and are ignored"
        );
        let lat = dev.latency_ms.clone();
        assert!(
            lat.max().unwrap() < 100.0,
            "well inside the SCADA budget on 5ms links"
        );
    }

    #[test]
    fn tolerates_one_silent_replica() {
        let (mut sim, _, device, _) = scada_sim([
            ReplicaFault::None,
            ReplicaFault::Silent,
            ReplicaFault::None,
            ReplicaFault::None,
        ]);
        sim.run_until(SimTime::from_secs(10));
        let dev = sim.proc_ref::<Device>(device).unwrap();
        assert_eq!(dev.commands.len(), 20, "f=1 fault is masked");
    }

    #[test]
    fn tolerates_one_equivocating_replica() {
        let (mut sim, replicas, device, _) = scada_sim([
            ReplicaFault::None,
            ReplicaFault::Equivocate,
            ReplicaFault::None,
            ReplicaFault::None,
        ]);
        sim.run_until(SimTime::from_secs(10));
        let dev = sim.proc_ref::<Device>(device).unwrap();
        assert_eq!(dev.commands.len(), 20);
        // Correct replicas' commits agree on the event ids (safety).
        let correct: Vec<u64> = replicas
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 1)
            .map(|(_, &r)| sim.proc_ref::<Replica>(r).unwrap().committed)
            .collect();
        assert!(correct.iter().all(|&c| c == 20), "{correct:?}");
    }

    #[test]
    fn two_silent_replicas_break_liveness_not_safety() {
        let (mut sim, _, device, _) = scada_sim([
            ReplicaFault::None,
            ReplicaFault::Silent,
            ReplicaFault::Silent,
            ReplicaFault::None,
        ]);
        sim.run_until(SimTime::from_secs(10));
        let dev = sim.proc_ref::<Device>(device).unwrap();
        // Quorum is 3 but only 2 replicas speak: nothing commits (and
        // nothing wrong is ever actuated).
        assert_eq!(dev.commands.len(), 0, "no quorum, no commands");
    }
}
