//! # son-apps — applications over the structured overlay
//!
//! The application classes the paper uses to motivate the framework:
//!
//! * [`video`] — broadcast-quality video transport (§III-A) and live video
//!   under a one-way deadline (§IV-A), with decoder-level quality scoring.
//! * [`monitoring`] — monitoring and control of global clouds over overlay
//!   multicast (§III-B), with intrusion-tolerant variants (§IV-B).
//! * [`manipulation`] — real-time remote manipulation at a 65 ms one-way
//!   deadline (§V-A): single-strike recovery over dissemination graphs.
//! * [`transcode`] — compound flows with in-overlay transcoding and
//!   facility failover (§V-C).
//! * [`scada`] — critical-infrastructure control with intrusion-tolerant
//!   agreement among control-center replicas over the overlay (§V-B).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod manipulation;
pub mod monitoring;
pub mod scada;
pub mod transcode;
pub mod video;
