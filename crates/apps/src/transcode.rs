//! Compound flows (§V-C): in-network transformation of streams.
//!
//! "A video stream of a live sports event is sent from the stadium as a
//! broadcast-quality MPEG transport stream on the overlay and delivered to
//! several sports network destinations... One of the destinations of the
//! transport stream can be a transcoding facility in the cloud that
//! transcodes the signal to different formats and quality levels and
//! transports it to CDNs and social media sites." Failures "may lead to
//! rerouting that can include the selection of a transcoding facility at a
//! different location".
//!
//! [`TranscoderProcess`] is an overlay client that consumes an input group,
//! applies a processing delay and a size transformation, and republishes
//! into an output group. Senders address the *anycast* input group, so when
//! the active facility fails (leaves), the ingress re-resolves to the next
//! facility automatically.

use std::collections::HashMap;

use bytes::Bytes;
use son_netsim::link::PipeId;
use son_netsim::process::{Process, ProcessId};
use son_netsim::sim::Ctx;
use son_netsim::stats::Percentiles;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::node::CLIENT_IPC_DELAY;
use son_overlay::packet::{ClientOp, SessionEvent};
use son_overlay::{Destination, FlowSpec, GroupId, Wire};

/// The anycast group transcoding facilities serve.
pub const TRANSCODE_GROUP: GroupId = GroupId(110);
/// The multicast group transcoded output flows into.
pub const OUTPUT_GROUP: GroupId = GroupId(111);

/// Configuration of one transcoding facility.
#[derive(Debug, Clone)]
pub struct TranscoderConfig {
    /// The overlay daemon this facility attaches to.
    pub daemon: ProcessId,
    /// Virtual port at that daemon.
    pub port: u16,
    /// Group the input stream is addressed to (anycast).
    pub input_group: GroupId,
    /// Group the transcoded output is published to (multicast).
    pub output_group: GroupId,
    /// Output size = input size × `scale` (e.g. 0.25 for a mobile rendition).
    pub scale: f64,
    /// Per-packet processing latency in the facility.
    pub processing: SimDuration,
    /// Services selected for the output leg.
    pub output_spec: FlowSpec,
    /// If set, the facility fails (leaves the input group) at this time.
    pub fail_at: Option<SimTime>,
}

const FLOW_OUT: u32 = 1;
const TOKEN_FAIL: u64 = u64::MAX;

/// An in-overlay transcoding facility.
#[derive(Debug)]
pub struct TranscoderProcess {
    config: TranscoderConfig,
    /// Input packets accepted for processing.
    pub processed: u64,
    /// Output packets emitted.
    pub emitted: u64,
    /// Latency of the input leg as observed at this facility, ms.
    pub input_latency_ms: Percentiles,
    /// Whether the facility is still serving.
    pub active: bool,
    pending: HashMap<u64, usize>,
    next_token: u64,
}

impl TranscoderProcess {
    /// Creates a facility from its configuration.
    #[must_use]
    pub fn new(config: TranscoderConfig) -> Self {
        TranscoderProcess {
            config,
            processed: 0,
            emitted: 0,
            input_latency_ms: Percentiles::new(),
            active: true,
            pending: HashMap::new(),
            next_token: 0,
        }
    }

    fn daemon_send(&self, ctx: &mut Ctx<'_, Wire>, op: ClientOp) {
        ctx.send_direct(self.config.daemon, CLIENT_IPC_DELAY, Wire::FromClient(op));
    }
}

impl Process<Wire> for TranscoderProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        self.daemon_send(
            ctx,
            ClientOp::Connect {
                port: self.config.port,
            },
        );
        self.daemon_send(ctx, ClientOp::Join(self.config.input_group));
        self.daemon_send(
            ctx,
            ClientOp::OpenFlow {
                local_flow: FLOW_OUT,
                dst: Destination::Multicast(self.config.output_group),
                spec: self.config.output_spec,
            },
        );
        if let Some(at) = self.config.fail_at {
            ctx.set_timer(at.saturating_since(ctx.now()), TOKEN_FAIL);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        _from: ProcessId,
        _pipe: Option<PipeId>,
        msg: Wire,
    ) {
        let Wire::ToClient(SessionEvent::Deliver {
            size, created_at, ..
        }) = msg
        else {
            return;
        };
        if !self.active {
            return;
        }
        self.processed += 1;
        self.input_latency_ms
            .record(ctx.now().saturating_since(created_at).as_millis_f64());
        let out_size = ((size as f64 * self.config.scale).round() as usize).max(1);
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, out_size);
        ctx.set_timer(self.config.processing, token);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, token: u64) {
        if token == TOKEN_FAIL {
            self.active = false;
            self.daemon_send(ctx, ClientOp::Leave(self.config.input_group));
            return;
        }
        if let Some(size) = self.pending.remove(&token) {
            if self.active {
                self.emitted += 1;
                self.daemon_send(
                    ctx,
                    ClientOp::Send {
                        local_flow: FLOW_OUT,
                        size,
                        payload: Bytes::new(),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_netsim::sim::Simulation;
    use son_overlay::builder::{chain_topology, OverlayBuilder};
    use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
    use son_overlay::LinkService;
    use son_topo::NodeId;

    /// Stadium at node 0, facilities at nodes 1 and 2, CDN at node 3.
    fn compound_sim(fail_primary: bool) -> (Simulation<Wire>, ProcessId, ProcessId, ProcessId) {
        let mut sim: Simulation<Wire> = Simulation::new(33);
        let overlay = OverlayBuilder::new(chain_topology(4, 10.0)).build(&mut sim);
        let mk = |daemon, port, fail_at| TranscoderConfig {
            daemon,
            port,
            input_group: TRANSCODE_GROUP,
            output_group: OUTPUT_GROUP,
            scale: 0.25,
            processing: SimDuration::from_millis(15),
            output_spec: FlowSpec::reliable(),
            fail_at,
        };
        let primary = sim.add_process(TranscoderProcess::new(mk(
            overlay.daemon(NodeId(1)),
            150,
            fail_primary.then(|| SimTime::from_secs(4)),
        )));
        let backup = sim.add_process(TranscoderProcess::new(mk(
            overlay.daemon(NodeId(2)),
            150,
            None,
        )));
        let cdn = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(3)),
            port: 160,
            joins: vec![OUTPUT_GROUP],
            flows: vec![],
        }));
        let _stadium = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(0)),
            port: 140,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Anycast(TRANSCODE_GROUP),
                spec: FlowSpec::reliable().with_link(LinkService::Reliable),
                workload: Workload::Cbr {
                    size: 1316,
                    interval: SimDuration::from_millis(10),
                    count: 700,
                    start: SimTime::from_millis(500),
                },
            }],
        }));
        (sim, primary, backup, cdn)
    }

    #[test]
    fn compound_flow_transcodes_end_to_end() {
        let (mut sim, primary, backup, cdn) = compound_sim(false);
        sim.run_until(SimTime::from_secs(12));
        let p = sim.proc_ref::<TranscoderProcess>(primary).unwrap();
        assert_eq!(p.processed, 700, "anycast picked the nearest facility");
        assert_eq!(p.emitted, 700);
        assert!(p.input_latency_ms.mean().unwrap() < 15.0);
        let b = sim.proc_ref::<TranscoderProcess>(backup).unwrap();
        assert_eq!(b.processed, 0, "anycast goes to exactly one facility");
        let out = sim.proc_ref::<ClientProcess>(cdn).unwrap().sole_recv();
        assert_eq!(out.received, 700, "full transcoded stream reached the CDN");
    }

    #[test]
    fn facility_failure_fails_over_to_backup() {
        let (mut sim, primary, backup, cdn) = compound_sim(true);
        sim.run_until(SimTime::from_secs(12));
        let p = sim.proc_ref::<TranscoderProcess>(primary).unwrap();
        let b = sim.proc_ref::<TranscoderProcess>(backup).unwrap();
        assert!(!p.active);
        assert!(p.processed > 0, "primary served before failing");
        assert!(b.processed > 0, "backup took over after the failure");
        let out = sim.proc_ref::<ClientProcess>(cdn).unwrap();
        let total: u64 = out.recv.values().map(|r| r.received).sum();
        // The stream continues through the failover; a handful of packets
        // in flight during the switch may be lost (in-flight to the dead
        // facility), everything else flows.
        assert!(total >= 690, "failover lost too much: {total}");
    }

    #[test]
    fn output_is_downscaled() {
        let (mut sim, _primary, _backup, _cdn) = compound_sim(false);
        sim.run_until(SimTime::from_secs(12));
        // 1316 * 0.25 = 329.
        let counters = sim.counters();
        let _ = counters; // sizes are validated implicitly by pipe byte counters
                          // A focused check: the transform math.
        let out = ((1316f64 * 0.25).round() as usize).max(1);
        assert_eq!(out, 329);
    }
}
