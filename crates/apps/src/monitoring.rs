//! Resilient monitoring and control of global clouds (§III-B), with the
//! intrusion-tolerant variant (§IV-B).
//!
//! Monitoring is a fan-in of timely telemetry streams multicast to every
//! interested destination (displays, loggers, analysis engines); control is
//! a fan-out of commands that must arrive reliably. "Rather than needing to
//! connect each of many endpoints being monitored to each of several
//! destinations..., each endpoint simply connects to the overlay, joining or
//! sending to the relevant multicast groups."

use serde::{Deserialize, Serialize};
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::client::{ClientConfig, ClientFlow, FlowRecv, Workload};
use son_overlay::{Destination, FlowSpec, GroupId, LinkService, OverlayHandle, Priority};
use son_topo::NodeId;

/// The multicast group telemetry flows into.
pub const TELEMETRY_GROUP: GroupId = GroupId(100);
/// The multicast group control commands flow into.
pub const CONTROL_GROUP: GroupId = GroupId(101);

/// Ports used by the monitoring deployment.
const SENSOR_PORT: u16 = 200;
const OPERATOR_PORT: u16 = 201;
const CONTROLLER_PORT: u16 = 202;
const DEVICE_PORT: u16 = 203;

/// Telemetry flow: timely rather than fully reliable — priority messaging
/// when intrusion tolerance is required, best effort otherwise.
#[must_use]
pub fn telemetry_spec(intrusion_tolerant: bool) -> FlowSpec {
    let spec = FlowSpec::best_effort();
    if intrusion_tolerant {
        spec.with_link(LinkService::ItPriority)
            .with_priority(Priority::NORMAL)
    } else {
        spec
    }
}

/// Control flow: complete reliability, in order — IT-Reliable when
/// intrusion tolerance is required, Reliable Data Link otherwise.
#[must_use]
pub fn control_spec(intrusion_tolerant: bool) -> FlowSpec {
    if intrusion_tolerant {
        FlowSpec::reliable().with_link(LinkService::ItReliable)
    } else {
        FlowSpec::reliable()
    }
}

/// A sensor client: periodically multicasts telemetry readings.
#[must_use]
pub fn sensor(
    overlay: &OverlayHandle,
    at: NodeId,
    reading_size: usize,
    interval: SimDuration,
    duration: SimDuration,
    intrusion_tolerant: bool,
) -> ClientConfig {
    ClientConfig {
        daemon: overlay.daemon(at),
        port: SENSOR_PORT,
        joins: vec![], // senders need not join
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Multicast(TELEMETRY_GROUP),
            spec: telemetry_spec(intrusion_tolerant),
            workload: Workload::Cbr {
                size: reading_size,
                interval,
                count: (duration.as_secs_f64() / interval.as_secs_f64()) as u64,
                start: SimTime::from_millis(500),
            },
        }],
    }
}

/// An operator console / logger / analysis engine: joins the telemetry
/// group to receive every reading, and the control group to observe
/// commands.
#[must_use]
pub fn operator(overlay: &OverlayHandle, at: NodeId) -> ClientConfig {
    ClientConfig {
        daemon: overlay.daemon(at),
        port: OPERATOR_PORT,
        joins: vec![TELEMETRY_GROUP, CONTROL_GROUP],
        flows: vec![],
    }
}

/// A controller: multicasts control commands that devices must receive
/// reliably.
#[must_use]
pub fn controller(
    overlay: &OverlayHandle,
    at: NodeId,
    command_size: usize,
    interval: SimDuration,
    count: u64,
    intrusion_tolerant: bool,
) -> ClientConfig {
    ClientConfig {
        daemon: overlay.daemon(at),
        port: CONTROLLER_PORT,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 2,
            dst: Destination::Multicast(CONTROL_GROUP),
            spec: control_spec(intrusion_tolerant),
            workload: Workload::Cbr {
                size: command_size,
                interval,
                count,
                start: SimTime::from_secs(1),
            },
        }],
    }
}

/// A field device: joins the control group to receive commands.
#[must_use]
pub fn device(overlay: &OverlayHandle, at: NodeId) -> ClientConfig {
    ClientConfig {
        daemon: overlay.daemon(at),
        port: DEVICE_PORT,
        joins: vec![CONTROL_GROUP],
        flows: vec![],
    }
}

/// How a monitoring destination experienced one telemetry stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitoringReport {
    /// Readings delivered / readings sent.
    pub completeness: f64,
    /// Mean reading latency (freshness), ms.
    pub mean_freshness_ms: f64,
    /// 99th-percentile freshness, ms.
    pub p99_freshness_ms: f64,
    /// Longest interval with no reading arriving, ms (monitoring blindness).
    pub longest_blindness_ms: f64,
}

/// Scores one received telemetry stream.
///
/// # Panics
///
/// Panics if `sent` is zero.
#[must_use]
pub fn score_telemetry(recv: &FlowRecv, sent: u64) -> MonitoringReport {
    assert!(sent > 0, "no readings were sent");
    let mut latency = recv.latency_ms.clone();
    let blindness = recv
        .arrivals
        .windows(2)
        .map(|w| w[1].0.saturating_since(w[0].0).as_millis_f64())
        .fold(0.0f64, f64::max);
    MonitoringReport {
        completeness: recv.received as f64 / sent as f64,
        mean_freshness_ms: latency.mean().unwrap_or(f64::INFINITY),
        p99_freshness_ms: latency.quantile(0.99).unwrap_or(f64::INFINITY),
        longest_blindness_ms: blindness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_netsim::sim::Simulation;
    use son_overlay::builder::{chain_topology, OverlayBuilder};
    use son_overlay::client::ClientProcess;
    use son_overlay::Wire;

    #[test]
    fn specs_select_the_right_protocols() {
        assert_eq!(telemetry_spec(false).link, LinkService::BestEffort);
        assert_eq!(telemetry_spec(true).link, LinkService::ItPriority);
        assert_eq!(control_spec(false).link, LinkService::Reliable);
        assert!(control_spec(false).ordered);
        assert_eq!(control_spec(true).link, LinkService::ItReliable);
    }

    #[test]
    fn deployment_end_to_end() {
        // Sensors at both ends of a chain, operator in the middle,
        // controller at one end, device at the other.
        let mut sim: Simulation<Wire> = Simulation::new(21);
        let overlay = OverlayBuilder::new(chain_topology(3, 10.0)).build(&mut sim);
        let s1 = sensor(
            &overlay,
            NodeId(0),
            200,
            SimDuration::from_millis(100),
            SimDuration::from_secs(5),
            false,
        );
        let s2 = sensor(
            &overlay,
            NodeId(2),
            200,
            SimDuration::from_millis(100),
            SimDuration::from_secs(5),
            false,
        );
        let op = operator(&overlay, NodeId(1));
        let ctl = controller(
            &overlay,
            NodeId(0),
            100,
            SimDuration::from_millis(500),
            8,
            false,
        );
        let dev = device(&overlay, NodeId(2));
        let s1 = sim.add_process(ClientProcess::new(s1));
        let _s2 = sim.add_process(ClientProcess::new(s2));
        let op = sim.add_process(ClientProcess::new(op));
        let _ctl = sim.add_process(ClientProcess::new(ctl));
        let dev = sim.add_process(ClientProcess::new(dev));
        sim.run_until(SimTime::from_secs(8));

        // The operator hears both sensors (two flows) and the controller.
        let op_client = sim.proc_ref::<ClientProcess>(op).unwrap();
        assert_eq!(op_client.recv.len(), 3, "two telemetry flows + control");
        let sent = sim.proc_ref::<ClientProcess>(s1).unwrap().sent(1);
        let s1_flow = op_client
            .recv
            .iter()
            .find(|(k, _)| {
                k.src.node == NodeId(0) && k.dst() == Destination::Multicast(TELEMETRY_GROUP)
            })
            .map(|(_, r)| r)
            .unwrap();
        let report = score_telemetry(s1_flow, sent);
        assert_eq!(report.completeness, 1.0);
        assert!(report.mean_freshness_ms < 15.0);

        // The device received every command.
        let dev_client = sim.proc_ref::<ClientProcess>(dev).unwrap();
        assert_eq!(dev_client.sole_recv().received, 8);
    }

    #[test]
    fn intrusion_tolerant_variant_survives_a_blackhole() {
        use son_overlay::adversary::Behavior;
        use son_overlay::node::OverlayNode;
        use son_overlay::{RoutingService, SourceRoute};

        // Diamond overlay; the relay on the cheap path blackholes data.
        let mut topo = son_topo::Graph::new(4);
        topo.add_edge(NodeId(0), NodeId(1), 10.0);
        topo.add_edge(NodeId(1), NodeId(3), 10.0);
        topo.add_edge(NodeId(0), NodeId(2), 12.0);
        topo.add_edge(NodeId(2), NodeId(3), 12.0);
        let mut sim: Simulation<Wire> = Simulation::new(22);
        let overlay = OverlayBuilder::new(topo).build(&mut sim);
        sim.proc_mut::<OverlayNode>(overlay.daemon(NodeId(1)))
            .unwrap()
            .set_behavior(Behavior::Blackhole);

        // Sensor at 0, operator at 3, intrusion-tolerant telemetry over
        // constrained flooding.
        let mut cfg = sensor(
            &overlay,
            NodeId(0),
            128,
            SimDuration::from_millis(50),
            SimDuration::from_secs(5),
            true,
        );
        cfg.flows[0].spec = cfg.flows[0].spec.with_routing(RoutingService::SourceBased(
            SourceRoute::ConstrainedFlooding,
        ));
        let s = sim.add_process(ClientProcess::new(cfg));
        let op = sim.add_process(ClientProcess::new(operator(&overlay, NodeId(3))));
        sim.run_until(SimTime::from_secs(8));
        let sent = sim.proc_ref::<ClientProcess>(s).unwrap().sent(1);
        let op_client = sim.proc_ref::<ClientProcess>(op).unwrap();
        let flow = op_client.recv.values().next().cloned().unwrap_or_default();
        let report = score_telemetry(&flow, sent);
        assert_eq!(
            report.completeness, 1.0,
            "flooding routes around the blackhole"
        );
    }

    #[test]
    fn score_telemetry_blindness() {
        let mut r = FlowRecv::default();
        for (ms, seq) in [(100u64, 1u64), (200, 2), (900, 3)] {
            r.arrivals.push((SimTime::from_millis(ms), seq));
            r.latency_ms.record(10.0);
            r.received += 1;
        }
        let report = score_telemetry(&r, 4);
        assert!((report.completeness - 0.75).abs() < 1e-12);
        assert!((report.longest_blindness_ms - 700.0).abs() < 1e-9);
    }
}
