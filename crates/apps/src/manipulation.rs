//! Real-time remote manipulation (§V-A): remote robotic surgery /
//! ultrasound.
//!
//! "For interaction to feel natural..., the roundtrip latency must be no
//! more than about 130 ms, translating to a one-way latency requirement of
//! 65 ms. On the scale of a continent, where propagation delay may be around
//! 40 ms, this leaves only 20-25 ms of flexibility for buffering or recovery
//! of lost packets." The flow spec combines the single-strike predecessor
//! protocol \[6,7\] with dissemination-graph source routing \[2\].

use serde::{Deserialize, Serialize};
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::client::{FlowRecv, Workload};
use son_overlay::{FlowSpec, LinkService, RealtimeParams, RoutingService, SourceRoute};

/// The natural-interaction one-way deadline (§V-A).
pub const ONE_WAY_DEADLINE: SimDuration = SimDuration::from_millis(65);

/// A haptic/command stream's shape: small packets at high rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HapticProfile {
    /// Command/feedback payload bytes.
    pub packet_size: usize,
    /// Commands per second.
    pub rate_hz: u64,
}

impl HapticProfile {
    /// A typical haptic control loop: 500 Hz of 64-byte samples.
    #[must_use]
    pub fn standard() -> Self {
        HapticProfile {
            packet_size: 64,
            rate_hz: 500,
        }
    }

    /// The workload carrying `duration` of this stream.
    #[must_use]
    pub fn workload(&self, start: SimTime, duration: SimDuration) -> Workload {
        Workload::Cbr {
            size: self.packet_size,
            interval: SimDuration::from_secs_f64(1.0 / self.rate_hz as f64),
            count: (duration.as_secs_f64() * self.rate_hz as f64) as u64,
            start,
        }
    }
}

/// The flow spec for remote manipulation: single-strike recovery within the
/// per-hop slack plus a dissemination-graph stamp for targeted redundancy.
///
/// `hop_budget` is the recovery slack available per hop (≈ deadline minus
/// path propagation, divided across hops); §V-A gives 20–25 ms end to end.
#[must_use]
pub fn manipulation_spec(hop_budget: SimDuration) -> FlowSpec {
    FlowSpec::best_effort()
        .with_routing(RoutingService::SourceBased(SourceRoute::DisseminationGraph))
        .with_link(LinkService::Realtime(RealtimeParams::single_strike(
            hop_budget,
        )))
        .with_ordered(true)
        .with_deadline(ONE_WAY_DEADLINE)
}

/// Ablation: the same deadline with plain single-path routing.
#[must_use]
pub fn single_path_spec(hop_budget: SimDuration) -> FlowSpec {
    FlowSpec::best_effort()
        .with_link(LinkService::Realtime(RealtimeParams::single_strike(
            hop_budget,
        )))
        .with_ordered(true)
        .with_deadline(ONE_WAY_DEADLINE)
}

/// Ablation: uniform redundancy via k node-disjoint paths.
#[must_use]
pub fn disjoint_paths_spec(k: u8, hop_budget: SimDuration) -> FlowSpec {
    manipulation_spec(hop_budget)
        .with_routing(RoutingService::SourceBased(SourceRoute::DisjointPaths(k)))
}

/// Ablation: `k` cheapest (possibly overlapping) paths — cheaper than
/// disjoint but shares fate where routes overlap.
#[must_use]
pub fn overlapping_paths_spec(k: u8, hop_budget: SimDuration) -> FlowSpec {
    manipulation_spec(hop_budget).with_routing(RoutingService::SourceBased(
        SourceRoute::OverlappingPaths(k),
    ))
}

/// Upper bound: time-constrained flooding.
#[must_use]
pub fn flooding_spec(hop_budget: SimDuration) -> FlowSpec {
    manipulation_spec(hop_budget).with_routing(RoutingService::SourceBased(
        SourceRoute::ConstrainedFlooding,
    ))
}

/// How the manipulation session felt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManipulationReport {
    /// Fraction of commands delivered within the one-way deadline,
    /// counting losses as misses — the paper's headline metric.
    pub on_time_frac: f64,
    /// Mean one-way latency of delivered commands, ms.
    pub mean_latency_ms: f64,
    /// Worst delivered latency, ms.
    pub max_latency_ms: f64,
    /// Commands lost outright.
    pub lost: u64,
}

/// Scores a command stream against the deadline.
///
/// # Panics
///
/// Panics if `sent` is zero.
#[must_use]
pub fn score(recv: &FlowRecv, sent: u64) -> ManipulationReport {
    assert!(sent > 0, "no commands sent");
    let latency = recv.latency_ms.clone();
    let within = latency
        .fraction_within(ONE_WAY_DEADLINE.as_millis_f64())
        .unwrap_or(0.0);
    ManipulationReport {
        on_time_frac: within * recv.received as f64 / sent as f64,
        mean_latency_ms: latency.mean().unwrap_or(f64::INFINITY),
        max_latency_ms: latency.max().unwrap_or(f64::INFINITY),
        lost: sent.saturating_sub(recv.received),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_profile_cadence() {
        let p = HapticProfile::standard();
        match p.workload(SimTime::ZERO, SimDuration::from_secs(2)) {
            Workload::Cbr {
                interval, count, ..
            } => {
                assert_eq!(interval, SimDuration::from_millis(2));
                assert_eq!(count, 1000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn specs_wire_the_right_services() {
        let budget = SimDuration::from_millis(20);
        let m = manipulation_spec(budget);
        assert!(matches!(
            m.routing,
            RoutingService::SourceBased(SourceRoute::DisseminationGraph)
        ));
        assert_eq!(m.deadline, Some(ONE_WAY_DEADLINE));
        match m.link {
            LinkService::Realtime(p) => {
                assert_eq!(p.n_requests, 1);
                assert_eq!(p.m_retransmissions, 1);
                assert_eq!(p.budget, budget);
            }
            other => panic!("unexpected link service {other:?}"),
        }
        assert!(matches!(
            single_path_spec(budget).routing,
            RoutingService::LinkState
        ));
        assert!(matches!(
            disjoint_paths_spec(3, budget).routing,
            RoutingService::SourceBased(SourceRoute::DisjointPaths(3))
        ));
        assert!(matches!(
            flooding_spec(budget).routing,
            RoutingService::SourceBased(SourceRoute::ConstrainedFlooding)
        ));
    }

    #[test]
    fn score_counts_losses_as_misses() {
        let mut r = FlowRecv::default();
        for lat in [10.0, 20.0, 70.0] {
            r.latency_ms.record(lat);
            r.received += 1;
        }
        // 4 sent, 3 delivered, 2 of them on time => 50% on-time.
        let report = score(&r, 4);
        assert!((report.on_time_frac - 0.5).abs() < 1e-12);
        assert_eq!(report.lost, 1);
        assert!((report.max_latency_ms - 70.0).abs() < 1e-12);
    }
}
