//! Broadcast-quality video transport (§III-A) and live video (§IV-A).
//!
//! Video is modelled at the transport level: a constant-cadence packet
//! stream whose quality is judged by what a decoder cares about — every
//! packet, in order, on time, without freezes. [`VideoProfile`] generates
//! the client workload and [`score`] turns a client's receive log into a
//! [`VideoQualityReport`].

use serde::{Deserialize, Serialize};
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::client::{FlowRecv, Workload};
use son_overlay::{FlowSpec, RealtimeParams};

/// A video stream's transport-level shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoProfile {
    /// Stream bitrate in bits per second.
    pub bitrate_bps: u64,
    /// Transport packet payload size in bytes.
    pub packet_size: usize,
}

impl VideoProfile {
    /// Standard-definition broadcast contribution feed: 8 Mbit/s in 1316-byte
    /// MPEG-TS-style packets (7 × 188 bytes).
    #[must_use]
    pub fn broadcast_sd() -> Self {
        VideoProfile {
            bitrate_bps: 8_000_000,
            packet_size: 1316,
        }
    }

    /// High-definition feed: 20 Mbit/s.
    #[must_use]
    pub fn broadcast_hd() -> Self {
        VideoProfile {
            bitrate_bps: 20_000_000,
            packet_size: 1316,
        }
    }

    /// A lighter proxy/preview stream.
    #[must_use]
    pub fn proxy() -> Self {
        VideoProfile {
            bitrate_bps: 1_000_000,
            packet_size: 1316,
        }
    }

    /// The inter-packet gap this profile produces.
    #[must_use]
    pub fn packet_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.packet_size as f64 * 8.0 / self.bitrate_bps as f64)
    }

    /// Number of packets in `duration` of stream.
    #[must_use]
    pub fn packets_in(&self, duration: SimDuration) -> u64 {
        (duration.as_secs_f64() / self.packet_interval().as_secs_f64()).floor() as u64
    }

    /// The CBR workload carrying `duration` of this stream starting at
    /// `start`.
    #[must_use]
    pub fn workload(&self, start: SimTime, duration: SimDuration) -> Workload {
        Workload::Cbr {
            size: self.packet_size,
            interval: self.packet_interval(),
            count: self.packets_in(duration),
            start,
        }
    }

    /// The flow spec for stored/broadcast-quality transport: fully reliable,
    /// in order, hop-by-hop recovery (§III-A).
    #[must_use]
    pub fn broadcast_spec(&self) -> FlowSpec {
        FlowSpec::reliable()
    }

    /// The flow spec for *live* transport under a one-way deadline:
    /// NM-Strikes with ordered, deadline-bound delivery (§IV-A).
    #[must_use]
    pub fn live_spec(&self, deadline: SimDuration, params: RealtimeParams) -> FlowSpec {
        FlowSpec::live_video(deadline).with_link(son_overlay::LinkService::Realtime(params))
    }
}

/// A GOP (group-of-pictures) structure for variable-bitrate video: large I
/// frames followed by smaller P/B frames, each frame split into
/// transport-size packets. VBR streams stress schedulers and recovery
/// differently from CBR: loss of an I-frame burst hurts more, and the
/// instantaneous rate swings by the I/P ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GopProfile {
    /// Frames per second.
    pub fps: u32,
    /// Frames per GOP (one I frame per GOP).
    pub gop_len: u32,
    /// I-frame size in bytes.
    pub i_frame_bytes: usize,
    /// P-frame size in bytes.
    pub p_frame_bytes: usize,
    /// Transport packet payload size.
    pub packet_size: usize,
}

impl GopProfile {
    /// A 30 fps stream with a 15-frame GOP, ~6 Mbit/s average.
    #[must_use]
    pub fn standard() -> Self {
        GopProfile {
            fps: 30,
            gop_len: 15,
            i_frame_bytes: 90_000,
            p_frame_bytes: 18_000,
            packet_size: 1316,
        }
    }

    /// Average bitrate in bits per second.
    #[must_use]
    pub fn mean_bitrate_bps(&self) -> u64 {
        let per_gop = self.i_frame_bytes + self.p_frame_bytes * (self.gop_len as usize - 1);
        let gops_per_sec = f64::from(self.fps) / f64::from(self.gop_len);
        (per_gop as f64 * 8.0 * gops_per_sec) as u64
    }

    /// Builds the packet schedule for `duration` of stream starting at
    /// `start`: each frame's packets are paced across its frame interval.
    #[must_use]
    pub fn schedule(&self, start: SimTime, duration: SimDuration) -> Vec<(SimTime, usize)> {
        let frame_interval = SimDuration::from_secs_f64(1.0 / f64::from(self.fps));
        let frames = (duration.as_secs_f64() * f64::from(self.fps)) as u64;
        let mut out = Vec::new();
        for f in 0..frames {
            let frame_start = start + frame_interval * f;
            let bytes = if f % u64::from(self.gop_len) == 0 {
                self.i_frame_bytes
            } else {
                self.p_frame_bytes
            };
            let packets = bytes.div_ceil(self.packet_size);
            let pacing = frame_interval / packets as u64;
            for p in 0..packets {
                let size = if p == packets - 1 {
                    bytes - self.packet_size * (packets - 1)
                } else {
                    self.packet_size
                };
                out.push((frame_start + pacing * p as u64, size));
            }
        }
        out
    }

    /// The VBR workload carrying `duration` of this stream.
    #[must_use]
    pub fn workload(&self, start: SimTime, duration: SimDuration) -> Workload {
        Workload::Trace {
            schedule: std::sync::Arc::new(self.schedule(start, duration)),
        }
    }
}

/// What a decoder would say about a received stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoQualityReport {
    /// Packets delivered / packets sent.
    pub delivered_frac: f64,
    /// Mean one-way delivery latency, ms.
    pub mean_latency_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_latency_ms: f64,
    /// Worst-case latency, ms.
    pub max_latency_ms: f64,
    /// Mean inter-delivery jitter, ms.
    pub mean_jitter_ms: f64,
    /// Delivery gaps exceeding the freeze threshold.
    pub freezes: u64,
    /// The longest delivery gap, ms.
    pub longest_freeze_ms: f64,
    /// Fraction of deliveries within the deadline (1.0 when no deadline).
    pub within_deadline_frac: f64,
    /// Decoder continuity with a 100 ms playout buffer: the fraction of
    /// *sent* packets available in time for playout (losses and
    /// late-recovered packets both count as glitches).
    pub continuity_100ms: f64,
}

/// A delivery gap longer than this many packet intervals counts as a
/// visible freeze.
pub const FREEZE_INTERVALS: f64 = 8.0;

/// Scores a receive log against the stream that was sent.
///
/// # Panics
///
/// Panics if `sent` is zero.
#[must_use]
pub fn score(
    recv: &FlowRecv,
    sent: u64,
    profile: &VideoProfile,
    deadline: Option<SimDuration>,
) -> VideoQualityReport {
    assert!(sent > 0, "cannot score an empty stream");
    let mut latency = recv.latency_ms.clone();
    let freeze_threshold = profile.packet_interval().as_millis_f64() * FREEZE_INTERVALS;
    let mut freezes = 0;
    let mut longest: f64 = 0.0;
    for w in recv.arrivals.windows(2) {
        let gap = w[1].0.saturating_since(w[0].0).as_millis_f64();
        if gap > freeze_threshold {
            freezes += 1;
        }
        longest = longest.max(gap);
    }
    let within = match deadline {
        None => 1.0,
        Some(d) => latency.fraction_within(d.as_millis_f64()).unwrap_or(0.0),
    };
    let delivered_frac = recv.received as f64 / sent as f64;
    let continuity_100ms = latency.fraction_within(100.0).unwrap_or(0.0) * delivered_frac;
    VideoQualityReport {
        delivered_frac,
        mean_latency_ms: latency.mean().unwrap_or(0.0),
        p99_latency_ms: latency.quantile(0.99).unwrap_or(0.0),
        max_latency_ms: latency.max().unwrap_or(0.0),
        mean_jitter_ms: recv.jitter_ms.mean().unwrap_or(0.0),
        freezes,
        longest_freeze_ms: longest,
        within_deadline_frac: within,
        continuity_100ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_cadence_matches_bitrate() {
        let p = VideoProfile::broadcast_sd();
        // 1316 B * 8 / 8e6 = 1.316 ms per packet.
        assert!((p.packet_interval().as_millis_f64() - 1.316).abs() < 1e-9);
        assert_eq!(p.packets_in(SimDuration::from_secs(1)), 759);
        let hd = VideoProfile::broadcast_hd();
        assert!(hd.packet_interval() < p.packet_interval());
    }

    #[test]
    fn workload_shape() {
        let p = VideoProfile::proxy();
        match p.workload(SimTime::from_millis(500), SimDuration::from_secs(2)) {
            Workload::Cbr {
                size, count, start, ..
            } => {
                assert_eq!(size, 1316);
                assert_eq!(count, p.packets_in(SimDuration::from_secs(2)));
                assert_eq!(start, SimTime::from_millis(500));
            }
            other => panic!("unexpected workload {other:?}"),
        }
    }

    fn recv_with(arrival_gaps_ms: &[f64], latencies_ms: &[f64]) -> FlowRecv {
        let mut r = FlowRecv::default();
        let mut t = SimTime::from_millis(100);
        for (i, (&gap, &lat)) in arrival_gaps_ms.iter().zip(latencies_ms).enumerate() {
            t += SimDuration::from_millis_f64(gap);
            r.arrivals.push((t, i as u64 + 1));
            r.latency_ms.record(lat);
            r.received += 1;
        }
        r
    }

    #[test]
    fn score_counts_freezes_and_deadline() {
        let p = VideoProfile::broadcast_sd(); // ~1.3ms cadence, freeze > ~10.5ms
        let recv = recv_with(&[0.0, 1.3, 50.0, 1.3], &[10.0, 11.0, 61.0, 12.0]);
        let report = score(&recv, 8, &p, Some(SimDuration::from_millis(40)));
        assert!((report.delivered_frac - 0.5).abs() < 1e-12);
        assert_eq!(report.freezes, 1);
        assert!((report.longest_freeze_ms - 50.0).abs() < 1e-9);
        assert!((report.within_deadline_frac - 0.75).abs() < 1e-12);
        assert!(report.max_latency_ms >= 61.0);
    }

    #[test]
    fn score_perfect_stream() {
        let p = VideoProfile::broadcast_sd();
        let gaps = vec![1.3; 100];
        let lats = vec![20.0; 100];
        let recv = recv_with(&gaps, &lats);
        let report = score(&recv, 100, &p, None);
        assert_eq!(report.delivered_frac, 1.0);
        assert_eq!(report.freezes, 0);
        assert_eq!(report.within_deadline_frac, 1.0);
        assert!((report.mean_latency_ms - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn score_rejects_zero_sent() {
        let p = VideoProfile::proxy();
        let _ = score(&FlowRecv::default(), 0, &p, None);
    }

    #[test]
    fn gop_schedule_shape() {
        let g = GopProfile::standard();
        // 90000/1316 = 69 pkts per I frame; 18000/1316 = 14 per P frame.
        let sched = g.schedule(SimTime::from_secs(1), SimDuration::from_secs(1));
        assert!(!sched.is_empty());
        // Two GOPs in one second at 30fps/15: 2 I frames.
        let total_bytes: usize = sched.iter().map(|&(_, s)| s).sum();
        assert_eq!(total_bytes, 2 * (90_000 + 14 * 18_000));
        // Times are nondecreasing and within [1s, 2s).
        assert!(sched.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(sched.first().unwrap().0 >= SimTime::from_secs(1));
        assert!(sched.last().unwrap().0 < SimTime::from_secs(2));
    }

    #[test]
    fn gop_mean_bitrate() {
        let g = GopProfile::standard();
        let bps = g.mean_bitrate_bps();
        // (90000 + 14*18000) * 8 * 2 = 5.47 Mbit/s.
        assert!((5_400_000..5_600_000).contains(&bps), "{bps}");
    }

    #[test]
    fn gop_workload_is_a_trace() {
        let g = GopProfile::standard();
        match g.workload(SimTime::ZERO, SimDuration::from_secs(1)) {
            Workload::Trace { schedule } => assert!(!schedule.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
