//! Property-based tests for the application layer.

use proptest::prelude::*;
use son_apps::scada::Msg;
use son_apps::video::{GopProfile, VideoProfile};
use son_netsim::time::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SCADA agreement messages round-trip through their wire encoding.
    #[test]
    fn scada_msg_roundtrip(kind in 0u8..4, a in any::<u64>(), b in any::<u64>(), r in any::<u16>()) {
        let msg = match kind {
            0 => Msg::Event(a, b),
            1 => Msg::Propose(a, b, a ^ b),
            2 => Msg::Echo(a, b, a ^ b, r),
            _ => Msg::Command(a, b, a ^ b),
        };
        prop_assert_eq!(Msg::decode(&msg.encode()), Some(msg));
    }

    /// Corrupt/truncated payloads never decode to a panic — just `None` or
    /// some well-formed message.
    #[test]
    fn scada_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Msg::decode(&bytes);
    }

    /// GOP schedules conserve bytes, stay in order, and fit the window.
    #[test]
    fn gop_schedule_invariants(
        fps in 10u32..60,
        gop_len in 2u32..30,
        i_kb in 20usize..200,
        p_kb in 2usize..40,
        secs in 1u64..5,
    ) {
        let profile = GopProfile {
            fps,
            gop_len,
            i_frame_bytes: i_kb * 1000,
            p_frame_bytes: p_kb * 1000,
            packet_size: 1316,
        };
        let start = SimTime::from_millis(100);
        let duration = SimDuration::from_secs(secs);
        let sched = profile.schedule(start, duration);
        prop_assert!(!sched.is_empty());
        // Nondecreasing times within [start, start + duration).
        prop_assert!(sched.windows(2).all(|w| w[0].0 <= w[1].0));
        prop_assert!(sched.first().unwrap().0 >= start);
        prop_assert!(sched.last().unwrap().0 < start + duration);
        // Byte conservation: frames * sizes.
        let frames = (secs * u64::from(fps)) as usize;
        let i_frames = frames.div_ceil(gop_len as usize);
        let expected = i_frames * profile.i_frame_bytes
            + (frames - i_frames) * profile.p_frame_bytes;
        let total: usize = sched.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(total, expected);
        // No packet exceeds the transport size.
        prop_assert!(sched.iter().all(|&(_, s)| s > 0 && s <= 1316));
    }

    /// CBR profiles: packets_in x interval never exceeds the duration.
    #[test]
    fn cbr_profile_fits_duration(bitrate_mbps in 1u64..50, secs in 1u64..30) {
        let p = VideoProfile { bitrate_bps: bitrate_mbps * 1_000_000, packet_size: 1316 };
        let n = p.packets_in(SimDuration::from_secs(secs));
        let span = p.packet_interval() * n;
        prop_assert!(span <= SimDuration::from_secs(secs));
        // And it is within one packet interval of filling it.
        prop_assert!(span + p.packet_interval() + SimDuration::from_nanos(n) >= SimDuration::from_secs(secs));
    }
}
