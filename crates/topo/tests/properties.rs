//! Property-based tests over randomly generated overlay topologies.
//!
//! Invariants checked:
//! * Dijkstra's distances satisfy the triangle inequality along returned
//!   paths, and path costs equal the sum of their edge weights.
//! * `k_node_disjoint_paths` returns genuinely node-disjoint valid paths,
//!   with the first equal in cost to the plain shortest path.
//! * With k disjoint paths, removing any k-1 interior nodes leaves the
//!   destination reachable (the paper's §IV-B guarantee).
//! * Multicast trees reach every reachable member at no more than unicast
//!   mesh cost.
//! * Dissemination graphs are supersets of the 2-disjoint-path mask and
//!   subsets of the flooding mask.

use proptest::prelude::*;
use son_topo::dijkstra::{dijkstra, shortest_path};
use son_topo::disjoint::{are_node_disjoint, k_node_disjoint_paths};
use son_topo::dissemination::{connects, robust_dissemination_graph};
use son_topo::graph::{Graph, NodeId};
use son_topo::multicast::{anycast_target, multicast_tree, unicast_mesh_cost};

/// Strategy: a connected random graph of 4..=12 nodes. We first build a
/// random spanning tree (guaranteeing connectivity), then sprinkle extra
/// edges.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (4usize..=12).prop_flat_map(|n| {
        let tree_parents = proptest::collection::vec(0usize..usize::MAX, n - 1);
        let extra = proptest::collection::vec((0usize..n, 0usize..n, 1u32..50), 0..(2 * n));
        let weights = proptest::collection::vec(1u32..50, n - 1);
        (Just(n), tree_parents, weights, extra).prop_map(|(n, parents, weights, extra)| {
            let mut g = Graph::new(n);
            for i in 1..n {
                let p = parents[i - 1] % i;
                g.add_edge(NodeId(p), NodeId(i), f64::from(weights[i - 1]));
            }
            for (a, b, w) in extra {
                if a != b && g.edge_between(NodeId(a), NodeId(b)).is_none() {
                    g.add_edge(NodeId(a), NodeId(b), f64::from(w));
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dijkstra_path_cost_equals_edge_sum(g in arb_connected_graph()) {
        let sp = dijkstra(&g, NodeId(0));
        for v in g.nodes() {
            let path = sp.path_to(v).expect("connected graph");
            let edge_sum: f64 = path.edges.iter().map(|&e| g.weight(e)).sum();
            prop_assert!((path.cost - edge_sum).abs() < 1e-9);
            prop_assert_eq!(path.nodes.len(), path.edges.len() + 1);
            prop_assert_eq!(*path.nodes.first().unwrap(), NodeId(0));
            prop_assert_eq!(path.dst(), v);
        }
    }

    #[test]
    fn dijkstra_respects_triangle_inequality(g in arb_connected_graph()) {
        let sp = dijkstra(&g, NodeId(0));
        for e in g.edges() {
            let (a, b) = g.endpoints(e);
            let da = sp.dist(a).unwrap();
            let db = sp.dist(b).unwrap();
            prop_assert!(db <= da + g.weight(e) + 1e-9);
            prop_assert!(da <= db + g.weight(e) + 1e-9);
        }
    }

    #[test]
    fn disjoint_paths_are_disjoint_and_valid(g in arb_connected_graph(), k in 1usize..4) {
        let n = g.node_count();
        let (src, dst) = (NodeId(0), NodeId(n - 1));
        let dp = k_node_disjoint_paths(&g, src, dst, k);
        prop_assert!(!dp.is_empty(), "graph is connected");
        prop_assert!(dp.len() <= k);
        prop_assert!(are_node_disjoint(&dp.paths));
        for p in &dp.paths {
            // Path is contiguous and uses real edges.
            prop_assert_eq!(*p.nodes.first().unwrap(), src);
            prop_assert_eq!(p.dst(), dst);
            for (i, &e) in p.edges.iter().enumerate() {
                let (a, b) = g.endpoints(e);
                let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                prop_assert!((a, b) == (u, v) || (a, b) == (v, u));
            }
        }
    }

    #[test]
    fn first_disjoint_path_is_shortest(g in arb_connected_graph()) {
        let n = g.node_count();
        let (src, dst) = (NodeId(0), NodeId(n - 1));
        let dp = k_node_disjoint_paths(&g, src, dst, 1);
        let sp = shortest_path(&g, src, dst).unwrap();
        prop_assert!((dp.paths[0].cost - sp.cost).abs() < 1e-9,
            "min-cost single flow = shortest path");
    }

    #[test]
    fn k_disjoint_survive_k_minus_1_interior_failures(g in arb_connected_graph()) {
        let n = g.node_count();
        let (src, dst) = (NodeId(0), NodeId(n - 1));
        let dp = k_node_disjoint_paths(&g, src, dst, 3);
        let k = dp.len();
        prop_assume!(k >= 2);
        let mask = dp.mask();
        // Knock out all interior nodes of k-1 of the paths simultaneously.
        for skip in 0..k {
            let blocked: Vec<NodeId> = dp
                .paths
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .flat_map(|(_, p)| p.nodes[1..p.nodes.len() - 1].to_vec())
                .collect();
            prop_assert!(
                connects(&g, &mask, src, dst, &blocked),
                "path {skip} should survive when the others are cut"
            );
        }
    }

    #[test]
    fn multicast_tree_reaches_members_cheaper_than_mesh(
        g in arb_connected_graph(),
        member_seed in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let members: Vec<NodeId> = g
            .nodes()
            .skip(1)
            .filter(|v| member_seed[v.0 % member_seed.len()])
            .collect();
        let tree = multicast_tree(&g, NodeId(0), &members);
        for &m in &members {
            prop_assert!(connects(&g, &tree, NodeId(0), m, &[]));
        }
        let tree_cost = g.mask_weight(&tree);
        let mesh_cost = unicast_mesh_cost(&g, NodeId(0), &members);
        prop_assert!(tree_cost <= mesh_cost + 1e-9);
    }

    #[test]
    fn anycast_target_is_a_nearest_member(
        g in arb_connected_graph(),
        member_seed in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let members: Vec<NodeId> = g
            .nodes()
            .filter(|v| member_seed[v.0 % member_seed.len()])
            .collect();
        prop_assume!(!members.is_empty());
        let target = anycast_target(&g, NodeId(0), &members).unwrap();
        let sp = dijkstra(&g, NodeId(0));
        let best = members.iter().map(|&m| sp.dist(m).unwrap()).fold(f64::INFINITY, f64::min);
        prop_assert!((sp.dist(target).unwrap() - best).abs() < 1e-9);
    }

    #[test]
    fn dissemination_graph_sandwiched_between_paths_and_flood(g in arb_connected_graph()) {
        let n = g.node_count();
        let (src, dst) = (NodeId(0), NodeId(n - 1));
        let robust = robust_dissemination_graph(&g, src, dst);
        let two = k_node_disjoint_paths(&g, src, dst, 2).mask();
        let flood = g.full_mask();
        prop_assert!(robust.is_superset(&two));
        prop_assert!(flood.is_superset(&robust));
        prop_assert!(connects(&g, &robust, src, dst, &[]));
    }

    #[test]
    fn edge_mask_roundtrip(indices in proptest::collection::btree_set(0usize..256, 0..40)) {
        use son_topo::graph::{EdgeId, EdgeMask};
        let mask: EdgeMask = indices.iter().map(|&i| EdgeId(i)).collect();
        prop_assert_eq!(mask.len(), indices.len());
        let back: Vec<usize> = mask.iter().map(|e| e.0).collect();
        let expect: Vec<usize> = indices.into_iter().collect();
        prop_assert_eq!(back, expect);
    }
}
