//! Yen's algorithm: k loopless shortest paths.
//!
//! The paper's related work surveys redundant dissemination via "sets of
//! potentially overlapping paths" \[13\] as an alternative to node-disjoint
//! paths. Overlapping path sets are cheaper (they reuse good links) but
//! share fate where they overlap; exposing both lets the experiments compare
//! the trade-off directly.

use crate::dijkstra::{dijkstra_with, Path};
use crate::graph::{EdgeMask, Graph, NodeId};

/// Finds up to `k` loopless shortest paths from `src` to `dst`, cheapest
/// first (Yen's algorithm). Paths may share nodes and edges.
///
/// # Panics
///
/// Panics if `src == dst` or either endpoint is out of range.
#[must_use]
pub fn k_shortest_paths(graph: &Graph, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    assert_ne!(src, dst, "k-shortest paths require distinct endpoints");
    assert!(
        src.0 < graph.node_count() && dst.0 < graph.node_count(),
        "endpoint out of range"
    );
    let mut found: Vec<Path> = Vec::new();
    let Some(first) = shortest_avoiding(graph, src, dst, &[], &[]) else {
        return found;
    };
    found.push(first);
    let mut candidates: Vec<Path> = Vec::new();

    while found.len() < k {
        let prev = found.last().expect("at least one found").clone();
        // For each spur node of the previous path, find a deviation.
        for i in 0..prev.nodes.len() - 1 {
            let spur_node = prev.nodes[i];
            let root_nodes = &prev.nodes[..=i];
            let root_edges = &prev.edges[..i];
            // Edges to ban: the next edge of every found path sharing this root.
            let mut banned_edges = Vec::new();
            for p in &found {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    if let Some(&e) = p.edges.get(i) {
                        banned_edges.push(e);
                    }
                }
            }
            // Nodes of the root (except the spur) must not be revisited.
            let banned_nodes: Vec<NodeId> = root_nodes[..root_nodes.len() - 1].to_vec();
            let Some(spur) = shortest_avoiding(graph, spur_node, dst, &banned_edges, &banned_nodes)
            else {
                continue;
            };
            // Total = root + spur.
            let mut nodes = root_nodes.to_vec();
            nodes.extend_from_slice(&spur.nodes[1..]);
            let mut edges = root_edges.to_vec();
            edges.extend_from_slice(&spur.edges);
            let cost = edges.iter().map(|&e| graph.weight(e)).sum();
            let candidate = Path { nodes, edges, cost };
            let dup = found
                .iter()
                .chain(candidates.iter())
                .any(|p| p.edges == candidate.edges);
            if !dup {
                candidates.push(candidate);
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate (stable tie-break on edge ids).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.cost
                    .partial_cmp(&b.cost)
                    .expect("finite")
                    .then_with(|| a.edges.cmp(&b.edges))
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        found.push(candidates.swap_remove(best));
    }
    found
}

/// The union mask of the k shortest (possibly overlapping) paths — the
/// "overlapping path set" source-route stamp.
#[must_use]
pub fn overlapping_paths_mask(graph: &Graph, src: NodeId, dst: NodeId, k: usize) -> EdgeMask {
    let mut mask = EdgeMask::EMPTY;
    for p in k_shortest_paths(graph, src, dst, k) {
        mask |= p.mask();
    }
    mask
}

fn shortest_avoiding(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    banned_edges: &[crate::graph::EdgeId],
    banned_nodes: &[NodeId],
) -> Option<Path> {
    let sp = dijkstra_with(graph, src, |e| {
        if banned_edges.contains(&e) {
            return f64::INFINITY;
        }
        let (a, b) = graph.endpoints(e);
        if banned_nodes.contains(&a) || banned_nodes.contains(&b) {
            return f64::INFINITY;
        }
        graph.weight(e)
    });
    sp.path_to(dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond with shortcut:
    /// 0-1 (1), 1-3 (1), 0-2 (2), 2-3 (2), 1-2 (0.5).
    fn g() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 2.0);
        g.add_edge(NodeId(2), NodeId(3), 2.0);
        g.add_edge(NodeId(1), NodeId(2), 0.5);
        g
    }

    #[test]
    fn first_path_is_shortest() {
        let paths = k_shortest_paths(&g(), NodeId(0), NodeId(3), 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].cost, 2.0);
        assert_eq!(paths[0].nodes, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn paths_come_out_cheapest_first_and_loopless() {
        let paths = k_shortest_paths(&g(), NodeId(0), NodeId(3), 4);
        assert_eq!(paths.len(), 4);
        // Costs: 0-1-3 = 2; 0-1-2-3 = 3.5; 0-2-3 = 4; 0-2-1-3 = 3.5.
        let costs: Vec<f64> = paths.iter().map(|p| p.cost).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{costs:?}");
        assert_eq!(costs[0], 2.0);
        assert_eq!(costs[3], 4.0);
        for p in &paths {
            let mut seen = std::collections::HashSet::new();
            assert!(
                p.nodes.iter().all(|n| seen.insert(*n)),
                "loop in {:?}",
                p.nodes
            );
        }
    }

    #[test]
    fn paths_are_distinct() {
        let paths = k_shortest_paths(&g(), NodeId(0), NodeId(3), 10);
        let mut edge_sets: Vec<Vec<crate::graph::EdgeId>> =
            paths.iter().map(|p| p.edges.clone()).collect();
        let before = edge_sets.len();
        edge_sets.dedup();
        assert_eq!(edge_sets.len(), before);
        // The diamond admits exactly 4 loopless 0->3 paths.
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn overlapping_mask_is_cheaper_than_disjoint_for_same_k() {
        // A graph where the two cheapest paths share a middle edge:
        //   0 -a- 1 -b- 2 -c- 4
        //         |         |
        //         +--- d ---+   (1-4 direct, expensive)
        //   0 -e- 3 -f- 2  (second entry into the shared tail)
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0); // a
        g.add_edge(NodeId(1), NodeId(2), 1.0); // b
        g.add_edge(NodeId(2), NodeId(4), 1.0); // c
        g.add_edge(NodeId(1), NodeId(4), 10.0); // d
        g.add_edge(NodeId(0), NodeId(3), 1.5); // e
        g.add_edge(NodeId(3), NodeId(2), 1.5); // f
        let overlap = overlapping_paths_mask(&g, NodeId(0), NodeId(4), 2);
        let disjoint = crate::disjoint::k_node_disjoint_paths(&g, NodeId(0), NodeId(4), 2).mask();
        // Overlapping: {a,b,c} ∪ {e,f,c} = 5 edges sharing c.
        // Disjoint must take the expensive d: {a? ...} either way 5 edges too
        // but heavier. Compare total weight.
        assert!(g.mask_weight(&overlap) < g.mask_weight(&disjoint));
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        assert!(k_shortest_paths(&g, NodeId(0), NodeId(2), 3).is_empty());
        assert!(overlapping_paths_mask(&g, NodeId(0), NodeId(2), 3).is_empty());
    }

    #[test]
    fn k_larger_than_path_count_is_fine() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(1), 5);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn same_endpoints_panics() {
        let _ = k_shortest_paths(&g(), NodeId(0), NodeId(0), 2);
    }
}
