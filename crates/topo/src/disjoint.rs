//! k node-disjoint paths via min-cost flow with vertex splitting.
//!
//! The paper's intrusion-tolerant messaging uses "k node-disjoint paths,
//! \[so\] a source can protect against up to k − 1 compromised nodes anywhere
//! in the network (since each compromised node can disrupt at most one of
//! the k paths)" (§IV-B). This module computes a minimum-total-latency set
//! of such paths using the classical vertex-splitting reduction: every node
//! becomes an `in → out` arc of capacity one, so at most one path may pass
//! through it, and successive shortest augmenting paths (Bellman–Ford on the
//! residual graph) yield a min-cost integral flow of value `k`.

use crate::dijkstra::Path;
use crate::graph::{EdgeMask, Graph, NodeId};

/// Result of a disjoint-path computation.
#[derive(Debug, Clone)]
pub struct DisjointPaths {
    /// The paths found, cheapest total cost first. May hold fewer than the
    /// requested `k` if the graph does not admit that many.
    pub paths: Vec<Path>,
}

impl DisjointPaths {
    /// Number of paths found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if no path exists at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The union mask over all paths — the source-route stamp for redundant
    /// dissemination over the disjoint paths.
    #[must_use]
    pub fn mask(&self) -> EdgeMask {
        let mut m = EdgeMask::EMPTY;
        for p in &self.paths {
            m |= p.mask();
        }
        m
    }

    /// Total cost across all paths.
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.paths.iter().map(|p| p.cost).sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: usize,
    cap: i32,
    cost: f64,
    /// Index of the reverse arc.
    rev: usize,
    /// The overlay edge this arc came from, if any.
    edge: Option<crate::graph::EdgeId>,
}

struct FlowNet {
    arcs: Vec<Vec<Arc>>,
}

impl FlowNet {
    fn new(n: usize) -> Self {
        FlowNet {
            arcs: vec![Vec::new(); n],
        }
    }

    fn add(
        &mut self,
        from: usize,
        to: usize,
        cap: i32,
        cost: f64,
        edge: Option<crate::graph::EdgeId>,
    ) {
        let rev_from = self.arcs[to].len();
        let rev_to = self.arcs[from].len();
        self.arcs[from].push(Arc {
            to,
            cap,
            cost,
            rev: rev_from,
            edge,
        });
        self.arcs[to].push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
            rev: rev_to,
            edge,
        });
    }
}

/// Finds up to `k` node-disjoint paths from `src` to `dst` minimizing total
/// cost. Returns fewer paths if the graph's connectivity does not admit `k`.
///
/// # Panics
///
/// Panics if `src == dst` or either is out of range.
#[must_use]
pub fn k_node_disjoint_paths(graph: &Graph, src: NodeId, dst: NodeId, k: usize) -> DisjointPaths {
    assert_ne!(src, dst, "disjoint paths require distinct endpoints");
    assert!(
        src.0 < graph.node_count() && dst.0 < graph.node_count(),
        "endpoint out of range"
    );
    let n = graph.node_count();
    // Node v maps to v_in = 2v, v_out = 2v + 1.
    let v_in = |v: NodeId| 2 * v.0;
    let v_out = |v: NodeId| 2 * v.0 + 1;
    let mut net = FlowNet::new(2 * n);
    for v in graph.nodes() {
        let cap = if v == src || v == dst { k as i32 } else { 1 };
        net.add(v_in(v), v_out(v), cap, 0.0, None);
    }
    for e in graph.edges() {
        let (a, b) = graph.endpoints(e);
        let w = graph.weight(e);
        net.add(v_out(a), v_in(b), 1, w, Some(e));
        net.add(v_out(b), v_in(a), 1, w, Some(e));
    }
    let s = v_in(src);
    let t = v_out(dst);

    // Successive shortest augmenting paths (Bellman-Ford handles the
    // negative residual costs; the networks here are tiny).
    let mut found = 0;
    while found < k {
        let nn = 2 * n;
        let mut dist = vec![f64::INFINITY; nn];
        let mut pre: Vec<Option<(usize, usize)>> = vec![None; nn];
        dist[s] = 0.0;
        for _ in 0..nn {
            let mut improved = false;
            for u in 0..nn {
                if dist[u] == f64::INFINITY {
                    continue;
                }
                for (ai, arc) in net.arcs[u].iter().enumerate() {
                    if arc.cap > 0 && dist[u] + arc.cost < dist[arc.to] - 1e-12 {
                        dist[arc.to] = dist[u] + arc.cost;
                        pre[arc.to] = Some((u, ai));
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        if dist[t] == f64::INFINITY {
            break;
        }
        // Augment one unit along the shortest path.
        let mut v = t;
        while v != s {
            let (u, ai) = pre[v].expect("path back to source");
            let rev = net.arcs[u][ai].rev;
            net.arcs[u][ai].cap -= 1;
            net.arcs[v][rev].cap += 1;
            v = u;
        }
        found += 1;
    }

    // Decompose the flow into paths by walking saturated forward arcs.
    let mut paths = Vec::new();
    for _ in 0..found {
        let mut nodes = vec![src];
        let mut edges = Vec::new();
        let mut cost = 0.0;
        let mut cur = src;
        loop {
            if cur == dst {
                break;
            }
            // Leave cur via its out-node on a used arc (reverse cap > 0 on
            // the edge arc means flow passed; equivalently forward cap == 0).
            let out = v_out(cur);
            let mut advanced = false;
            for ai in 0..net.arcs[out].len() {
                let arc = net.arcs[out][ai];
                // Forward graph arcs were added with cap 1; used ones have cap 0.
                if let (Some(edge), true, true) = (arc.edge, arc.cost >= 0.0, arc.cap == 0) {
                    // Consume it so another decomposition pass doesn't reuse it.
                    net.arcs[out][ai].cap = -1;
                    let next = NodeId(arc.to / 2);
                    edges.push(edge);
                    cost += graph.weight(edge);
                    nodes.push(next);
                    cur = next;
                    advanced = true;
                    break;
                }
            }
            assert!(advanced, "flow decomposition stuck at {cur:?}");
        }
        paths.push(Path { nodes, edges, cost });
    }
    paths.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    DisjointPaths { paths }
}

/// Checks that a set of paths shares no intermediate node (endpoints exempt).
#[must_use]
pub fn are_node_disjoint(paths: &[Path]) -> bool {
    let mut seen = std::collections::HashSet::new();
    for p in paths {
        if p.nodes.len() < 2 {
            continue;
        }
        for &v in &p.nodes[1..p.nodes.len() - 1] {
            if !seen.insert(v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeId;

    /// Two disjoint 2-hop routes 0-1-3 / 0-2-3 plus a direct edge 0-3.
    fn diamond_plus() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 2.0);
        g.add_edge(NodeId(2), NodeId(3), 2.0);
        g.add_edge(NodeId(0), NodeId(3), 5.0);
        g
    }

    #[test]
    fn one_path_is_shortest_path() {
        let g = diamond_plus();
        let dp = k_node_disjoint_paths(&g, NodeId(0), NodeId(3), 1);
        assert_eq!(dp.len(), 1);
        assert_eq!(dp.paths[0].cost, 2.0);
        assert_eq!(dp.paths[0].nodes, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn three_disjoint_paths_exist_in_diamond_plus() {
        let g = diamond_plus();
        let dp = k_node_disjoint_paths(&g, NodeId(0), NodeId(3), 3);
        assert_eq!(dp.len(), 3);
        assert!(are_node_disjoint(&dp.paths));
        assert_eq!(dp.total_cost(), 2.0 + 4.0 + 5.0);
        // Cheapest first.
        assert!(dp.paths.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn asking_for_more_than_connectivity_returns_fewer() {
        let g = diamond_plus();
        let dp = k_node_disjoint_paths(&g, NodeId(0), NodeId(3), 10);
        assert_eq!(dp.len(), 3, "node 3 has degree 3");
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let dp = k_node_disjoint_paths(&g, NodeId(0), NodeId(3), 2);
        assert!(dp.is_empty());
        assert_eq!(dp.total_cost(), 0.0);
    }

    #[test]
    fn min_cost_flow_reroutes_rather_than_greedy() {
        // Classic trap: the single cheapest path uses the only cut vertex in
        // a way that blocks a second path; min-cost flow must still find 2.
        //      1 --- 2
        //     /       \
        //    0         4
        //     \       /
        //      3 --- /
        // edges: 0-1(1), 1-2(1), 2-4(1), 0-3(1), 3-4(1), 1-4(10)
        // Greedy shortest is 0-1-2-4 (3); second path 0-3-4 (2): both exist
        // disjointly. Now make the greedy-shortest grab node 3:
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0); // e0
        g.add_edge(NodeId(1), NodeId(4), 4.0); // e1
        g.add_edge(NodeId(0), NodeId(3), 1.0); // e2
        g.add_edge(NodeId(3), NodeId(4), 1.0); // e3
        g.add_edge(NodeId(1), NodeId(3), 0.5); // e4 tempts path 1: 0-1-3-4 (2.5)
        let dp = k_node_disjoint_paths(&g, NodeId(0), NodeId(4), 2);
        assert_eq!(
            dp.len(),
            2,
            "flow formulation must not be blocked by greedy choice"
        );
        assert!(are_node_disjoint(&dp.paths));
        assert_eq!(dp.total_cost(), 2.0 + 5.0); // 0-3-4 and 0-1-4
    }

    #[test]
    fn mask_unions_all_paths() {
        let g = diamond_plus();
        let dp = k_node_disjoint_paths(&g, NodeId(0), NodeId(3), 2);
        let mask = dp.mask();
        assert_eq!(mask.len(), 4);
        assert!(mask.contains(EdgeId(0)) && mask.contains(EdgeId(1)));
        assert!(mask.contains(EdgeId(2)) && mask.contains(EdgeId(3)));
        assert!(!mask.contains(EdgeId(4)));
    }

    #[test]
    fn survives_any_k_minus_1_node_cuts() {
        // The paper's core claim: with k disjoint paths, any k-1 compromised
        // intermediate nodes leave at least one path intact.
        let g = diamond_plus();
        let dp = k_node_disjoint_paths(&g, NodeId(0), NodeId(3), 3);
        let mask = dp.mask();
        for bad in [NodeId(1), NodeId(2)] {
            let reached = g.reachable_through(NodeId(0), &mask, &[bad]);
            assert!(
                reached.contains(&NodeId(3)),
                "blocked by single node {bad:?}"
            );
        }
        let reached = g.reachable_through(NodeId(0), &mask, &[NodeId(1), NodeId(2)]);
        assert!(
            reached.contains(&NodeId(3)),
            "direct edge survives both cuts"
        );
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn same_endpoints_panics() {
        let g = diamond_plus();
        let _ = k_node_disjoint_paths(&g, NodeId(0), NodeId(0), 2);
    }

    #[test]
    fn are_node_disjoint_detects_shared_interior() {
        let p1 = Path {
            nodes: vec![NodeId(0), NodeId(1), NodeId(3)],
            edges: vec![],
            cost: 0.0,
        };
        let p2 = Path {
            nodes: vec![NodeId(0), NodeId(1), NodeId(3)],
            edges: vec![],
            cost: 0.0,
        };
        assert!(!are_node_disjoint(&[p1.clone(), p2]));
        let p3 = Path {
            nodes: vec![NodeId(0), NodeId(2), NodeId(3)],
            edges: vec![],
            cost: 0.0,
        };
        assert!(are_node_disjoint(&[p1, p3]));
    }
}
