//! The overlay topology graph and the unified source-route bitmask.
//!
//! The paper's source-based routing "can be implemented via a unified
//! source-based routing mechanism in which each packet is stamped with a
//! bitmask indicating exactly the set of overlay links it should traverse
//! (where each bit in the bitmask represents an overlay link)" (§II-B).
//! [`EdgeMask`] is that bitmask; [`Graph`] numbers its undirected edges so
//! edge *i* corresponds to bit *i*.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign, Not};

use serde::{Deserialize, Serialize};

/// Identifies an overlay node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifies an undirected overlay link within a [`Graph`]; doubles as the
/// bit index in an [`EdgeMask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Maximum number of overlay links an [`EdgeMask`] can address.
///
/// Structured overlays need only "a few tens of well situated overlay
/// nodes" (§II-A), so 256 links is generous.
pub const MAX_EDGES: usize = 256;

const WORDS: usize = MAX_EDGES / 64;

/// A fixed-size bitmask over overlay links: bit *i* set means the packet
/// should traverse edge *i* (the paper's unified source-route stamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct EdgeMask {
    words: [u64; WORDS],
}

impl EdgeMask {
    /// The empty mask (no edges).
    pub const EMPTY: EdgeMask = EdgeMask { words: [0; WORDS] };

    /// Creates a mask containing the given edges.
    #[must_use]
    pub fn from_edges<I: IntoIterator<Item = EdgeId>>(edges: I) -> Self {
        let mut mask = EdgeMask::EMPTY;
        for e in edges {
            mask.insert(e);
        }
        mask
    }

    /// Adds an edge to the mask.
    ///
    /// # Panics
    ///
    /// Panics if the edge index is `>= MAX_EDGES`.
    pub fn insert(&mut self, edge: EdgeId) {
        assert!(
            edge.0 < MAX_EDGES,
            "edge index {} exceeds MAX_EDGES",
            edge.0
        );
        self.words[edge.0 / 64] |= 1 << (edge.0 % 64);
    }

    /// Removes an edge from the mask.
    pub fn remove(&mut self, edge: EdgeId) {
        if edge.0 < MAX_EDGES {
            self.words[edge.0 / 64] &= !(1 << (edge.0 % 64));
        }
    }

    /// Whether the mask contains an edge.
    #[must_use]
    pub fn contains(&self, edge: EdgeId) -> bool {
        edge.0 < MAX_EDGES && self.words[edge.0 / 64] & (1 << (edge.0 % 64)) != 0
    }

    /// Number of edges in the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no edge is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the edges in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(EdgeId(wi * 64 + b))
                }
            })
        })
    }

    /// `true` if every edge of `other` is also in `self`.
    #[must_use]
    pub fn is_superset(&self, other: &EdgeMask) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }
}

impl BitOr for EdgeMask {
    type Output = EdgeMask;
    fn bitor(self, rhs: EdgeMask) -> EdgeMask {
        let mut out = self;
        for (w, r) in out.words.iter_mut().zip(&rhs.words) {
            *w |= r;
        }
        out
    }
}

impl BitOrAssign for EdgeMask {
    fn bitor_assign(&mut self, rhs: EdgeMask) {
        *self = *self | rhs;
    }
}

impl BitAnd for EdgeMask {
    type Output = EdgeMask;
    fn bitand(self, rhs: EdgeMask) -> EdgeMask {
        let mut out = self;
        for (w, r) in out.words.iter_mut().zip(&rhs.words) {
            *w &= r;
        }
        out
    }
}

impl Not for EdgeMask {
    type Output = EdgeMask;
    fn not(self) -> EdgeMask {
        let mut out = self;
        for w in out.words.iter_mut() {
            *w = !*w;
        }
        out
    }
}

impl FromIterator<EdgeId> for EdgeMask {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        EdgeMask::from_edges(iter)
    }
}

impl fmt::Display for EdgeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// An undirected, weighted overlay topology.
///
/// Nodes are dense indices `0..n`; edges are numbered in insertion order and
/// map one-to-one onto [`EdgeMask`] bits. Weights are link costs (typically
/// one-way latency in milliseconds).
///
/// # Examples
///
/// ```
/// use son_topo::graph::{Graph, NodeId};
///
/// let mut g = Graph::new(3);
/// let ab = g.add_edge(NodeId(0), NodeId(1), 10.0);
/// let bc = g.add_edge(NodeId(1), NodeId(2), 10.0);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.endpoints(ab), (NodeId(0), NodeId(1)));
/// assert_eq!(g.neighbors(NodeId(1)).count(), 2);
/// # let _ = bc;
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
    weights: Vec<f64>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates a graph with `nodes` isolated nodes.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Graph {
            node_count: nodes,
            edges: Vec::new(),
            weights: Vec::new(),
            adj: vec![Vec::new(); nodes],
        }
    }

    /// Adds an undirected edge with the given weight and returns its id.
    ///
    /// The graph itself has no edge-count ceiling: scale topologies run
    /// far past [`MAX_EDGES`]. Only [`EdgeMask`]-based source-route stamps
    /// stay bounded by [`MAX_EDGES`]; producers of masks must check
    /// [`Graph::edge_count`] and degrade to mask-free routing beyond it.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, the endpoints are equal,
    /// or the weight is not finite and positive.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: f64) -> EdgeId {
        assert!(
            a.0 < self.node_count && b.0 < self.node_count,
            "endpoint out of range"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be finite and positive"
        );
        let id = EdgeId(self.edges.len());
        self.edges.push((a, b));
        self.weights.push(weight);
        self.adj[a.0].push((b, id));
        self.adj[b.0].push((a, id));
        id
    }

    /// Estimated retained heap bytes: edge/weight/adjacency buffers at
    /// their allocated capacity. Capacity-based (not length-based) so the
    /// scale observatory sees what the allocator actually holds; allocator
    /// overhead and the inline struct are not counted.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.edges.capacity() * size_of::<(NodeId, NodeId)>()
            + self.weights.capacity() * size_of::<f64>()
            + self.adj.capacity() * size_of::<Vec<(NodeId, EdgeId)>>()
            + self
                .adj
                .iter()
                .map(|v| v.capacity() * size_of::<(NodeId, EdgeId)>())
                .sum::<usize>()
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId)
    }

    /// All edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// The `(a, b)` endpoints of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    #[must_use]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        self.edges[edge.0]
    }

    /// The weight of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    #[must_use]
    pub fn weight(&self, edge: EdgeId) -> f64 {
        self.weights[edge.0]
    }

    /// Updates the weight of an edge (link-quality changes).
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range or the weight is invalid.
    pub fn set_weight(&mut self, edge: EdgeId, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be finite and positive"
        );
        self.weights[edge.0] = weight;
    }

    /// Given one endpoint of an edge, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `edge`.
    #[must_use]
    pub fn other_endpoint(&self, edge: EdgeId, node: NodeId) -> NodeId {
        let (a, b) = self.edges[edge.0];
        if node == a {
            b
        } else if node == b {
            a
        } else {
            panic!("{node} is not an endpoint of {edge}");
        }
    }

    /// Iterates `(neighbor, edge)` pairs of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[node.0].iter().copied()
    }

    /// The degree of a node.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.0].len()
    }

    /// Finds the edge between two nodes, if any.
    #[must_use]
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.adj[a.0]
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, e)| e)
    }

    /// A mask containing every edge (the paper's constrained flooding stamp).
    #[must_use]
    pub fn full_mask(&self) -> EdgeMask {
        self.edges().collect()
    }

    /// Total weight of the edges in a mask.
    #[must_use]
    pub fn mask_weight(&self, mask: &EdgeMask) -> f64 {
        mask.iter().map(|e| self.weight(e)).sum()
    }

    /// The set of nodes reachable from `src` using only edges in `mask`,
    /// refusing to traverse through nodes in `blocked` (messages may still
    /// *reach* a blocked node; they are not forwarded onward from it).
    ///
    /// This models dissemination over a source-routed subgraph in which the
    /// blocked (compromised) nodes silently drop traffic.
    #[must_use]
    pub fn reachable_through(
        &self,
        src: NodeId,
        mask: &EdgeMask,
        blocked: &[NodeId],
    ) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count];
        let mut queue = std::collections::VecDeque::new();
        seen[src.0] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if u != src && blocked.contains(&u) {
                continue; // delivered to the node, but it won't forward
            }
            for (v, e) in self.neighbors(u) {
                if mask.contains(e) && !seen[v.0] {
                    seen[v.0] = true;
                    queue.push_back(v);
                }
            }
        }
        (0..self.node_count)
            .filter(|&i| seen[i])
            .map(NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 2.0);
        g.add_edge(NodeId(2), NodeId(0), 3.0);
        g
    }

    #[test]
    fn mask_insert_remove_contains() {
        let mut m = EdgeMask::EMPTY;
        assert!(m.is_empty());
        m.insert(EdgeId(0));
        m.insert(EdgeId(63));
        m.insert(EdgeId(64));
        m.insert(EdgeId(255));
        assert_eq!(m.len(), 4);
        assert!(m.contains(EdgeId(63)));
        assert!(m.contains(EdgeId(64)));
        assert!(!m.contains(EdgeId(65)));
        m.remove(EdgeId(63));
        assert!(!m.contains(EdgeId(63)));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn mask_iter_is_sorted() {
        let m = EdgeMask::from_edges([EdgeId(200), EdgeId(3), EdgeId(64)]);
        let ids: Vec<usize> = m.iter().map(|e| e.0).collect();
        assert_eq!(ids, vec![3, 64, 200]);
    }

    #[test]
    fn mask_set_operations() {
        let a = EdgeMask::from_edges([EdgeId(1), EdgeId(2)]);
        let b = EdgeMask::from_edges([EdgeId(2), EdgeId(3)]);
        assert_eq!((a | b).len(), 3);
        assert_eq!((a & b).len(), 1);
        assert!((a & b).contains(EdgeId(2)));
        assert!((a | b).is_superset(&a));
        assert!(!a.is_superset(&b));
        let mut c = a;
        c |= b;
        assert_eq!(c, a | b);
    }

    #[test]
    fn mask_display() {
        let m = EdgeMask::from_edges([EdgeId(5), EdgeId(1)]);
        assert_eq!(m.to_string(), "{e1,e5}");
        assert_eq!(EdgeMask::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_EDGES")]
    fn mask_rejects_out_of_range() {
        let mut m = EdgeMask::EMPTY;
        m.insert(EdgeId(MAX_EDGES));
    }

    #[test]
    fn graph_basics() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.endpoints(EdgeId(1)), (NodeId(1), NodeId(2)));
        assert_eq!(g.weight(EdgeId(2)), 3.0);
        assert_eq!(g.other_endpoint(EdgeId(0), NodeId(0)), NodeId(1));
        assert_eq!(g.other_endpoint(EdgeId(0), NodeId(1)), NodeId(0));
        assert_eq!(g.edge_between(NodeId(0), NodeId(2)), Some(EdgeId(2)));
        assert_eq!(g.edge_between(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn set_weight_updates() {
        let mut g = triangle();
        g.set_weight(EdgeId(0), 9.0);
        assert_eq!(g.weight(EdgeId(0)), 9.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_weight_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    fn full_mask_and_weight() {
        let g = triangle();
        let full = g.full_mask();
        assert_eq!(full.len(), 3);
        assert_eq!(g.mask_weight(&full), 6.0);
    }

    #[test]
    fn reachable_through_respects_mask_and_blocked() {
        // path 0-1-2-3
        let mut g = Graph::new(4);
        let e0 = g.add_edge(NodeId(0), NodeId(1), 1.0);
        let e1 = g.add_edge(NodeId(1), NodeId(2), 1.0);
        let e2 = g.add_edge(NodeId(2), NodeId(3), 1.0);

        let all = EdgeMask::from_edges([e0, e1, e2]);
        assert_eq!(
            g.reachable_through(NodeId(0), &all, &[]),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        // Without e1 the far side is unreachable.
        let partial = EdgeMask::from_edges([e0, e2]);
        assert_eq!(
            g.reachable_through(NodeId(0), &partial, &[]),
            vec![NodeId(0), NodeId(1)]
        );
        // A compromised node 1 receives but does not forward.
        assert_eq!(
            g.reachable_through(NodeId(0), &all, &[NodeId(1)]),
            vec![NodeId(0), NodeId(1)]
        );
        // A blocked *source* still floods (the source is never "dropped").
        assert_eq!(g.reachable_through(NodeId(0), &all, &[NodeId(0)]).len(), 4);
    }
}
