//! The overlay topology designer (§II-A).
//!
//! "To exploit physical disjointness available in the underlying networks,
//! the overlay node locations and connections are selected strategically...
//! Overlay links are designed to be short (on the order of 10ms)... it is
//! not normally advised to build a continent- or global-sized overlay as a
//! clique."
//!
//! Given candidate links (site pairs with latencies), [`design_overlay`]
//! selects a topology that (a) uses only links under the latency bound,
//! (b) is connected, and (c) meets a minimum vertex-connectivity target so
//! that redundant dissemination has disjoint paths to work with — while
//! using as few links as possible (shortest candidates first, greedily
//! keeping only links that are still needed).

use crate::disjoint::k_node_disjoint_paths;
use crate::graph::{Graph, NodeId};

/// A candidate overlay link the designer may use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateLink {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
}

/// Why the designer could not meet its targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Even using every candidate under the bound, the sites are not
    /// connected.
    Disconnected,
    /// Connected, but the requested vertex connectivity is unattainable with
    /// the given candidates (reports the worst pair found).
    ConnectivityUnattainable {
        /// A pair that cannot reach the requested disjoint-path count.
        pair: (NodeId, NodeId),
        /// The best disjoint-path count achievable for that pair.
        achieved: usize,
    },
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::Disconnected => write!(f, "candidate links do not connect all sites"),
            DesignError::ConnectivityUnattainable { pair, achieved } => write!(
                f,
                "pair {}-{} reaches only {achieved} disjoint paths with the given candidates",
                pair.0, pair.1
            ),
        }
    }
}

impl std::error::Error for DesignError {}

/// Designs an overlay topology over `sites` sites.
///
/// Uses only candidates with latency ≤ `max_link_ms`; guarantees every node
/// pair has ≥ `min_disjoint` node-disjoint paths (1 = connected); prefers
/// short links, and prunes links whose removal does not violate the target.
///
/// # Errors
///
/// See [`DesignError`].
///
/// # Panics
///
/// Panics if `sites == 0` or `min_disjoint == 0`.
pub fn design_overlay(
    sites: usize,
    candidates: &[CandidateLink],
    max_link_ms: f64,
    min_disjoint: usize,
) -> Result<Graph, DesignError> {
    assert!(sites > 0, "need at least one site");
    assert!(min_disjoint > 0, "min_disjoint must be at least 1");
    // Start from every usable candidate, shortest first.
    let mut usable: Vec<CandidateLink> = candidates
        .iter()
        .copied()
        .filter(|c| c.latency_ms <= max_link_ms && c.a != c.b)
        .collect();
    usable.sort_by(|x, y| {
        x.latency_ms
            .partial_cmp(&y.latency_ms)
            .expect("finite latency")
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });
    usable.dedup_by_key(|c| (c.a.min(c.b), c.a.max(c.b)));

    let build = |links: &[CandidateLink]| {
        let mut g = Graph::new(sites);
        for c in links {
            g.add_edge(c.a, c.b, c.latency_ms);
        }
        g
    };

    // Check feasibility with everything included.
    let full = build(&usable);
    if let Some(err) = check(&full, min_disjoint) {
        return Err(err);
    }

    // Prune: walk candidates longest-first; drop a link if the target still
    // holds without it. Greedy reverse-delete keeps the design sparse while
    // preserving the connectivity invariant at every step.
    let mut kept = usable.clone();
    let mut idx = kept.len();
    while idx > 0 {
        idx -= 1;
        if kept.len() <= sites.saturating_sub(1) {
            break; // cannot go below a spanning tree
        }
        let mut trial = kept.clone();
        trial.remove(idx);
        let g = build(&trial);
        if check(&g, min_disjoint).is_none() {
            kept = trial;
        }
    }
    Ok(build(&kept))
}

/// Verifies the min-disjoint-paths target for every pair; `None` if met.
fn check(g: &Graph, min_disjoint: usize) -> Option<DesignError> {
    for a in g.nodes() {
        for b in g.nodes() {
            if b <= a {
                continue;
            }
            let dp = k_node_disjoint_paths(g, a, b, min_disjoint);
            if dp.is_empty() {
                return Some(DesignError::Disconnected);
            }
            if dp.len() < min_disjoint {
                return Some(DesignError::ConnectivityUnattainable {
                    pair: (a, b),
                    achieved: dp.len(),
                });
            }
        }
    }
    None
}

/// Builds the candidate set from site coordinates: every pair within the
/// latency bound, at fiber latency (distance × route factor / fiber speed).
#[must_use]
pub fn candidates_from_coordinates(
    coords: &[(f64, f64)],
    max_link_ms: f64,
    km_per_ms: f64,
    route_factor: f64,
) -> Vec<CandidateLink> {
    let mut out = Vec::new();
    for i in 0..coords.len() {
        for j in i + 1..coords.len() {
            let (x1, y1) = coords[i];
            let (x2, y2) = coords[j];
            let km = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
            let latency_ms = km * route_factor / km_per_ms;
            if latency_ms <= max_link_ms {
                out.push(CandidateLink {
                    a: NodeId(i),
                    b: NodeId(j),
                    latency_ms,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Five sites on a line, 400 km apart (2.4 ms per hop at defaults).
    fn line_coords() -> Vec<(f64, f64)> {
        (0..5).map(|i| (f64::from(i) * 400.0, 0.0)).collect()
    }

    #[test]
    fn candidates_respect_the_bound() {
        let cands = candidates_from_coordinates(&line_coords(), 5.0, 200.0, 1.2);
        // 400km=2.4ms and 800km=4.8ms qualify; 1200km=7.2ms does not.
        assert!(cands.iter().all(|c| c.latency_ms <= 5.0));
        assert_eq!(cands.len(), 4 + 3);
    }

    #[test]
    fn design_connected_line() {
        let cands = candidates_from_coordinates(&line_coords(), 5.0, 200.0, 1.2);
        let g = design_overlay(5, &cands, 5.0, 1).expect("feasible");
        // A spanning design: 4 links suffice for connectivity, and pruning
        // should get close to that.
        assert!(g.edge_count() <= 5, "pruned design, got {}", g.edge_count());
        let sp = crate::dijkstra(&g, NodeId(0));
        assert!(g.nodes().all(|v| sp.reaches(v)));
    }

    #[test]
    fn design_biconnected_needs_more_links() {
        // A ring of 6 sites: 2-connectivity requires the full cycle.
        let coords: Vec<(f64, f64)> = (0..6)
            .map(|i| {
                let a = f64::from(i) * std::f64::consts::TAU / 6.0;
                (1000.0 * a.cos(), 1000.0 * a.sin())
            })
            .collect();
        let cands = candidates_from_coordinates(&coords, 8.0, 200.0, 1.2);
        let g = design_overlay(6, &cands, 8.0, 2).expect("feasible");
        // Every pair has 2 node-disjoint paths.
        for a in g.nodes() {
            for b in g.nodes() {
                if b > a {
                    assert_eq!(k_node_disjoint_paths(&g, a, b, 2).len(), 2);
                }
            }
        }
        // And it is sparse: a clique would have 15 edges.
        assert!(g.edge_count() < 15, "got {}", g.edge_count());
        assert!(g.edge_count() >= 6, "2-connectivity needs at least a cycle");
    }

    #[test]
    fn disconnected_sites_are_reported() {
        // Two clusters too far apart for the bound.
        let coords = vec![(0.0, 0.0), (100.0, 0.0), (10_000.0, 0.0), (10_100.0, 0.0)];
        let cands = candidates_from_coordinates(&coords, 3.0, 200.0, 1.2);
        assert_eq!(
            design_overlay(4, &cands, 3.0, 1).unwrap_err(),
            DesignError::Disconnected
        );
    }

    #[test]
    fn unattainable_connectivity_names_a_pair() {
        // A line cannot be 2-connected: interior nodes are cut vertices.
        let cands = candidates_from_coordinates(&line_coords(), 3.0, 200.0, 1.2);
        match design_overlay(5, &cands, 3.0, 2) {
            Err(DesignError::ConnectivityUnattainable { achieved, .. }) => {
                assert_eq!(achieved, 1);
            }
            other => panic!("expected unattainable, got {other:?}"),
        }
    }

    #[test]
    fn pruning_prefers_short_links() {
        // Triangle where one side is much longer: for connectivity (k=1)
        // the long side must be pruned away.
        let cands = vec![
            CandidateLink {
                a: NodeId(0),
                b: NodeId(1),
                latency_ms: 1.0,
            },
            CandidateLink {
                a: NodeId(1),
                b: NodeId(2),
                latency_ms: 1.0,
            },
            CandidateLink {
                a: NodeId(0),
                b: NodeId(2),
                latency_ms: 9.0,
            },
        ];
        let g = design_overlay(3, &cands, 10.0, 1).expect("feasible");
        assert_eq!(g.edge_count(), 2);
        let total: f64 = g.edges().map(|e| g.weight(e)).sum();
        assert_eq!(total, 2.0, "the 9ms link was pruned");
    }

    #[test]
    fn duplicate_candidates_are_deduped() {
        let cands = vec![
            CandidateLink {
                a: NodeId(0),
                b: NodeId(1),
                latency_ms: 1.0,
            },
            CandidateLink {
                a: NodeId(1),
                b: NodeId(0),
                latency_ms: 2.0,
            },
        ];
        let g = design_overlay(2, &cands, 10.0, 1).expect("feasible");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(crate::EdgeId(0)), 1.0, "shortest duplicate wins");
    }
}
