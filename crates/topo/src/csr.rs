//! Flat CSR (compressed sparse row) snapshot of the overlay topology — the
//! routing hot path's view of the graph.
//!
//! [`Graph`] remains the builder/mutation layer: edges are added and
//! re-weighted there. [`Graph::freeze`] compiles it into a [`TopoSnapshot`]
//! whose adjacency lives in three flat arrays (row offsets, neighbor ids,
//! edge ids), sized `u32`, in the exact neighbor order of the source graph.
//! A snapshot is immutable and cheap to share (`Arc<TopoSnapshot>`), so a
//! connectivity-state change costs one freeze fleet-wide view instead of a
//! full `Graph` clone per consumer, and an *unchanged* link-state
//! advertisement costs nothing at all.
//!
//! [`TopoSnapshot::spt_with`] runs an index-based Dijkstra over the CSR
//! arrays into an owned [`Spt`] — the same tree [`dijkstra_with`] produces,
//! plus a dense per-destination first-hop table so a forwarding lookup is
//! O(1) instead of a parent-chain walk. A [`SptScratch`] carries the
//! binary heap and work stack across runs so steady-state route
//! recomputation performs no per-call heap allocation beyond the result.
//!
//! [`dijkstra_with`]: crate::dijkstra::dijkstra_with

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, EdgeMask, Graph, NodeId};

/// Sentinel for "no node / no edge" in the dense `u32` tables.
const NONE: u32 = u32::MAX;

/// An immutable, flat-array view of a [`Graph`], optimised for repeated
/// shortest-path computation and per-packet adjacency queries.
///
/// The snapshot also retains the frozen [`Graph`] it was built from, so the
/// source-route algorithms (disjoint paths, dissemination graphs, k-shortest
/// paths) that operate on `&Graph` run against the same topology without any
/// per-call clone.
#[derive(Debug, Clone)]
pub struct TopoSnapshot {
    graph: Graph,
    /// CSR row offsets: node `u`'s incident slots are `row[u]..row[u+1]`.
    row: Vec<u32>,
    /// Far endpoint per adjacency slot.
    adj_node: Vec<u32>,
    /// Edge id per adjacency slot.
    adj_edge: Vec<u32>,
    /// Edge weights, flat by edge id (a copy of the graph's, kept dense for
    /// cache-friendly cost functions).
    weights: Vec<f64>,
}

impl TopoSnapshot {
    /// Compiles a graph into a snapshot. Neighbor order is preserved
    /// exactly, so tie-breaking matches [`dijkstra_with`] run on the source
    /// graph.
    ///
    /// [`dijkstra_with`]: crate::dijkstra::dijkstra_with
    #[must_use]
    pub fn new(graph: Graph) -> Self {
        let n = graph.node_count();
        let mut row = Vec::with_capacity(n + 1);
        let mut adj_node = Vec::with_capacity(2 * graph.edge_count());
        let mut adj_edge = Vec::with_capacity(2 * graph.edge_count());
        row.push(0);
        for u in graph.nodes() {
            for (v, e) in graph.neighbors(u) {
                adj_node.push(v.0 as u32);
                adj_edge.push(e.0 as u32);
            }
            row.push(adj_node.len() as u32);
        }
        let weights = graph.edges().map(|e| graph.weight(e)).collect();
        TopoSnapshot {
            graph,
            row,
            adj_node,
            adj_edge,
            weights,
        }
    }

    /// The frozen builder-layer graph this snapshot was compiled from.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.row.len() - 1
    }

    /// Estimated retained heap bytes: the frozen graph plus the CSR arrays,
    /// at allocated capacity (see [`Graph::approx_bytes`] for the policy).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.graph.approx_bytes()
            + (self.row.capacity() + self.adj_node.capacity() + self.adj_edge.capacity())
                * size_of::<u32>()
            + self.weights.capacity() * size_of::<f64>()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// The weight of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    #[must_use]
    pub fn weight(&self, edge: EdgeId) -> f64 {
        self.weights[edge.0]
    }

    /// The `(a, b)` endpoints of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    #[must_use]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        self.graph.endpoints(edge)
    }

    /// Iterates `(neighbor, edge)` pairs of a node, in the source graph's
    /// neighbor order.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let lo = self.row[node.0] as usize;
        let hi = self.row[node.0 + 1] as usize;
        (lo..hi).map(move |i| {
            (
                NodeId(self.adj_node[i] as usize),
                EdgeId(self.adj_edge[i] as usize),
            )
        })
    }

    /// The degree of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        (self.row[node.0 + 1] - self.row[node.0]) as usize
    }

    /// Runs index-based Dijkstra from `src` using the snapshot weights.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn spt(&self, src: NodeId, scratch: &mut SptScratch) -> Spt {
        self.spt_with(src, |e| self.weights[e.0], scratch)
    }

    /// Runs index-based Dijkstra from `src` with a custom per-edge cost
    /// (`f64::INFINITY` = edge absent, e.g. a link currently down), into a
    /// fresh [`Spt`].
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn spt_with<F: Fn(EdgeId) -> f64>(
        &self,
        src: NodeId,
        cost: F,
        scratch: &mut SptScratch,
    ) -> Spt {
        let mut out = Spt::empty();
        self.spt_with_into(src, cost, scratch, &mut out);
        out
    }

    /// Like [`TopoSnapshot::spt_with`], but reuses the allocations of an
    /// existing [`Spt`] — the steady-state recomputation path allocates
    /// nothing once warm.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or a cost is negative/NaN (debug
    /// builds).
    pub fn spt_with_into<F: Fn(EdgeId) -> f64>(
        &self,
        src: NodeId,
        cost: F,
        scratch: &mut SptScratch,
        out: &mut Spt,
    ) {
        let n = self.node_count();
        assert!(src.0 < n, "source out of range");
        out.src = src;
        out.dist.clear();
        out.dist.resize(n, f64::INFINITY);
        out.parent_node.clear();
        out.parent_node.resize(n, NONE);
        out.parent_edge.clear();
        out.parent_edge.resize(n, NONE);
        scratch.heap.clear();

        out.dist[src.0] = 0.0;
        scratch.heap.push(HeapEntry {
            dist: 0.0,
            node: src.0 as u32,
        });
        while let Some(HeapEntry { dist: d, node: u }) = scratch.heap.pop() {
            let u = u as usize;
            if d > out.dist[u] {
                continue;
            }
            let lo = self.row[u] as usize;
            let hi = self.row[u + 1] as usize;
            for i in lo..hi {
                let e = self.adj_edge[i];
                let w = cost(EdgeId(e as usize));
                if w == f64::INFINITY {
                    continue;
                }
                debug_assert!(w >= 0.0 && !w.is_nan(), "negative or NaN edge cost");
                let v = self.adj_node[i] as usize;
                let nd = d + w;
                // Deterministic tie-break: keep the lower-indexed parent
                // edge (matches `dijkstra_with` on the source graph).
                if nd < out.dist[v]
                    || (nd == out.dist[v] && out.parent_edge[v] != NONE && e < out.parent_edge[v])
                {
                    out.dist[v] = nd;
                    out.parent_node[v] = u as u32;
                    out.parent_edge[v] = e;
                    scratch.heap.push(HeapEntry {
                        dist: nd,
                        node: v as u32,
                    });
                }
            }
        }
        out.fill_first_hops(&mut scratch.stack);
    }
}

impl Graph {
    /// Freezes this graph into an immutable CSR [`TopoSnapshot`] (see the
    /// [`csr`](crate::csr) module docs).
    #[must_use]
    pub fn freeze(&self) -> TopoSnapshot {
        TopoSnapshot::new(self.clone())
    }
}

/// Reusable working memory for [`TopoSnapshot`] shortest-path runs: the
/// priority queue and the first-hop resolution stack. Keep one per routing
/// engine and recomputation allocates nothing once warm.
#[derive(Debug, Default)]
pub struct SptScratch {
    heap: BinaryHeap<HeapEntry>,
    stack: Vec<u32>,
}

impl SptScratch {
    /// Creates an empty scratch space.
    #[must_use]
    pub fn new() -> Self {
        SptScratch::default()
    }

    /// Estimated retained heap bytes of the warm working memory.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.heap.capacity() * size_of::<HeapEntry>() + self.stack.capacity() * size_of::<u32>()
    }
}

/// A shortest-path tree over a [`TopoSnapshot`]: distances, tree parents,
/// and a dense per-destination first-hop table (the forwarding table a
/// link-state router actually consults, O(1) per lookup).
#[derive(Debug, Clone)]
pub struct Spt {
    src: NodeId,
    dist: Vec<f64>,
    parent_node: Vec<u32>,
    parent_edge: Vec<u32>,
    first_hop_node: Vec<u32>,
    first_hop_edge: Vec<u32>,
}

impl Spt {
    /// An empty tree, for [`TopoSnapshot::spt_with_into`] reuse.
    #[must_use]
    pub fn empty() -> Self {
        Spt {
            src: NodeId(0),
            dist: Vec::new(),
            parent_node: Vec::new(),
            parent_edge: Vec::new(),
            first_hop_node: Vec::new(),
            first_hop_edge: Vec::new(),
        }
    }

    /// The source this tree was computed from.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Estimated retained heap bytes of the dense per-destination arrays, at
    /// allocated capacity (see [`Graph::approx_bytes`] for the policy).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.dist.capacity() * size_of::<f64>()
            + (self.parent_node.capacity()
                + self.parent_edge.capacity()
                + self.first_hop_node.capacity()
                + self.first_hop_edge.capacity())
                * size_of::<u32>()
    }

    /// Distance to `node`, or `None` if unreachable.
    #[must_use]
    pub fn dist(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.0];
        d.is_finite().then_some(d)
    }

    /// Whether `node` is reachable from the source.
    #[must_use]
    pub fn reaches(&self, node: NodeId) -> bool {
        self.dist[node.0].is_finite()
    }

    /// The tree parent of `node`: the previous node on its shortest path and
    /// the edge connecting them. `None` for the source and unreachable nodes.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<(NodeId, EdgeId)> {
        let p = self.parent_node[node.0];
        (p != NONE).then(|| {
            (
                NodeId(p as usize),
                EdgeId(self.parent_edge[node.0] as usize),
            )
        })
    }

    /// The first hop (neighbor of the source) on the way to `dst`, or `None`
    /// if unreachable or `dst` is the source. O(1): reads the dense table.
    #[must_use]
    pub fn next_hop(&self, dst: NodeId) -> Option<(NodeId, EdgeId)> {
        let n = self.first_hop_node[dst.0];
        (n != NONE).then(|| {
            (
                NodeId(n as usize),
                EdgeId(self.first_hop_edge[dst.0] as usize),
            )
        })
    }

    /// The union of tree edges reaching every node in `targets` — a
    /// source-rooted multicast tree restricted to the interested members.
    #[must_use]
    pub fn tree_mask(&self, targets: &[NodeId]) -> EdgeMask {
        let mut mask = EdgeMask::EMPTY;
        for &t in targets {
            if !self.reaches(t) {
                continue;
            }
            let mut cur = t.0;
            while cur != self.src.0 {
                let p = self.parent_node[cur];
                if p == NONE {
                    break;
                }
                let e = EdgeId(self.parent_edge[cur] as usize);
                if mask.contains(e) {
                    break; // the rest of the branch is already in the tree
                }
                mask.insert(e);
                cur = p as usize;
            }
        }
        mask
    }

    /// Fills the dense first-hop table from the parent pointers in O(n)
    /// amortized, resolving each chain once with path compression.
    fn fill_first_hops(&mut self, stack: &mut Vec<u32>) {
        let n = self.dist.len();
        let src = self.src.0 as u32;
        self.first_hop_node.clear();
        self.first_hop_node.resize(n, NONE);
        self.first_hop_edge.clear();
        self.first_hop_edge.resize(n, NONE);
        for v in 0..n as u32 {
            if v == src || self.parent_node[v as usize] == NONE {
                continue; // the source itself, or unreachable
            }
            stack.clear();
            let mut cur = v;
            // Walk up until a node with a known first hop, or a child of the
            // source (its first hop is itself).
            while self.first_hop_node[cur as usize] == NONE && self.parent_node[cur as usize] != src
            {
                stack.push(cur);
                cur = self.parent_node[cur as usize];
            }
            let (hop_n, hop_e) = if self.parent_node[cur as usize] == src
                && self.first_hop_node[cur as usize] == NONE
            {
                (cur, self.parent_edge[cur as usize])
            } else {
                (
                    self.first_hop_node[cur as usize],
                    self.first_hop_edge[cur as usize],
                )
            };
            self.first_hop_node[cur as usize] = hop_n;
            self.first_hop_edge[cur as usize] = hop_e;
            for &w in stack.iter() {
                self.first_hop_node[w as usize] = hop_n;
                self.first_hop_edge[w as usize] = hop_e;
            }
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance, tie-broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl std::fmt::Debug for HeapEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HeapEntry({}, n{})", self.dist, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_with;

    /// A 6-node graph: a cheap long chain 0-1-2-5 (cost 3) and an expensive
    /// direct edge 0-5 (cost 10), plus a pendant 3-4 component.
    fn g() -> Graph {
        let mut g = Graph::new(6);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(5), 1.0);
        g.add_edge(NodeId(0), NodeId(5), 10.0);
        g.add_edge(NodeId(3), NodeId(4), 1.0);
        g
    }

    #[test]
    fn snapshot_mirrors_graph_shape() {
        let graph = g();
        let snap = graph.freeze();
        assert_eq!(snap.node_count(), graph.node_count());
        assert_eq!(snap.edge_count(), graph.edge_count());
        for u in graph.nodes() {
            assert_eq!(snap.degree(u), graph.degree(u));
            let a: Vec<_> = snap.neighbors(u).collect();
            let b: Vec<_> = graph.neighbors(u).collect();
            assert_eq!(a, b, "neighbor order must be preserved");
        }
        for e in graph.edges() {
            assert_eq!(snap.weight(e), graph.weight(e));
            assert_eq!(snap.endpoints(e), graph.endpoints(e));
        }
    }

    #[test]
    fn spt_matches_graph_dijkstra() {
        let graph = g();
        let snap = graph.freeze();
        let mut scratch = SptScratch::new();
        for src in graph.nodes() {
            let reference = dijkstra_with(&graph, src, |e| graph.weight(e));
            let spt = snap.spt(src, &mut scratch);
            for v in graph.nodes() {
                assert_eq!(spt.dist(v), reference.dist(v), "dist {src}->{v}");
                assert_eq!(spt.parent(v), reference.parent(v), "parent {src}->{v}");
                assert_eq!(
                    spt.next_hop(v),
                    reference.next_hop(v),
                    "next_hop {src}->{v}"
                );
            }
        }
    }

    #[test]
    fn spt_cost_filter_excludes_edges() {
        let graph = g();
        let snap = graph.freeze();
        let mut scratch = SptScratch::new();
        // Down the chain's middle edge: forced onto the direct 0-5 edge.
        let spt = snap.spt_with(
            NodeId(0),
            |e| {
                if e == EdgeId(1) {
                    f64::INFINITY
                } else {
                    snap.weight(e)
                }
            },
            &mut scratch,
        );
        assert_eq!(spt.dist(NodeId(5)), Some(10.0));
        assert_eq!(spt.next_hop(NodeId(5)), Some((NodeId(5), EdgeId(3))));
    }

    #[test]
    fn next_hop_table_is_dense_and_correct() {
        let graph = g();
        let snap = graph.freeze();
        let mut scratch = SptScratch::new();
        let spt = snap.spt(NodeId(0), &mut scratch);
        // All of 1, 2, 5 route via neighbor 1 on edge 0.
        for dst in [NodeId(1), NodeId(2), NodeId(5)] {
            assert_eq!(spt.next_hop(dst), Some((NodeId(1), EdgeId(0))));
        }
        assert_eq!(spt.next_hop(NodeId(0)), None, "no hop to self");
        assert_eq!(spt.next_hop(NodeId(4)), None, "no hop to unreachable");
    }

    #[test]
    fn tree_mask_matches_graph_version() {
        let graph = g();
        let snap = graph.freeze();
        let mut scratch = SptScratch::new();
        let spt = snap.spt(NodeId(0), &mut scratch);
        let reference = dijkstra_with(&graph, NodeId(0), |e| graph.weight(e));
        let targets = [NodeId(2), NodeId(5)];
        assert_eq!(spt.tree_mask(&targets), reference.tree_mask(&targets));
    }

    #[test]
    fn spt_into_reuses_allocations() {
        let graph = g();
        let snap = graph.freeze();
        let mut scratch = SptScratch::new();
        let mut spt = Spt::empty();
        snap.spt_with_into(NodeId(0), |e| snap.weight(e), &mut scratch, &mut spt);
        let first = spt.dist(NodeId(5));
        snap.spt_with_into(NodeId(5), |e| snap.weight(e), &mut scratch, &mut spt);
        assert_eq!(spt.src(), NodeId(5));
        assert_eq!(spt.dist(NodeId(0)), first, "symmetric distance");
        assert_eq!(spt.next_hop(NodeId(0)), Some((NodeId(2), EdgeId(2))));
    }
}
