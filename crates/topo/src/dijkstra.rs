//! Shortest paths over the overlay topology (the basis of link-state
//! routing, multicast trees, and anycast target selection).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, EdgeMask, Graph, NodeId};

/// A single path through the overlay: the nodes visited and the edges taken.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Nodes in order, starting at the source and ending at the destination.
    pub nodes: Vec<NodeId>,
    /// Edges in order; `edges.len() == nodes.len() - 1`.
    pub edges: Vec<EdgeId>,
    /// Total cost of the path.
    pub cost: f64,
}

impl Path {
    /// The trivial path at a single node.
    #[must_use]
    pub fn trivial(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            edges: Vec::new(),
            cost: 0.0,
        }
    }

    /// Number of hops (edges).
    #[must_use]
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// The edge mask stamping exactly this path.
    #[must_use]
    pub fn mask(&self) -> EdgeMask {
        self.edges.iter().copied().collect()
    }

    /// The destination node.
    ///
    /// # Panics
    ///
    /// Never panics: a path always has at least one node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        *self.nodes.last().expect("path is never empty")
    }
}

/// The shortest-path tree from one source, as produced by [`dijkstra`].
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    src: NodeId,
    dist: Vec<f64>,
    /// For each node, the (parent node, edge to parent) on the tree.
    parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// The source this tree was computed from.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Distance to `node`, or `None` if unreachable.
    #[must_use]
    pub fn dist(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.0];
        d.is_finite().then_some(d)
    }

    /// Whether `node` is reachable from the source.
    #[must_use]
    pub fn reaches(&self, node: NodeId) -> bool {
        self.dist[node.0].is_finite()
    }

    /// The tree parent of `node`: the previous node on its shortest path and
    /// the edge connecting them. `None` for the source and unreachable nodes.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[node.0]
    }

    /// The first hop (neighbor of the source) on the way to `dst`, or `None`
    /// if unreachable or `dst` is the source. This is what a link-state
    /// forwarding table stores.
    #[must_use]
    pub fn next_hop(&self, dst: NodeId) -> Option<(NodeId, EdgeId)> {
        if dst == self.src || !self.reaches(dst) {
            return None;
        }
        let mut cur = dst;
        let mut hop = self.parent[cur.0]?;
        while hop.0 != self.src {
            cur = hop.0;
            hop = self.parent[cur.0]?;
        }
        // `hop` is (src, edge src->cur); report the neighbor, i.e. `cur`.
        Some((cur, hop.1))
    }

    /// Reconstructs the full path to `dst`, or `None` if unreachable.
    #[must_use]
    pub fn path_to(&self, dst: NodeId) -> Option<Path> {
        if !self.reaches(dst) {
            return None;
        }
        let mut nodes = vec![dst];
        let mut edges = Vec::new();
        let mut cur = dst;
        while cur != self.src {
            let (p, e) = self.parent[cur.0]?;
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path {
            nodes,
            edges,
            cost: self.dist[dst.0],
        })
    }

    /// The union of tree edges reaching every node in `targets` — a
    /// source-rooted multicast tree restricted to the interested members.
    #[must_use]
    pub fn tree_mask(&self, targets: &[NodeId]) -> EdgeMask {
        let mut mask = EdgeMask::EMPTY;
        for &t in targets {
            if !self.reaches(t) {
                continue;
            }
            let mut cur = t;
            while cur != self.src {
                let Some((p, e)) = self.parent[cur.0] else {
                    break;
                };
                if mask.contains(e) {
                    break; // the rest of the branch is already in the tree
                }
                mask.insert(e);
                cur = p;
            }
        }
        mask
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance, tie-broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Runs Dijkstra's algorithm from `src` using the graph's edge weights.
///
/// # Panics
///
/// Panics if `src` is out of range.
#[must_use]
pub fn dijkstra(graph: &Graph, src: NodeId) -> ShortestPaths {
    dijkstra_with(graph, src, |e| graph.weight(e))
}

/// Runs Dijkstra's algorithm with a custom per-edge cost. Edges whose cost is
/// `f64::INFINITY` are treated as absent (e.g. links currently down), as are
/// edges outside any mask the caller encodes into the cost function.
///
/// # Panics
///
/// Panics if `src` is out of range or a cost is negative/NaN.
#[must_use]
pub fn dijkstra_with<F: Fn(EdgeId) -> f64>(graph: &Graph, src: NodeId, cost: F) -> ShortestPaths {
    assert!(src.0 < graph.node_count(), "source out of range");
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.0] {
            continue;
        }
        for (v, e) in graph.neighbors(u) {
            let w = cost(e);
            if w == f64::INFINITY {
                continue;
            }
            assert!(w >= 0.0 && !w.is_nan(), "negative or NaN edge cost");
            let nd = d + w;
            // Deterministic tie-break: keep the lower-indexed parent edge.
            if nd < dist[v.0] || (nd == dist[v.0] && parent[v.0].is_some_and(|(_, pe)| e.0 < pe.0))
            {
                dist[v.0] = nd;
                parent[v.0] = Some((u, e));
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPaths { src, dist, parent }
}

/// Shortest path between two nodes, or `None` if disconnected.
#[must_use]
pub fn shortest_path(graph: &Graph, src: NodeId, dst: NodeId) -> Option<Path> {
    if src == dst {
        return Some(Path::trivial(src));
    }
    dijkstra(graph, src).path_to(dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 6-node graph: a cheap long chain 0-1-2-5 (cost 3) and an expensive
    /// direct edge 0-5 (cost 10), plus a pendant 3-4 component.
    fn g() -> Graph {
        let mut g = Graph::new(6);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(5), 1.0);
        g.add_edge(NodeId(0), NodeId(5), 10.0);
        g.add_edge(NodeId(3), NodeId(4), 1.0);
        g
    }

    #[test]
    fn finds_cheapest_path_not_fewest_hops() {
        let p = shortest_path(&g(), NodeId(0), NodeId(5)).unwrap();
        assert_eq!(p.cost, 3.0);
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(5)]);
        assert_eq!(p.hops(), 3);
    }

    #[test]
    fn trivial_and_unreachable() {
        let g = g();
        let p = shortest_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.cost, 0.0);
        assert!(shortest_path(&g, NodeId(0), NodeId(3)).is_none());
        let sp = dijkstra(&g, NodeId(0));
        assert!(!sp.reaches(NodeId(4)));
        assert_eq!(sp.dist(NodeId(4)), None);
    }

    #[test]
    fn next_hop_matches_path() {
        let sp = dijkstra(&g(), NodeId(0));
        let (nh, edge) = sp.next_hop(NodeId(5)).unwrap();
        assert_eq!(nh, NodeId(1));
        assert_eq!(edge, EdgeId(0));
        assert_eq!(sp.next_hop(NodeId(0)), None, "no next hop to self");
        assert_eq!(sp.next_hop(NodeId(4)), None, "no next hop to unreachable");
    }

    #[test]
    fn custom_cost_can_exclude_edges() {
        let g = g();
        // Down the chain's middle edge: forced onto the direct expensive edge.
        let sp = dijkstra_with(&g, NodeId(0), |e| {
            if e == EdgeId(1) {
                f64::INFINITY
            } else {
                g.weight(e)
            }
        });
        let p = sp.path_to(NodeId(5)).unwrap();
        assert_eq!(p.edges, vec![EdgeId(3)]);
        assert_eq!(p.cost, 10.0);
    }

    #[test]
    fn path_mask_round_trips() {
        let p = shortest_path(&g(), NodeId(0), NodeId(5)).unwrap();
        let mask = p.mask();
        assert_eq!(mask.len(), 3);
        for e in &p.edges {
            assert!(mask.contains(*e));
        }
    }

    #[test]
    fn tree_mask_covers_targets_without_redundancy() {
        // Star: 0 center, leaves 1..4, plus leaf-to-leaf edge that the SPT
        // must not use.
        let mut g = Graph::new(5);
        let mut spokes = Vec::new();
        for i in 1..5 {
            spokes.push(g.add_edge(NodeId(0), NodeId(i), 1.0));
        }
        g.add_edge(NodeId(1), NodeId(2), 5.0);
        let sp = dijkstra(&g, NodeId(0));
        let mask = sp.tree_mask(&[NodeId(1), NodeId(3)]);
        assert_eq!(mask.len(), 2);
        assert!(mask.contains(spokes[0]));
        assert!(mask.contains(spokes[2]));
        // Targets sharing a branch do not duplicate edges.
        let chain_mask = {
            let mut c = Graph::new(4);
            let e0 = c.add_edge(NodeId(0), NodeId(1), 1.0);
            let e1 = c.add_edge(NodeId(1), NodeId(2), 1.0);
            let e2 = c.add_edge(NodeId(2), NodeId(3), 1.0);
            let sp = dijkstra(&c, NodeId(0));
            let m = sp.tree_mask(&[NodeId(2), NodeId(3)]);
            assert!(m.contains(e0) && m.contains(e1) && m.contains(e2));
            m
        };
        assert_eq!(chain_mask.len(), 3);
    }

    #[test]
    fn deterministic_among_equal_cost_paths() {
        // Two equal-cost 2-hop routes 0-1-3 and 0-2-3; the tie-break must be
        // stable run to run.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let p1 = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        let p2 = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.cost, 2.0);
    }
}
