//! Overlay multicast trees and anycast target selection.
//!
//! "All of the overlay nodes share information about whether they have
//! clients interested in a particular multicast group, making it possible to
//! disseminate multicast messages to all relevant nodes or to select the
//! best target for a given anycast message" (§II-B). Given the member set,
//! this module builds the source-rooted shortest-path tree spanning the
//! members, and picks the nearest member for anycast.

use crate::dijkstra::dijkstra;
use crate::graph::{EdgeMask, Graph, NodeId};

/// The multicast tree rooted at `source` reaching every node in `members`
/// (members unreachable from the source are skipped). The result is an edge
/// mask suitable for source-based routing of the multicast flow.
///
/// Only receivers join the group; any node may send to it, so the tree is
/// recomputed per source. The tree is the union of shortest paths, which
/// shares branches and is therefore far cheaper than per-receiver unicast.
#[must_use]
pub fn multicast_tree(graph: &Graph, source: NodeId, members: &[NodeId]) -> EdgeMask {
    let sp = dijkstra(graph, source);
    sp.tree_mask(members)
}

/// The cost of reaching each member by unicast along shortest paths — the
/// baseline the paper's multicast saves over (sum of per-receiver path
/// weights, shared links counted once per receiver).
#[must_use]
pub fn unicast_mesh_cost(graph: &Graph, source: NodeId, members: &[NodeId]) -> f64 {
    let sp = dijkstra(graph, source);
    members.iter().filter_map(|&m| sp.dist(m)).sum()
}

/// Picks the best (closest by path cost) member of `members` from the
/// perspective of `from`, for anycast delivery; ties break to the lowest
/// node id. Returns `None` if no member is reachable.
#[must_use]
pub fn anycast_target(graph: &Graph, from: NodeId, members: &[NodeId]) -> Option<NodeId> {
    let sp = dijkstra(graph, from);
    members
        .iter()
        .filter_map(|&m| sp.dist(m).map(|d| (d, m)))
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)))
        .map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A star with a long tail:
    /// center 0; leaves 1,2,3 at cost 1; chain 3-4-5 extending outward.
    fn star_tail() -> Graph {
        let mut g = Graph::new(6);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(3), 1.0);
        g.add_edge(NodeId(3), NodeId(4), 1.0);
        g.add_edge(NodeId(4), NodeId(5), 1.0);
        g
    }

    #[test]
    fn tree_spans_exactly_the_needed_branches() {
        let g = star_tail();
        let tree = multicast_tree(&g, NodeId(0), &[NodeId(1), NodeId(5)]);
        assert_eq!(tree.len(), 4, "edges 0-1, 0-3, 3-4, 4-5");
        assert!(!tree.contains(g.edge_between(NodeId(0), NodeId(2)).unwrap()));
    }

    #[test]
    fn tree_shares_common_branches() {
        let g = star_tail();
        // Members 4 and 5 share the 0-3-4 prefix: the tree uses edges
        // {0-3, 3-4, 4-5} at cost 3, while per-receiver unicast pays 2+3=5.
        let tree = multicast_tree(&g, NodeId(0), &[NodeId(4), NodeId(5)]);
        assert_eq!(g.mask_weight(&tree), 3.0);
        assert_eq!(
            unicast_mesh_cost(&g, NodeId(0), &[NodeId(4), NodeId(5)]),
            5.0
        );
    }

    #[test]
    fn tree_savings_grow_with_group_size() {
        let g = star_tail();
        let members = [NodeId(1), NodeId(2), NodeId(3), NodeId(4), NodeId(5)];
        let tree_cost = g.mask_weight(&multicast_tree(&g, NodeId(0), &members));
        let mesh_cost = unicast_mesh_cost(&g, NodeId(0), &members);
        assert_eq!(tree_cost, 5.0, "every edge exactly once");
        assert_eq!(mesh_cost, 1.0 + 1.0 + 1.0 + 2.0 + 3.0);
        assert!(tree_cost < mesh_cost);
    }

    #[test]
    fn empty_membership_gives_empty_tree() {
        let g = star_tail();
        assert!(multicast_tree(&g, NodeId(0), &[]).is_empty());
        assert_eq!(unicast_mesh_cost(&g, NodeId(0), &[]), 0.0);
    }

    #[test]
    fn unreachable_members_are_skipped() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        // 2,3 form a separate component.
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let tree = multicast_tree(&g, NodeId(0), &[NodeId(1), NodeId(3)]);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn anycast_picks_nearest_member() {
        let g = star_tail();
        assert_eq!(
            anycast_target(&g, NodeId(5), &[NodeId(1), NodeId(4)]),
            Some(NodeId(4))
        );
        assert_eq!(
            anycast_target(&g, NodeId(0), &[NodeId(5), NodeId(2)]),
            Some(NodeId(2))
        );
        // Sender that is itself a member selects itself (distance zero).
        assert_eq!(
            anycast_target(&g, NodeId(2), &[NodeId(2), NodeId(1)]),
            Some(NodeId(2))
        );
    }

    #[test]
    fn anycast_tie_breaks_to_lowest_id() {
        let g = star_tail();
        // 1 and 2 are both at distance 1 from 0.
        assert_eq!(
            anycast_target(&g, NodeId(0), &[NodeId(2), NodeId(1)]),
            Some(NodeId(1))
        );
    }

    #[test]
    fn anycast_none_when_unreachable() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        assert_eq!(anycast_target(&g, NodeId(0), &[NodeId(2)]), None);
        assert_eq!(anycast_target(&g, NodeId(0), &[]), None);
    }
}
