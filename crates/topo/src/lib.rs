//! # son-topo — graph algorithms for structured overlay routing
//!
//! The routing-level machinery of the paper's overlay node software
//! architecture, expressed as pure graph algorithms over a small overlay
//! topology:
//!
//! * [`graph`] — the overlay [`Graph`] and the unified source-route
//!   [`EdgeMask`] (one bit per overlay link, §II-B).
//! * [`mod@dijkstra`] — shortest paths / shortest-path trees (link-state
//!   routing, multicast trees).
//! * [`disjoint`] — minimum-cost k node-disjoint paths (intrusion-tolerant
//!   redundant dissemination, §IV-B).
//! * [`dissemination`] — dissemination graphs with targeted redundancy at
//!   the problematic ends (§V-A), and constrained flooding.
//! * [`multicast`] — source-rooted multicast trees over group members and
//!   anycast target selection (§II-B, §III-B).
//! * [`spanner`] — the overlay topology designer: short links, sparse,
//!   k-vertex-connected (§II-A).
//! * [`kshortest`] — Yen's k loopless shortest paths, for "sets of
//!   potentially overlapping paths" \[13\] (related work).
//!
//! ## Example: stamping a packet with two disjoint paths
//!
//! ```
//! use son_topo::graph::{Graph, NodeId};
//! use son_topo::disjoint::k_node_disjoint_paths;
//!
//! let mut g = Graph::new(4);
//! g.add_edge(NodeId(0), NodeId(1), 10.0);
//! g.add_edge(NodeId(1), NodeId(3), 10.0);
//! g.add_edge(NodeId(0), NodeId(2), 12.0);
//! g.add_edge(NodeId(2), NodeId(3), 12.0);
//!
//! let dp = k_node_disjoint_paths(&g, NodeId(0), NodeId(3), 2);
//! assert_eq!(dp.len(), 2);
//! let stamp = dp.mask(); // goes into the packet header
//! assert_eq!(stamp.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csr;
pub mod dijkstra;
pub mod disjoint;
pub mod dissemination;
pub mod graph;
pub mod kshortest;
pub mod multicast;
pub mod spanner;

pub use csr::{Spt, SptScratch, TopoSnapshot};
pub use dijkstra::{dijkstra, dijkstra_with, shortest_path, Path, ShortestPaths};
pub use disjoint::{are_node_disjoint, k_node_disjoint_paths, DisjointPaths};
pub use dissemination::{
    constrained_flooding, destination_problematic_graph, robust_dissemination_graph,
    source_problematic_graph,
};
pub use graph::{EdgeId, EdgeMask, Graph, NodeId};
pub use kshortest::{k_shortest_paths, overlapping_paths_mask};
pub use multicast::{anycast_target, multicast_tree, unicast_mesh_cost};
pub use spanner::{candidates_from_coordinates, design_overlay, CandidateLink, DesignError};
