//! Dissemination graphs: targeted-redundancy subgraphs for source-based
//! routing (§V-A).
//!
//! "In contrast to disjoint paths, which add redundancy uniformly throughout
//! the network, dissemination graphs can be tailored based on current
//! network conditions to add targeted redundancy in problematic areas of the
//! network." The construction follows the key insight of Babay et al.
//! (ICDCS 2017 \[2\]): almost all failures that defeat two disjoint paths are
//! concentrated around the *source* or the *destination*, so a graph that
//! fans out around both endpoints and stays narrow in the middle buys nearly
//! all of constrained flooding's reliability at a fraction of its cost.

use crate::dijkstra::{dijkstra, dijkstra_with};
use crate::disjoint::k_node_disjoint_paths;
use crate::graph::{EdgeMask, Graph, NodeId};

/// How many neighbors the problematic-end fan-out engages.
pub const DEFAULT_FANOUT: usize = 3;

/// A source-problematic dissemination graph: fans out from `src` to up to
/// `fanout` of its cheapest neighbors, then routes each neighbor to `dst`
/// along its shortest path avoiding `src`. Includes the plain shortest path
/// as well.
///
/// Use when current network conditions show loss concentrated around the
/// source's area.
#[must_use]
pub fn source_problematic_graph(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    fanout: usize,
) -> EdgeMask {
    let mut mask = base_paths_mask(graph, src, dst);
    // Cheapest neighbors of src first (deterministic order).
    let mut neighbors: Vec<_> = graph.neighbors(src).collect();
    neighbors.sort_by(|a, b| {
        graph
            .weight(a.1)
            .partial_cmp(&graph.weight(b.1))
            .expect("finite")
            .then(a.0.cmp(&b.0))
    });
    // Shortest-path forest toward dst avoiding src, so redundancy around the
    // source cannot collapse back through it.
    let sp_to_dst = dijkstra_with(graph, dst, |e| {
        let (a, b) = graph.endpoints(e);
        if a == src || b == src {
            f64::INFINITY
        } else {
            graph.weight(e)
        }
    });
    for (n, e) in neighbors.into_iter().take(fanout) {
        if let Some(path) = sp_to_dst.path_to(n) {
            mask.insert(e);
            mask |= path.mask();
        }
    }
    mask
}

/// A destination-problematic dissemination graph: the mirror image of
/// [`source_problematic_graph`] — routes fan in to `dst` through up to
/// `fanout` of its cheapest neighbors.
#[must_use]
pub fn destination_problematic_graph(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    fanout: usize,
) -> EdgeMask {
    // Symmetry: an undirected dissemination graph from dst's perspective.
    source_problematic_graph(graph, dst, src, fanout)
}

/// The robust source-destination dissemination graph: the union of the
/// source- and destination-problematic graphs. Per \[2\], this covers the
/// overwhelming majority of cases where two disjoint paths are not enough,
/// at roughly ⅔ the cost of adding a third disjoint path everywhere.
#[must_use]
pub fn robust_dissemination_graph(graph: &Graph, src: NodeId, dst: NodeId) -> EdgeMask {
    source_problematic_graph(graph, src, dst, DEFAULT_FANOUT)
        | destination_problematic_graph(graph, src, dst, DEFAULT_FANOUT)
}

/// The two-disjoint-paths baseline mask used inside dissemination graphs.
fn base_paths_mask(graph: &Graph, src: NodeId, dst: NodeId) -> EdgeMask {
    k_node_disjoint_paths(graph, src, dst, 2).mask()
}

/// The constrained-flooding mask: every overlay link (§II-B). Messages
/// flood the whole topology and are de-duplicated at each node; delivery is
/// guaranteed whenever *any* correct path exists.
#[must_use]
pub fn constrained_flooding(graph: &Graph) -> EdgeMask {
    graph.full_mask()
}

/// Utility: does `mask` connect `src` to `dst` when `blocked` nodes refuse
/// to forward?
#[must_use]
pub fn connects(
    graph: &Graph,
    mask: &EdgeMask,
    src: NodeId,
    dst: NodeId,
    blocked: &[NodeId],
) -> bool {
    graph.reachable_through(src, mask, blocked).contains(&dst)
}

/// Utility: the latency of the best path from `src` to `dst` restricted to
/// `mask`, excluding `blocked` intermediate nodes; `None` if disconnected.
#[must_use]
pub fn best_latency_within(
    graph: &Graph,
    mask: &EdgeMask,
    src: NodeId,
    dst: NodeId,
    blocked: &[NodeId],
) -> Option<f64> {
    let sp = dijkstra_with(graph, src, |e| {
        let (a, b) = graph.endpoints(e);
        let interior_blocked = |v: NodeId| v != src && v != dst && blocked.contains(&v);
        if !mask.contains(e) || interior_blocked(a) || interior_blocked(b) {
            f64::INFINITY
        } else {
            graph.weight(e)
        }
    });
    sp.dist(dst)
}

/// Utility: shortest-path latency ignoring masks (for cost/stretch ratios).
#[must_use]
pub fn direct_latency(graph: &Graph, src: NodeId, dst: NodeId) -> Option<f64> {
    dijkstra(graph, src).dist(dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3x3 grid: src=0 (corner) to dst=8 (opposite corner).
    ///
    /// ```text
    /// 0 - 1 - 2
    /// |   |   |
    /// 3 - 4 - 5
    /// |   |   |
    /// 6 - 7 - 8
    /// ```
    fn grid() -> Graph {
        let mut g = Graph::new(9);
        for r in 0..3 {
            for c in 0..3 {
                let v = 3 * r + c;
                if c < 2 {
                    g.add_edge(NodeId(v), NodeId(v + 1), 1.0);
                }
                if r < 2 {
                    g.add_edge(NodeId(v), NodeId(v + 3), 1.0);
                }
            }
        }
        g
    }

    #[test]
    fn source_graph_fans_out_around_source() {
        let g = grid();
        let mask = source_problematic_graph(&g, NodeId(0), NodeId(8), 2);
        // Both of src's edges must be engaged.
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e03 = g.edge_between(NodeId(0), NodeId(3)).unwrap();
        assert!(mask.contains(e01) && mask.contains(e03));
        assert!(connects(&g, &mask, NodeId(0), NodeId(8), &[]));
    }

    #[test]
    fn source_graph_survives_loss_of_either_first_hop() {
        let g = grid();
        let mask = source_problematic_graph(&g, NodeId(0), NodeId(8), 2);
        for bad in [NodeId(1), NodeId(3)] {
            assert!(
                connects(&g, &mask, NodeId(0), NodeId(8), &[bad]),
                "source fan-out should survive losing {bad:?}"
            );
        }
    }

    #[test]
    fn robust_graph_is_superset_of_two_disjoint_paths() {
        let g = grid();
        let robust = robust_dissemination_graph(&g, NodeId(0), NodeId(8));
        let two = k_node_disjoint_paths(&g, NodeId(0), NodeId(8), 2).mask();
        assert!(robust.is_superset(&two));
    }

    #[test]
    fn robust_graph_is_cheaper_than_flooding() {
        let g = grid();
        let robust = robust_dissemination_graph(&g, NodeId(0), NodeId(8));
        let flood = constrained_flooding(&g);
        assert!(
            robust.len() < flood.len(),
            "{} !< {}",
            robust.len(),
            flood.len()
        );
        assert_eq!(flood.len(), g.edge_count());
    }

    #[test]
    fn flooding_connects_iff_correct_path_exists() {
        let g = grid();
        let flood = constrained_flooding(&g);
        // Cutting the full middle row+center disconnects corner to corner.
        assert!(connects(&g, &flood, NodeId(0), NodeId(8), &[NodeId(4)]));
        assert!(connects(
            &g,
            &flood,
            NodeId(0),
            NodeId(8),
            &[NodeId(1), NodeId(4)]
        ));
        assert!(!connects(
            &g,
            &flood,
            NodeId(0),
            NodeId(8),
            &[NodeId(2), NodeId(4), NodeId(6)] // full anti-diagonal cut
        ));
    }

    #[test]
    fn best_latency_within_respects_mask_and_blocks() {
        let g = grid();
        let full = constrained_flooding(&g);
        assert_eq!(
            best_latency_within(&g, &full, NodeId(0), NodeId(8), &[]),
            Some(4.0)
        );
        // Block the center: still 4 hops around the edge.
        assert_eq!(
            best_latency_within(&g, &full, NodeId(0), NodeId(8), &[NodeId(4)]),
            Some(4.0)
        );
        // Restrict to a single path mask and block a node on it.
        let one = k_node_disjoint_paths(&g, NodeId(0), NodeId(8), 1).mask();
        let on_path: Vec<NodeId> = one
            .iter()
            .flat_map(|e| {
                let (a, b) = g.endpoints(e);
                [a, b]
            })
            .filter(|&v| v != NodeId(0) && v != NodeId(8))
            .collect();
        assert_eq!(
            best_latency_within(&g, &one, NodeId(0), NodeId(8), &on_path[..1]),
            None
        );
    }

    #[test]
    fn direct_latency_matches_grid_distance() {
        let g = grid();
        assert_eq!(direct_latency(&g, NodeId(0), NodeId(8)), Some(4.0));
        assert_eq!(direct_latency(&g, NodeId(0), NodeId(0)), Some(0.0));
    }

    #[test]
    fn destination_graph_mirrors_source_graph() {
        let g = grid();
        let s = source_problematic_graph(&g, NodeId(0), NodeId(8), 2);
        let d = destination_problematic_graph(&g, NodeId(8), NodeId(0), 2);
        assert_eq!(s, d, "undirected construction is symmetric");
    }

    #[test]
    fn fanout_zero_degenerates_to_two_disjoint_paths() {
        let g = grid();
        let mask = source_problematic_graph(&g, NodeId(0), NodeId(8), 0);
        let two = k_node_disjoint_paths(&g, NodeId(0), NodeId(8), 2).mask();
        assert_eq!(mask, two);
    }
}
