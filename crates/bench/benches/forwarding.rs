//! Per-packet data-plane costs: the work one daemon does per forwarded
//! packet. The paper claims the network-stack traversal adds "less than 1ms
//! additional latency per intermediate overlay node" (§II-D) — on modern
//! hardware the protocol work measured here is tens of nanoseconds to a few
//! microseconds per packet.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::addr::{Destination, FlowKey, OverlayAddr};
use son_overlay::auth::KeyRegistry;
use son_overlay::dedup::DedupTable;
use son_overlay::linkproto::{
    BestEffortLink, FecLink, ItPriorityLink, LinkProto, RealtimeLink, ReliableLink,
};
use son_overlay::packet::{DataPacket, LinkCtl};
use son_overlay::service::FecParams;
use son_overlay::service::{FlowSpec, RealtimeParams};
use son_topo::NodeId;

fn pkt(seq: u64) -> DataPacket {
    DataPacket {
        flow: FlowKey::new(
            OverlayAddr::new(NodeId(0), 1),
            Destination::Unicast(OverlayAddr::new(NodeId(9), 1)),
        ),
        flow_seq: seq,
        origin: NodeId(0),
        spec: FlowSpec::reliable(),
        mask: None,
        resolved_dst: None,
        link_seq: seq,
        created_at: SimTime::ZERO,
        size: 1316,
        payload: Bytes::new(),
        ttl: 32,
        auth_tag: 0,
        trace: None,
    }
}

fn bench_forwarding(c: &mut Criterion) {
    c.bench_function("best_effort_send_recv", |b| {
        let mut link = BestEffortLink::new();
        let mut out = Vec::with_capacity(4);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            link.on_send(SimTime::ZERO, pkt(seq), &mut out);
            link.on_data(SimTime::ZERO, pkt(seq), &mut out);
            out.clear();
        })
    });

    c.bench_function("reliable_send_ack_cycle", |b| {
        let mut link = ReliableLink::new(SimDuration::from_millis(30));
        let mut out = Vec::with_capacity(8);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            link.on_send(SimTime::ZERO, pkt(seq), &mut out);
            link.on_ctl(
                SimTime::ZERO,
                LinkCtl::ReliableAck {
                    cum: seq,
                    selective: vec![],
                },
                &mut out,
            );
            out.clear();
        })
    });

    c.bench_function("reliable_recv_in_order", |b| {
        let mut link = ReliableLink::new(SimDuration::from_millis(30));
        let mut out = Vec::with_capacity(8);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let mut p = pkt(seq);
            p.link_seq = seq;
            link.on_data(SimTime::ZERO, p, &mut out);
            out.clear();
        })
    });

    c.bench_function("realtime_recv_in_order", |b| {
        let mut link = RealtimeLink::new(RealtimeParams::live_tv());
        let mut out = Vec::with_capacity(8);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let mut p = pkt(seq);
            p.link_seq = seq;
            link.on_data(SimTime::ZERO, p, &mut out);
            out.clear();
        })
    });

    c.bench_function("dedup_first_sighting", |b| {
        let mut table = DedupTable::new();
        let flow = pkt(0).flow;
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            std::hint::black_box(table.first_sighting(flow, seq))
        })
    });

    c.bench_function("it_priority_enqueue_dequeue", |b| {
        // Unpaced: enqueue immediately transmits — the scheduler hot path.
        let mut link = ItPriorityLink::new(64, None);
        let mut out = Vec::with_capacity(8);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            link.on_send(SimTime::ZERO, pkt(seq), &mut out);
            out.clear();
        })
    });

    c.bench_function("fec_send_with_repairs", |b| {
        let mut link = FecLink::new(FecParams::light());
        let mut out = Vec::with_capacity(16);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let mut p = pkt(seq);
            p.spec.link = son_overlay::LinkService::Fec(FecParams::light());
            link.on_send(SimTime::ZERO, p, &mut out);
            out.clear();
        })
    });

    c.bench_function("auth_tag_and_verify", |b| {
        let reg = KeyRegistry::new(12, 0x5eed);
        let flow = pkt(0).flow;
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let tag = reg.tag(NodeId(0), flow, seq, 1316);
            std::hint::black_box(reg.verify(NodeId(0), flow, seq, 1316, tag))
        })
    });
}

criterion_group!(benches, bench_forwarding);
criterion_main!(benches);
