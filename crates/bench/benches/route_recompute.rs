//! Route-recomputation cost at 16/64/256 overlay nodes: what one node pays
//! per real topology change (SPT rebuild into the dense next-hop table),
//! per flow setup (k-disjoint paths, dissemination graph), and per snapshot
//! freeze — the sub-second rerouting budget, measured.
//!
//! `spt_graph_hashmap_*` is the pre-snapshot Dijkstra over the pointer-based
//! `Graph`; `spt_csr_dense_*` is the CSR index Dijkstra with reused scratch
//! buffers that [`son_overlay::routing::Forwarding`] now runs.

use criterion::{criterion_group, criterion_main, Criterion};
use son_bench::ring_with_chords;
use son_topo::csr::{Spt, SptScratch};
use son_topo::{dijkstra, k_node_disjoint_paths, robust_dissemination_graph, NodeId};

fn bench_route_recompute(c: &mut Criterion) {
    for (n, chord_every) in [(16usize, 4usize), (64, 8), (256, 0)] {
        let g = ring_with_chords(n, 10.0, chord_every);
        let snap = g.freeze();
        let mut scratch = SptScratch::new();
        let mut spt = Spt::empty();
        let (src, dst) = (NodeId(0), NodeId(n / 2 - 1));

        c.bench_function(&format!("spt_graph_hashmap_{n}"), |b| {
            b.iter(|| std::hint::black_box(dijkstra(&g, src)))
        });

        c.bench_function(&format!("spt_csr_dense_{n}"), |b| {
            b.iter(|| {
                snap.spt_with_into(src, |e| snap.weight(e), &mut scratch, &mut spt);
                std::hint::black_box(spt.next_hop(dst))
            })
        });

        c.bench_function(&format!("freeze_snapshot_{n}"), |b| {
            b.iter(|| std::hint::black_box(g.freeze()))
        });

        c.bench_function(&format!("k_disjoint_k2_{n}"), |b| {
            b.iter(|| std::hint::black_box(k_node_disjoint_paths(&g, src, dst, 2)))
        });

        c.bench_function(&format!("dissemination_rebuild_{n}"), |b| {
            b.iter(|| std::hint::black_box(robust_dissemination_graph(&g, src, dst)))
        });
    }
}

criterion_group!(benches, bench_route_recompute);
criterion_main!(benches);
