//! Simulator throughput: event-queue operations and whole-deployment
//! event processing rate (how much virtual traffic a host can push).

use criterion::{criterion_group, criterion_main, Criterion};
use son_netsim::event::EventQueue;
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{chain_topology, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
use son_topo::NodeId;

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.schedule(SimTime::from_nanos(t), t);
            std::hint::black_box(q.pop())
        })
    });

    c.bench_function("overlay_5hop_reliable_1s_stream", |b| {
        b.iter(|| {
            let mut sim: Simulation<Wire> = Simulation::new(1);
            let overlay = OverlayBuilder::new(chain_topology(6, 10.0)).build(&mut sim);
            let _rx = sim.add_process(ClientProcess::new(ClientConfig {
                daemon: overlay.daemon(NodeId(5)),
                port: 70,
                joins: vec![],
                flows: vec![],
            }));
            let _tx = sim.add_process(ClientProcess::new(ClientConfig {
                daemon: overlay.daemon(NodeId(0)),
                port: 50,
                joins: vec![],
                flows: vec![ClientFlow {
                    local_flow: 1,
                    dst: Destination::Unicast(OverlayAddr::new(NodeId(5), 70)),
                    spec: FlowSpec::reliable(),
                    workload: Workload::Cbr {
                        size: 1316,
                        interval: SimDuration::from_millis(10),
                        count: 100,
                        start: SimTime::from_millis(100),
                    },
                }],
            }));
            sim.run_until(SimTime::from_secs(2));
            std::hint::black_box(sim.events_processed())
        })
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
