//! Routing-level computation cost on the 12-node continental overlay:
//! the work a node performs at each topology change (sub-second rerouting
//! budget) and at flow setup (source-route stamps).

use criterion::{criterion_group, criterion_main, Criterion};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_overlay::builder::continental_overlay;
use son_topo::{
    dijkstra, k_node_disjoint_paths, multicast_tree, robust_dissemination_graph, EdgeMask, NodeId,
};

fn topo() -> son_topo::Graph {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    continental_overlay(&sc).0
}

fn bench_routing(c: &mut Criterion) {
    let g = topo();
    let (src, dst) = (NodeId(0), NodeId(11));

    c.bench_function("dijkstra_12_city", |b| {
        b.iter(|| std::hint::black_box(dijkstra(&g, src)))
    });

    c.bench_function("disjoint_paths_k2", |b| {
        b.iter(|| std::hint::black_box(k_node_disjoint_paths(&g, src, dst, 2)))
    });

    c.bench_function("disjoint_paths_k3", |b| {
        b.iter(|| std::hint::black_box(k_node_disjoint_paths(&g, src, dst, 3)))
    });

    c.bench_function("dissemination_graph", |b| {
        b.iter(|| std::hint::black_box(robust_dissemination_graph(&g, src, dst)))
    });

    let members: Vec<NodeId> = (1..12).map(NodeId).collect();
    c.bench_function("multicast_tree_11_members", |b| {
        b.iter(|| std::hint::black_box(multicast_tree(&g, src, &members)))
    });

    let mask: EdgeMask = g.full_mask();
    c.bench_function("edge_mask_iterate_full", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for e in mask.iter() {
                n += e.0;
            }
            std::hint::black_box(n)
        })
    });
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
