//! Cross-layer packet conservation: every data packet put on a wire is
//! either delivered to a client or attributed to exactly one drop counter.
//!
//! This is the accounting identity the unified drop taxonomy exists to make
//! checkable: the simulator tags data-plane pipe drops `data.drop.<reason>`
//! (keyed by `DropClass`), and the overlay node counts its own drops under
//! the same `drop.<reason>` names with a `node` label. Summing the ledger
//! against the sender's count must balance exactly — any unattributed loss
//! is a bug in either the instrumentation or the forwarding path.
//!
//! The runs use the Best Effort service: it neither retransmits nor buffers,
//! so each client send corresponds to exactly one end-to-end forwarding
//! attempt and the identity holds packet-for-packet. (Recovery protocols
//! intentionally break per-packet accounting — one send may cross a pipe
//! five times.)

use std::collections::HashMap;

use proptest::prelude::*;
use son_bench::{gather_registry, UnicastRun};
use son_netsim::loss::LossConfig;
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_obs::Registry;
use son_overlay::builder::{chain_topology, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::{Destination, FlowSpec, NodeConfig, OverlayAddr, Wire};
use son_topo::NodeId;

/// Sums the ledger: (delivered to clients, data drops inside pipes, drops
/// at overlay nodes or link protocols).
fn ledger(reg: &Registry) -> (u64, u64, u64) {
    let delivered = reg.counter_total("node.delivered_local");
    let mut pipe_drops = 0;
    let mut node_drops = 0;
    for (desc, v) in reg.counters() {
        if desc.name.starts_with("data.drop.") {
            pipe_drops += v;
        } else if desc.name.starts_with("drop.") && desc.labels.iter().any(|(k, _)| k == "node") {
            node_drops += v;
        }
    }
    (delivered, pipe_drops, node_drops)
}

fn lossy_run(loss_millis: u64, seed: u64, hops: usize, ttl: u8) -> UnicastRun {
    let last = NodeId(hops);
    let mut run = UnicastRun::new(
        chain_topology(hops + 1, 5.0),
        FlowSpec::best_effort(),
        NodeId(0),
        last,
    );
    run.loss = LossConfig::Bernoulli {
        p: loss_millis as f64 / 1000.0,
    };
    run.count = 150;
    run.interval = SimDuration::from_millis(5);
    run.run_for = SimDuration::from_secs(10);
    run.seed = seed;
    run.node_config.ttl = ttl;
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn data_packets_are_conserved_under_loss(
        loss_millis in 0u64..300,
        seed in 0u64..1_000_000,
        hops in 1usize..4,
    ) {
        let run = lossy_run(loss_millis, seed, hops, 32);
        let sent = run.count;
        let out = run.run();
        prop_assert_eq!(out.sent, sent);
        let (delivered, pipe_drops, node_drops) = ledger(&out.registry);
        prop_assert_eq!(
            sent,
            delivered + pipe_drops + node_drops,
            "sent {} != delivered {} + pipe drops {} + node drops {}",
            sent, delivered, pipe_drops, node_drops
        );
    }
}

#[test]
fn ttl_exhaustion_shows_up_in_the_ledger() {
    // A 4-hop chain with a 2-hop budget: every packet that survives the
    // pipes dies of TTL exhaustion at the third node, attributed.
    let run = lossy_run(50, 7, 4, 2);
    let sent = run.count;
    let out = run.run();
    let (delivered, pipe_drops, node_drops) = ledger(&out.registry);
    assert_eq!(delivered, 0, "nothing can cross 4 hops on a 2-hop budget");
    assert!(node_drops > 0, "TTL drops must be attributed");
    assert_eq!(out.registry.counter_total("drop.ttl"), node_drops);
    assert_eq!(sent, delivered + pipe_drops + node_drops);
}

#[test]
fn perfect_run_attributes_nothing() {
    let run = lossy_run(0, 1, 2, 32);
    let sent = run.count;
    let out = run.run();
    let (delivered, pipe_drops, node_drops) = ledger(&out.registry);
    assert_eq!((delivered, pipe_drops, node_drops), (sent, 0, 0));
}

// ---------------------------------------------------------------------------
// Per-FlowKey conservation
//
// The aggregate identity above can hide cross-flow misattribution (flow A's
// drop charged to flow B still balances in total). The `FlowTable` gives
// every daemon per-flow counters labelled with the flow's stable id, so the
// identity must also hold *per FlowKey*, summed over all daemons:
//
//     flow.sent == flow.delivered + flow.dropped
//
// Pipes are lossless here because pipe drops are deliberately not
// flow-attributed (the pipe layer has no flow concept); Best Effort unicast
// keeps the accounting packet-for-packet.
// ---------------------------------------------------------------------------

const PER_FLOW_COUNT: u64 = 60;

/// `sum(flow.sent/delivered/dropped)` over all daemons, grouped by the
/// `flow` label.
fn flow_ledger(reg: &Registry) -> HashMap<String, (u64, u64, u64)> {
    let mut per_flow: HashMap<String, (u64, u64, u64)> = HashMap::new();
    for (desc, v) in reg.counters() {
        let Some((_, label)) = desc.labels.iter().find(|(k, _)| k == "flow") else {
            continue;
        };
        let e = per_flow.entry(label.clone()).or_default();
        match desc.name.as_str() {
            "flow.sent" => e.0 += v,
            "flow.delivered" => e.1 += v,
            "flow.dropped" => e.2 += v,
            _ => {}
        }
    }
    per_flow
}

/// Runs several Best Effort unicast flows from node 0 over a lossless
/// 6-node chain (flow `i` targets `NodeId(dsts[i])` on its own port) and
/// returns the experiment-wide registry.
fn multi_flow_registry(seed: u64, ttl: u8, dsts: &[usize]) -> Registry {
    let nodes = 6;
    let mut sim: Simulation<Wire> = Simulation::new(seed);
    let config = NodeConfig {
        ttl,
        ..NodeConfig::default()
    };
    let overlay = OverlayBuilder::new(chain_topology(nodes, 5.0))
        .node_config(config)
        .build(&mut sim);
    for (i, &dst) in dsts.iter().enumerate() {
        let rx_port = 70 + i as u16;
        sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(dst)),
            port: rx_port,
            joins: vec![],
            flows: vec![],
        }));
        sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(0)),
            port: 50 + i as u16,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(dst), rx_port)),
                spec: FlowSpec::best_effort(),
                workload: Workload::Cbr {
                    size: 600,
                    interval: SimDuration::from_millis(5),
                    count: PER_FLOW_COUNT,
                    start: SimTime::from_millis(500),
                },
            }],
        }));
    }
    sim.run_until(SimTime::from_secs(5));
    gather_registry(&sim, &overlay)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conservation_holds_per_flow_key(
        seed in 0u64..1_000_000,
        ttl in 2u8..6,
        dsts in proptest::collection::vec(1usize..6, 2..5),
    ) {
        let reg = multi_flow_registry(seed, ttl, &dsts);
        let per_flow = flow_ledger(&reg);
        prop_assert_eq!(per_flow.len(), dsts.len(), "one ledger entry per FlowKey");
        let mut total_sent = 0;
        for (flow, &(sent, delivered, dropped)) in &per_flow {
            prop_assert_eq!(
                sent,
                delivered + dropped,
                "flow {}: sent {} != delivered {} + dropped {}",
                flow, sent, delivered, dropped
            );
            total_sent += sent;
        }
        prop_assert_eq!(total_sent, PER_FLOW_COUNT * dsts.len() as u64);
    }
}

#[test]
fn per_flow_ledger_separates_delivered_from_ttl_dropped_flows() {
    // On a 3-hop budget, the 1-hop flow delivers everything and the 5-hop
    // flow loses everything to TTL — and each flow's ledger says which.
    let reg = multi_flow_registry(9, 3, &[1, 5]);
    let per_flow = flow_ledger(&reg);
    assert_eq!(per_flow.len(), 2);
    let mut outcomes: Vec<(u64, u64, u64)> = per_flow.values().copied().collect();
    outcomes.sort_by_key(|&(_, delivered, _)| std::cmp::Reverse(delivered));
    assert_eq!(
        outcomes[0],
        (PER_FLOW_COUNT, PER_FLOW_COUNT, 0),
        "1-hop flow: all delivered, nothing attributed"
    );
    assert_eq!(
        outcomes[1],
        (PER_FLOW_COUNT, 0, PER_FLOW_COUNT),
        "5-hop flow: every packet attributed to a flow-labelled drop"
    );
    assert_eq!(
        reg.counter_total("drop.ttl"),
        PER_FLOW_COUNT,
        "the flow-labelled drops are the TTL drops"
    );
}
