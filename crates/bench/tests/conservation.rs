//! Cross-layer packet conservation: every data packet put on a wire is
//! either delivered to a client or attributed to exactly one drop counter.
//!
//! This is the accounting identity the unified drop taxonomy exists to make
//! checkable: the simulator tags data-plane pipe drops `data.drop.<reason>`
//! (keyed by `DropClass`), and the overlay node counts its own drops under
//! the same `drop.<reason>` names with a `node` label. Summing the ledger
//! against the sender's count must balance exactly — any unattributed loss
//! is a bug in either the instrumentation or the forwarding path.
//!
//! The runs use the Best Effort service: it neither retransmits nor buffers,
//! so each client send corresponds to exactly one end-to-end forwarding
//! attempt and the identity holds packet-for-packet. (Recovery protocols
//! intentionally break per-packet accounting — one send may cross a pipe
//! five times.)

use proptest::prelude::*;
use son_bench::UnicastRun;
use son_netsim::loss::LossConfig;
use son_netsim::time::SimDuration;
use son_obs::Registry;
use son_overlay::builder::chain_topology;
use son_overlay::FlowSpec;
use son_topo::NodeId;

/// Sums the ledger: (delivered to clients, data drops inside pipes, drops
/// at overlay nodes or link protocols).
fn ledger(reg: &Registry) -> (u64, u64, u64) {
    let delivered = reg.counter_total("node.delivered_local");
    let mut pipe_drops = 0;
    let mut node_drops = 0;
    for (desc, v) in reg.counters() {
        if desc.name.starts_with("data.drop.") {
            pipe_drops += v;
        } else if desc.name.starts_with("drop.") && desc.labels.iter().any(|(k, _)| k == "node") {
            node_drops += v;
        }
    }
    (delivered, pipe_drops, node_drops)
}

fn lossy_run(loss_millis: u64, seed: u64, hops: usize, ttl: u8) -> UnicastRun {
    let last = NodeId(hops);
    let mut run = UnicastRun::new(
        chain_topology(hops + 1, 5.0),
        FlowSpec::best_effort(),
        NodeId(0),
        last,
    );
    run.loss = LossConfig::Bernoulli {
        p: loss_millis as f64 / 1000.0,
    };
    run.count = 150;
    run.interval = SimDuration::from_millis(5);
    run.run_for = SimDuration::from_secs(10);
    run.seed = seed;
    run.node_config.ttl = ttl;
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn data_packets_are_conserved_under_loss(
        loss_millis in 0u64..300,
        seed in 0u64..1_000_000,
        hops in 1usize..4,
    ) {
        let run = lossy_run(loss_millis, seed, hops, 32);
        let sent = run.count;
        let out = run.run();
        prop_assert_eq!(out.sent, sent);
        let (delivered, pipe_drops, node_drops) = ledger(&out.registry);
        prop_assert_eq!(
            sent,
            delivered + pipe_drops + node_drops,
            "sent {} != delivered {} + pipe drops {} + node drops {}",
            sent, delivered, pipe_drops, node_drops
        );
    }
}

#[test]
fn ttl_exhaustion_shows_up_in_the_ledger() {
    // A 4-hop chain with a 2-hop budget: every packet that survives the
    // pipes dies of TTL exhaustion at the third node, attributed.
    let run = lossy_run(50, 7, 4, 2);
    let sent = run.count;
    let out = run.run();
    let (delivered, pipe_drops, node_drops) = ledger(&out.registry);
    assert_eq!(delivered, 0, "nothing can cross 4 hops on a 2-hop budget");
    assert!(node_drops > 0, "TTL drops must be attributed");
    assert_eq!(out.registry.counter_total("drop.ttl"), node_drops);
    assert_eq!(sent, delivered + pipe_drops + node_drops);
}

#[test]
fn perfect_run_attributes_nothing() {
    let run = lossy_run(0, 1, 2, 32);
    let sent = run.count;
    let out = run.run();
    let (delivered, pipe_drops, node_drops) = ledger(&out.registry);
    assert_eq!((delivered, pipe_drops, node_drops), (sent, 0, 0));
}
