//! Regression locks for the telemetry plane:
//!
//! 1. emitting per-epoch snapshots through `run_with_cadence` must not
//!    perturb the simulation — the fingerprint with telemetry enabled is
//!    byte-identical to a plain `run_until` of the same seed,
//! 2. a reboot-looping daemon ([`Campaign::process_flaps`]) must never make
//!    counter deltas wrap: the producer re-baselines on the restarted
//!    incarnation's smaller totals and reports the restart instead,
//! 3. the aggregator's sequence accounting stays clean (no duplicates, no
//!    phantom losses) across the whole flap campaign.

use std::collections::HashMap;

use son_bench::telemetry::{sim_telemetry, ClusterState, EPOCH_NS};
use son_bench::{ring_with_chords, RX_PORT, TX_PORT};
use son_netsim::scenario::Campaign;
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_obs::snapshot::SnapshotProducer;
use son_obs::Registry;
use son_overlay::builder::{OverlayBuilder, OverlayHandle};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
use son_topo::NodeId;

const SEED: u64 = 4_242;
const RUN_FOR: SimTime = SimTime::from_secs(8);

/// A 6-node ring overlay with one CBR flow terminating at node 1: the
/// receiving daemon's `node.delivered_local` counter grows steadily, so
/// every telemetry epoch of uptime observes nonzero counter movement.
fn build_overlay(sim: &mut Simulation<Wire>) -> OverlayHandle {
    let overlay = OverlayBuilder::new(ring_with_chords(6, 10.0, 0)).build(sim);
    sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(1)),
        port: RX_PORT,
        joins: vec![],
        flows: vec![],
    }));
    sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(4)),
        port: TX_PORT,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(NodeId(1), RX_PORT)),
            spec: FlowSpec::best_effort(),
            workload: Workload::Cbr {
                size: 200,
                interval: SimDuration::from_millis(2),
                count: u64::MAX,
                start: SimTime::from_millis(100),
            },
        }],
    }));
    overlay
}

/// The fingerprint must not move when telemetry is observed every epoch:
/// snapshot production reads node state, it never schedules into the sim.
#[test]
fn telemetry_emission_does_not_perturb_the_simulation() {
    let mut plain: Simulation<Wire> = Simulation::new(SEED);
    build_overlay(&mut plain);
    plain.run_until(RUN_FOR);

    let mut observed: Simulation<Wire> = Simulation::new(SEED);
    let overlay = build_overlay(&mut observed);
    let mut producers: Vec<SnapshotProducer> = (0..overlay.daemons.len())
        .map(|i| SnapshotProducer::new(i as u32))
        .collect();
    let mut cluster = ClusterState::new();
    observed.run_with_cadence(
        RUN_FOR,
        SimDuration::from_nanos(EPOCH_NS),
        |sim, at, _wall| {
            for snap in sim_telemetry(sim, &overlay, &mut producers, at.as_nanos()) {
                cluster.ingest(snap);
            }
        },
    );

    assert_eq!(
        plain.fingerprint(),
        observed.fingerprint(),
        "per-epoch telemetry emission changed the simulation"
    );
    assert_eq!(cluster.node_count(), 6);
    let expected_epochs = RUN_FOR.as_nanos() / EPOCH_NS;
    assert_eq!(cluster.snapshots(), 6 * expected_epochs);
    let rollup = cluster.rollup(5);
    assert_eq!(
        rollup.get("lost").and_then(son_obs::Json::as_u64),
        Some(0),
        "in-process ingestion cannot lose snapshots"
    );
}

/// What a freshly rebooted daemon's registry reports: counts since its own
/// boot, i.e. the cumulative registry minus the at-restart base.
fn incarnation_registry(cumulative: &Registry, base: &HashMap<String, u64>) -> Registry {
    let mut fresh = Registry::new();
    for (desc, total) in cumulative.counters() {
        let key = desc.key();
        let id = fresh.counter(&key, &[]);
        fresh.add(
            id,
            total.saturating_sub(base.get(&key).copied().unwrap_or(0)),
        );
    }
    fresh
}

/// The satellite regression: in the sim a crashed process keeps its state,
/// but a real `son-node` restart loses the registry with the process — the
/// restarted incarnation re-counts from zero while the collector-side view
/// of it persists. Emulate exactly that across a [`Campaign::process_flaps`]
/// reboot loop and require the producer to re-baseline (`delta == total`,
/// `restarts` bumped) rather than wrap the unsigned subtraction into a
/// delta astronomically larger than the total it was derived from.
#[test]
fn process_flap_restarts_rebaseline_deltas_instead_of_wrapping() {
    let start = SimTime::from_secs(2);
    let cycles = 3usize;
    let down = SimDuration::from_millis(400);
    let up = SimDuration::from_millis(600);

    let mut sim: Simulation<Wire> = Simulation::new(SEED);
    let overlay = build_overlay(&mut sim);
    let victim = overlay.daemon(NodeId(1));
    let mut campaign = Campaign::new("telemetry_flaps", 0xF1);
    campaign.process_flaps(&[victim], start, cycles, down, up);
    campaign.schedule_into(&mut sim);

    let restart_times: Vec<SimTime> = (0..cycles)
        .map(|k| start + (down + up) * (k as u64) + down)
        .collect();

    let mut producer = SnapshotProducer::new(1);
    let mut base: HashMap<String, u64> = HashMap::new();
    let mut reboots_seen = 0usize;
    let mut snaps = Vec::new();
    sim.run_with_cadence(
        RUN_FOR,
        SimDuration::from_nanos(EPOCH_NS),
        |sim, at, _wall| {
            let node = sim.proc_ref::<OverlayNode>(victim).expect("victim daemon");
            let reboots_by_now = restart_times.iter().filter(|&&t| t <= at).count();
            if reboots_by_now > reboots_seen {
                // A restart happened since the last epoch: the next
                // incarnation's counters start over from (about) here.
                reboots_seen = reboots_by_now;
                base = node
                    .obs()
                    .registry()
                    .counters()
                    .map(|(d, v)| (d.key(), v))
                    .collect();
            }
            let incarnation = incarnation_registry(node.obs().registry(), &base);
            snaps.push(producer.produce(at.as_nanos(), 0, &incarnation, &node.telemetry_health()));
        },
    );

    assert_eq!(reboots_seen, cycles, "the flap schedule must have run out");
    assert_eq!(snaps.len() as u64, RUN_FOR.as_nanos() / EPOCH_NS);
    for snap in &snaps {
        for c in &snap.counters {
            assert!(
                c.delta <= c.total,
                "seq {} counter {:?}: delta {} exceeds total {} — the \
                 baseline subtraction wrapped instead of re-baselining",
                snap.seq,
                c.key,
                c.delta,
                c.total
            );
        }
    }
    let last = snaps.last().expect("at least one snapshot");
    assert_eq!(
        last.restarts, cycles as u64,
        "every reboot's counter plunge must be reported as a restart"
    );

    // The aggregator view of the reboot-looping node stays clean: one node,
    // strictly monotone seq, nothing lost or duplicated.
    let mut cluster = ClusterState::new();
    for snap in snaps {
        cluster.ingest(snap);
    }
    assert_eq!(cluster.node_count(), 1);
    let rollup = cluster.rollup(5);
    let get = |k: &str| rollup.get(k).and_then(son_obs::Json::as_u64);
    assert_eq!(get("lost"), Some(0));
    assert_eq!(get("dup"), Some(0));
    assert_eq!(get("restarts"), Some(cycles as u64));
}
