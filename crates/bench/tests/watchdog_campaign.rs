//! Regression locks for the `exp_watchdog` acceptance invariants, at a
//! debug-friendly scale of the same campaign matrix:
//!
//! 1. the all-healthy control campaign triggers *zero* remediations (the
//!    no-false-positive invariant),
//! 2. turning the watchdog on strictly improves the delivered-within-
//!    deadline fraction under the blackhole, flap, burst-loss, and
//!    router-failure campaigns,
//! 3. a campaign run is a pure function of its seed — two identical runs
//!    produce identical `Simulation::fingerprint()`s and watch histories.
//!
//! The full-scale numbers live in `exp_watchdog` (and its `--smoke` run in
//! CI); these tests keep the *shape* of the result from regressing in plain
//! `cargo test`.

use son_bench::watchdog::{
    blackhole_campaign, burst_loss_campaign, control_campaign, flap_campaign,
    router_failure_campaign, CampaignBuilder, WatchdogRun,
};
use son_netsim::time::SimDuration;
use son_overlay::watch::WatchConfig;

const SEED: u64 = 71;

/// The experiment defaults trimmed to a horizon debug builds can afford.
/// The fault window opens at 4s, so 16s still leaves 12s of fault time.
fn scaled(label: &str, build: CampaignBuilder) -> WatchdogRun {
    let mut run = WatchdogRun::new(label, SEED, build);
    run.run_for = SimDuration::from_secs(16);
    run.count = 1200;
    run
}

#[test]
fn control_campaign_triggers_no_remediations() {
    let out = scaled("control", control_campaign)
        .with_watch(WatchConfig::default())
        .run();
    assert_eq!(
        out.watch_events.len(),
        0,
        "healthy campaign raised watch events: first {:?}",
        out.watch_events.first()
    );
    assert_eq!(out.suspensions(), 0);
    assert!(
        out.deadline_fraction() > 0.99,
        "control deadline fraction {:.3}",
        out.deadline_fraction()
    );
}

#[test]
fn watchdog_strictly_improves_blackhole_campaign() {
    let off = scaled("blackhole.off", blackhole_campaign).run();
    let on = scaled("blackhole.on", blackhole_campaign)
        .with_watch(WatchConfig::default())
        .run();
    assert!(
        on.within_deadline > off.within_deadline,
        "watchdog must strictly improve delivered-within-deadline: on {} vs off {}",
        on.within_deadline,
        off.within_deadline
    );
    assert!(
        on.suspensions() > 0,
        "the improvement must come from a conviction, not luck"
    );
}

#[test]
fn watchdog_strictly_improves_flap_campaign() {
    let off = scaled("flaps.off", flap_campaign).run();
    let on = scaled("flaps.on", flap_campaign)
        .with_watch(WatchConfig::default())
        .run();
    assert!(
        on.within_deadline > off.within_deadline,
        "watchdog must strictly improve delivered-within-deadline: on {} vs off {}",
        on.within_deadline,
        off.within_deadline
    );
    assert!(
        on.count_events(|k| matches!(k, son_obs::watch::WatchKind::FlapDamped { .. })) > 0,
        "the improvement must come from flap damping"
    );
}

#[test]
fn watchdog_strictly_improves_burst_loss_campaign() {
    let off = scaled("burst_loss.off", burst_loss_campaign).run();
    let on = scaled("burst_loss.on", burst_loss_campaign)
        .with_watch(WatchConfig::default())
        .run();
    assert!(
        on.within_deadline > off.within_deadline,
        "watchdog must strictly improve delivered-within-deadline: on {} vs off {}",
        on.within_deadline,
        off.within_deadline
    );
    assert!(
        on.count_events(|k| matches!(k, son_obs::watch::WatchKind::FlapDamped { .. })) > 0,
        "the improvement must come from damping the loss-driven link churn"
    );
}

#[test]
fn watchdog_strictly_improves_router_failure_campaign() {
    let off = scaled("router_failures.off", router_failure_campaign).run();
    let on = scaled("router_failures.on", router_failure_campaign)
        .with_watch(WatchConfig::default())
        .run();
    assert!(
        on.within_deadline > off.within_deadline,
        "watchdog must strictly improve delivered-within-deadline: on {} vs off {}",
        on.within_deadline,
        off.within_deadline
    );
    assert!(
        on.count_events(|k| matches!(k, son_obs::watch::WatchKind::FlapDamped { .. })) > 0,
        "the improvement must come from damping the reboot-looping router"
    );
    // The first crash costs both sides the same stranded flush; the
    // watchdog's value is confined to the later cycles. Check the on-run's
    // lateness clusters only around the opening of the fault window.
    let late_after_first_cycle = on
        .deliveries
        .iter()
        .filter(|&&(at, lat_ms)| at.as_secs_f64() > 7.0 && lat_ms > 250.0)
        .count();
    assert_eq!(
        late_after_first_cycle, 0,
        "with damping engaged, later crash cycles must not strand packets"
    );
}

#[test]
fn same_seed_replays_the_identical_campaign() {
    let a = scaled("replay", blackhole_campaign)
        .with_watch(WatchConfig::default())
        .run();
    let b = scaled("replay", blackhole_campaign)
        .with_watch(WatchConfig::default())
        .run();
    assert_eq!(a.fingerprint, b.fingerprint, "simulation state diverged");
    assert_eq!(a.watch_events, b.watch_events, "watch history diverged");
    assert_eq!(a.within_deadline, b.within_deadline);
}
