//! End-to-end trace reconstruction: the distributed tracer's timelines,
//! reconstructed from per-daemon rings, must (a) be causally consistent for
//! every sampled packet, and (b) attribute recovery latency the way the
//! paper's Figure 3 argument predicts — hop-by-hop recovery on a 10 ms link
//! repairs in tens of milliseconds while end-to-end recovery on a 50 ms
//! path costs 100 ms-plus.

use proptest::prelude::*;
use son_bench::UnicastRun;
use son_netsim::loss::LossConfig;
use son_netsim::time::SimDuration;
use son_obs::trace::{attribute, median_ns, reconstruct, self_check, Terminal, TraceStage};
use son_overlay::builder::chain_topology;
use son_overlay::FlowSpec;
use son_topo::NodeId;

/// A reliable unicast run over an `n`-node chain with per-link Bernoulli
/// loss, every packet traced (`trace_sample = 1`) so reconstruction sees
/// the losses it needs.
fn traced_run(nodes: usize, hop_ms: f64, loss: f64, seed: u64, count: u64) -> UnicastRun {
    let mut run = UnicastRun::new(
        chain_topology(nodes, hop_ms),
        FlowSpec::reliable(),
        NodeId(0),
        NodeId(nodes - 1),
    );
    run.loss = LossConfig::Bernoulli { p: loss };
    run.count = count;
    run.interval = SimDuration::from_millis(5);
    run.run_for = SimDuration::from_secs(30);
    run.seed = seed;
    run.node_config.trace_sample = 1;
    run
}

/// The E1 acceptance criterion: reconstructed timelines must show
/// hop-by-hop recovery repairing at ~10–30 ms on a lossy 10 ms link while
/// the 50 ms end-to-end path repairs at ~100 ms-plus, and the recovered
/// packets' end-to-end latencies must order the same way.
#[test]
fn fig3_recovery_attribution_is_hop_local_vs_end_to_end() {
    // Five 10 ms links, lossy; recovery is hop-local.
    let hbh = traced_run(6, 10.0, 0.02, 11, 2_000).run();
    // One 50 ms link, matched end-to-end loss 1-(1-0.02)^5 ~= 0.096; the
    // only place to recover is the whole path.
    let e2e = traced_run(2, 50.0, 0.096, 12, 2_000).run();

    let hbh_tl = reconstruct(&hbh.traces);
    let e2e_tl = reconstruct(&e2e.traces);
    assert!(hbh_tl.len() >= 1_000, "every packet is sampled");
    assert!(e2e_tl.len() >= 1_000, "every packet is sampled");
    for report in [self_check(&hbh.traces), self_check(&e2e.traces)] {
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    // Hop-by-hop: recoveries appear at interior hops, and the per-recovery
    // latency is a couple of 10 ms RTTs (gap notice + NACK round trip),
    // nowhere near the 100 ms an end-to-end repair would cost.
    let hbh_stats = attribute(&hbh_tl);
    let hbh_recoveries: u64 = hbh_stats.iter().map(|s| s.recoveries).sum();
    assert!(hbh_recoveries > 10, "lossy links must show recoveries");
    let hbh_rec: Vec<u64> = hbh_stats
        .iter()
        .flat_map(|s| s.recovery_ns.iter().copied())
        .collect();
    let hbh_p50 = median_ns(&hbh_rec);
    assert!(
        (5_000_000..=60_000_000).contains(&hbh_p50),
        "hop-local recovery p50 {} ms should be tens of ms",
        hbh_p50 / 1_000_000
    );

    // End-to-end: every recovery is on the single 50 ms link, so the
    // gap-to-recovery latency carries at least one full 100 ms RTT.
    let e2e_stats = attribute(&e2e_tl);
    let e2e_rec: Vec<u64> = e2e_stats
        .iter()
        .flat_map(|s| s.recovery_ns.iter().copied())
        .collect();
    assert!(e2e_rec.len() > 10, "lossy link must show recoveries");
    let e2e_p50 = median_ns(&e2e_rec);
    assert!(
        e2e_p50 >= 80_000_000,
        "end-to-end recovery p50 {} ms should be >= ~100 ms",
        e2e_p50 / 1_000_000
    );
    assert!(
        hbh_p50 * 3 <= e2e_p50,
        "hop-by-hop recovery ({} ms) must be several times faster than \
         end-to-end ({} ms)",
        hbh_p50 / 1_000_000,
        e2e_p50 / 1_000_000
    );

    // The recovered packets' total latency orders the same way: the paper's
    // ~70 ms vs ~150 ms comparison.
    let rec_e2e_latency = |tls: &[son_obs::Timeline]| {
        let lat: Vec<u64> = tls
            .iter()
            .filter(|t| t.recovery_ns() > 0 && t.terminal() == Terminal::Delivered)
            .filter_map(|t| t.e2e_ns())
            .collect();
        median_ns(&lat)
    };
    let hbh_lat = rec_e2e_latency(&hbh_tl);
    let e2e_lat = rec_e2e_latency(&e2e_tl);
    assert!(
        (55_000_000..=110_000_000).contains(&hbh_lat),
        "recovered hop-by-hop packets {} ms, expected ~70 ms",
        hbh_lat / 1_000_000
    );
    assert!(
        e2e_lat >= 120_000_000,
        "recovered end-to-end packets {} ms, expected ~150 ms",
        e2e_lat / 1_000_000
    );
}

/// The reconstructed path must match the chain the packets actually walked,
/// and each recovered timeline must carry its retransmissions at the hop
/// *before* the recovery.
#[test]
fn timelines_record_the_path_and_localize_retransmissions() {
    let out = traced_run(4, 10.0, 0.03, 21, 1_000).run();
    let timelines = reconstruct(&out.traces);
    assert!(!timelines.is_empty());
    for tl in &timelines {
        if tl.terminal() == Terminal::Delivered && tl.max_hop() == 3 {
            assert_eq!(tl.path(), vec![0, 1, 2, 3], "chain path in hop order");
        }
        for e in &tl.events {
            if let TraceStage::Recovered { .. } = e.stage {
                assert!(
                    tl.events.iter().any(|r| {
                        matches!(r.stage, TraceStage::Retransmit) && r.hop + 1 == e.hop
                    }),
                    "recovery at hop {} without a retransmission at hop {}",
                    e.hop,
                    e.hop - 1
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Causal ordering as a property: for any loss rate and seed, every
    /// sampled packet's timeline starts with ingress at hop 0, covers a
    /// contiguous, time-ordered hop range, and terminates in exactly one
    /// of delivered / classified drop (`Timeline::check`), and recovery
    /// never appears at hop 0 (nothing precedes the ingress link).
    #[test]
    fn sampled_timelines_are_causally_ordered(
        loss_millis in 0u64..80,
        seed in 0u64..1_000_000,
        nodes in 3usize..6,
    ) {
        let out = traced_run(
            nodes,
            10.0,
            loss_millis as f64 / 1000.0,
            seed,
            300,
        )
        .run();
        let report = self_check(&out.traces);
        prop_assert!(report.timelines > 0, "every packet is sampled");
        prop_assert!(report.ok(), "violations: {:?}", report.violations);
        for tl in reconstruct(&out.traces) {
            for e in &tl.events {
                if matches!(e.stage, TraceStage::Recovered { .. }) {
                    prop_assert!(e.hop > 0, "recovery cannot precede ingress");
                }
            }
        }
    }
}
