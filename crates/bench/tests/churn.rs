//! Regression locks for the `exp_churn` acceptance invariants, at a
//! debug-friendly scale of the same campaign machinery:
//!
//! 1. after any *single* membership event at N = 64 — a crash, a
//!    crash-recover (leave + join), or a graceful leave — every surviving
//!    node re-converges (routes and membership view) within the bounded
//!    epoch count,
//! 2. under sustained graceful churn the surviving-member flows hold the
//!    delivery floor, and maintenance-on strictly beats the
//!    no-maintenance control,
//! 3. a 50%-churned deployment does not leak departed-member state: the
//!    survivor LSDB shrinks to the survivor count and the memory footprint
//!    comes back down off its peak,
//! 4. a churn run is a pure function of its seed.
//!
//! The full-scale numbers live in `exp_churn` (and its `--smoke` run in
//! CI); these tests keep the *shape* of the result from regressing in
//! plain `cargo test`.

use son_bench::churn::{ChurnPattern, ChurnRun};
use son_netsim::time::{SimDuration, SimTime};

const SEED: u64 = 53;

/// The bound the tentpole promises: 8 maintenance epochs of 500 ms.
const LAG_BOUND: SimDuration = SimDuration::from_secs(4);

/// Defaults trimmed to a horizon debug builds can afford; the event fires
/// at 5s, leaving 11s — nearly three bounds — of settle time.
fn scaled(label: &str, pattern: ChurnPattern) -> ChurnRun {
    let mut run = ChurnRun::new(label, SEED, pattern);
    run.run_for = SimDuration::from_secs(16);
    run.count = 1200;
    run
}

#[test]
fn single_crash_at_n64_converges_within_bound() {
    let out = scaled(
        "crash.one",
        ChurnPattern::CrashOne {
            node: 5,
            at: SimTime::from_secs(5),
            downtime: None,
        },
    )
    .run();
    assert_eq!(out.events, 1);
    assert!(
        out.max_lag > SimDuration::ZERO,
        "a crash must be visible as a convergence disturbance"
    );
    assert!(
        out.max_lag <= LAG_BOUND,
        "crash convergence lag {:?} exceeds the {:?} bound",
        out.max_lag,
        LAG_BOUND
    );
    assert_eq!(
        out.evictions, 63,
        "every survivor evicts the departed member exactly once"
    );
}

#[test]
fn single_crash_recover_at_n64_converges_within_bound() {
    let out = scaled(
        "crash.recover",
        ChurnPattern::CrashOne {
            node: 5,
            at: SimTime::from_secs(5),
            downtime: Some(SimDuration::from_secs(2)),
        },
    )
    .run();
    assert_eq!(out.events, 2, "a crash and a rejoin");
    assert!(
        out.max_lag <= LAG_BOUND,
        "crash-recover convergence lag {:?} exceeds the {:?} bound",
        out.max_lag,
        LAG_BOUND
    );
}

#[test]
fn single_graceful_leave_at_n64_converges_and_beats_crash_discovery() {
    // Node 17 sits on a measured flow's route at N = 64, so the leave
    // perturbs real traffic; the graceful withdrawal must reroute it
    // during the grace window, while the control only notices the
    // eventual crash through hello loss.
    let leave = ChurnPattern::Leave {
        nodes: vec![17],
        at: SimTime::from_secs(5),
        downtime: None,
    };
    let on = scaled("leave.on", leave.clone()).run();
    let off = scaled("leave.off", leave).without_membership().run();
    assert!(
        on.max_lag <= LAG_BOUND,
        "graceful-leave convergence lag {:?} exceeds the {:?} bound",
        on.max_lag,
        LAG_BOUND
    );
    assert_eq!(on.graceful_leaves, 1, "the poked node announces its leave");
    assert_eq!(off.graceful_leaves, 0, "the control ignores the poke");
    assert!(
        on.received > off.received,
        "graceful withdrawal must strictly beat crash discovery: on {} vs off {}",
        on.received,
        off.received
    );
}

#[test]
fn sustained_churn_holds_delivery_floor_and_beats_control() {
    let pattern = ChurnPattern::Sustained {
        events: 12,
        downtime: SimDuration::from_secs(2),
        graceful: true,
    };
    let mut on = scaled("sustained.on", pattern.clone());
    on.nodes = 32;
    on.run_for = SimDuration::from_secs(22);
    let mut off = scaled("sustained.off", pattern).without_membership();
    off.nodes = 32;
    off.run_for = SimDuration::from_secs(22);
    let on = on.run();
    let off = off.run();
    assert!(
        on.delivery_ratio() >= 0.90,
        "delivery ratio {:.3} under sustained churn is below the 0.90 floor",
        on.delivery_ratio()
    );
    assert!(
        on.received > off.received,
        "maintenance must strictly beat the control: on {} vs off {}",
        on.received,
        off.received
    );
    assert!(
        on.max_lag <= LAG_BOUND,
        "sustained-churn convergence lag {:?} exceeds the {:?} bound",
        on.max_lag,
        LAG_BOUND
    );
    assert!(on.evictions > 0, "graceful leaves must be evicted");
}

#[test]
fn half_churned_deployment_evicts_instead_of_leaking() {
    // 8 of 16 nodes leave permanently. The dense chord layout keeps the
    // survivor line 0–1–2–3–11–12–13–14 connected, so the measured flow
    // (0 → 11) keeps flowing while half the fleet disappears.
    let leaves = vec![4, 5, 6, 7, 8, 9, 10, 15];
    let pattern = ChurnPattern::Leave {
        nodes: leaves,
        at: SimTime::from_secs(4),
        downtime: None,
    };
    let mut on = scaled("leak.on", pattern.clone());
    on.nodes = 16;
    on.flows = 1;
    on.chord_every = 1;
    let mut off = scaled("leak.off", pattern).without_membership();
    off.nodes = 16;
    off.flows = 1;
    off.chord_every = 1;
    let on = on.run();
    let off = off.run();

    assert_eq!(
        on.lsdb_end(),
        8,
        "the survivor's LSDB must shrink to the 8 surviving origins"
    );
    assert_eq!(
        off.lsdb_end(),
        16,
        "the control never evicts, so departed LSAs persist"
    );
    assert!(
        on.footprint_end() < on.footprint_peak(),
        "survivor footprint must come down off its peak after eviction \
         (end {} vs peak {})",
        on.footprint_end(),
        on.footprint_peak()
    );
    assert_eq!(
        on.evictions,
        8 * 8,
        "each of the 8 survivors evicts each of the 8 departed members"
    );
    assert!(
        on.delivery_ratio() > 0.95,
        "the surviving flow must keep flowing: delivery {:.3}",
        on.delivery_ratio()
    );
}

#[test]
fn churn_runs_are_a_pure_function_of_the_seed() {
    let pattern = ChurnPattern::Sustained {
        events: 6,
        downtime: SimDuration::from_secs(2),
        graceful: true,
    };
    let build = || {
        let mut run = scaled("det", pattern.clone());
        run.nodes = 32;
        run
    };
    let a = build().run();
    let b = build().run();
    assert_eq!(a.fingerprint, b.fingerprint, "same seed, same simulation");
    assert_eq!(a.received, b.received);
    assert_eq!(a.max_lag, b.max_lag);
    assert_eq!(a.evictions, b.evictions);
}
