//! The experiment JSONL export end-to-end: a lossy reliable run must yield
//! per-hop recovery-latency histograms, and the exported file must be one
//! well-formed JSON object per line with the documented schema fields.

use std::fs;

use son_bench::{export_registry, UnicastRun};
use son_netsim::loss::LossConfig;
use son_netsim::time::SimDuration;
use son_obs::JsonlSink;
use son_overlay::builder::chain_topology;
use son_overlay::FlowSpec;
use son_topo::NodeId;

/// A minimal structural JSON check: balanced braces/brackets outside
/// strings, no trailing garbage. Enough to catch escaping and rendering
/// bugs without a full parser.
fn looks_like_json_object(line: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_str && line.starts_with('{') && line.ends_with('}')
}

#[test]
fn lossy_reliable_run_exports_recovery_histograms() {
    let mut run = UnicastRun::new(
        chain_topology(4, 10.0),
        FlowSpec::reliable(),
        NodeId(0),
        NodeId(3),
    );
    run.loss = LossConfig::Bernoulli { p: 0.05 };
    run.count = 300;
    run.interval = SimDuration::from_millis(5);
    run.run_for = SimDuration::from_secs(20);
    let out = run.run();
    assert_eq!(
        out.recv.received, 300,
        "reliable service recovers everything"
    );

    // The registry must hold per-hop recovery latency: each receiving node
    // contributes a link.recovery_ns{node=..,proto=reliable} histogram.
    let merged = out.registry.hist_merged("link.recovery_ns");
    assert!(
        merged.count() > 0,
        "5% loss over 3 hops must need recoveries"
    );
    assert!(
        merged.p50() > 0,
        "recovery takes at least a NACK round-trip"
    );
    assert!(merged.max() >= merged.p50());
    assert!(
        out.registry.counter_total("link.retransmit") >= merged.count(),
        "every recovery implies at least one retransmission"
    );

    // Export and validate the JSONL shape.
    let mut path = std::env::temp_dir();
    path.push(format!("son_bench_export_{}.jsonl", std::process::id()));
    let mut sink = JsonlSink::create(&path).unwrap();
    export_registry(&mut sink, "lossy_reliable", &out.registry).unwrap();
    let rows = sink.rows();
    let written = sink.finish().unwrap();
    let content = fs::read_to_string(&written).unwrap();
    fs::remove_file(&written).unwrap();

    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len() as u64, rows);
    assert!(rows > 0);
    for line in &lines {
        assert!(looks_like_json_object(line), "malformed row: {line}");
        assert!(
            line.starts_with("{\"run\":\"lossy_reliable\""),
            "untagged row: {line}"
        );
    }
    assert!(
        lines.iter().any(|l| l.contains("\"kind\":\"hist\"")
            && l.contains("\"name\":\"link.recovery_ns\"")
            && l.contains("\"proto\":\"reliable\"")),
        "recovery histogram rows missing from export"
    );
    assert!(
        lines.iter().any(
            |l| l.contains("\"kind\":\"counter\"") && l.contains("\"name\":\"node.forwarded\"")
        ),
        "counter rows missing from export"
    );
}
