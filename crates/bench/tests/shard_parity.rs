//! Determinism parity locks for the sharded conservative event engine.
//!
//! The contract under test: for any shard count K, a sharded run is
//! **bit-identical** to the sequential run of the same `(topology,
//! workload, seed)` — same `Simulation::fingerprint()`, same forwarded and
//! delivered counts, same watchdog audit history. Sharding may only change
//! wall-clock time, never results.
//!
//! Covered here: the scale observatory's ring (with the LSA rebuild
//! hold-down active, so the debounce and the shard windows interleave), a
//! chorded ring, the placed continental-US overlay (underlay-bound pipes,
//! whose lookahead comes from real fiber latencies), and a watchdog
//! fault-injection campaign (crash/restart flaps plus remediation).

use son_bench::churn::{ChurnPattern, ChurnRun};
use son_bench::scale::{scale_topology, SCALE_HOLD_DOWN};
use son_bench::watchdog::{router_failure_campaign, WatchdogRun};
use son_bench::{ring_with_chords, RX_PORT, TX_PORT};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::{ScenarioEvent, Simulation};
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::state::connectivity::ConnectivityConfig;
use son_overlay::watch::WatchConfig;
use son_overlay::{Destination, FlowSpec, NodeConfig, OverlayAddr, Wire};
use son_topo::{EdgeId, Graph, NodeId};

/// What a run leaves behind; equality means the runs were identical.
#[derive(Debug, PartialEq)]
struct Observed {
    fingerprint: u64,
    forwarded: u64,
    delivered: u64,
    reroutes: u64,
}

/// Builds the standard parity workload over `topo`: four CBR flows across
/// the overlay, one edge cut at 800ms and restored at 1400ms, horizon 2s.
/// With `placed` the overlay is bound to the continental-US underlay.
fn observe(topo: &Graph, placed: bool, seed: u64, shards: usize) -> Observed {
    let n = topo.node_count();
    let mut sim: Simulation<Wire> = Simulation::new(seed);
    let config = NodeConfig {
        connectivity: ConnectivityConfig {
            rebuild_hold_down: SCALE_HOLD_DOWN,
            ..ConnectivityConfig::default()
        },
        ..NodeConfig::default()
    };
    let builder = OverlayBuilder::new(topo.clone()).node_config(config);
    let (overlay, cut_edge) = if placed {
        let sc = continental_us(DEFAULT_CONVERGENCE);
        let (placed_topo, cities) = continental_overlay(&sc);
        assert_eq!(placed_topo.node_count(), n, "caller passes the placed topo");
        sim.set_underlay(sc.underlay);
        let overlay = OverlayBuilder::new(placed_topo)
            .node_config(NodeConfig {
                connectivity: ConnectivityConfig {
                    rebuild_hold_down: SCALE_HOLD_DOWN,
                    ..ConnectivityConfig::default()
                },
                ..NodeConfig::default()
            })
            .place_in_cities(cities)
            .build(&mut sim);
        (overlay, EdgeId(1))
    } else {
        (builder.build(&mut sim), EdgeId(1))
    };

    let mut rxs = Vec::new();
    let mut clients = Vec::new();
    for k in 0..4usize {
        let a = k * n / 4;
        let b = (a + n / 2 + 1) % n;
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(b)),
            port: RX_PORT + k as u16,
            joins: vec![],
            flows: vec![],
        }));
        rxs.push(rx);
        clients.push((rx, NodeId(b)));
        let tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(a)),
            port: TX_PORT + k as u16,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(b), RX_PORT + k as u16)),
                spec: FlowSpec::best_effort(),
                workload: Workload::Cbr {
                    size: 1000,
                    interval: SimDuration::from_millis(2),
                    count: u64::MAX,
                    start: SimTime::from_millis(400),
                },
            }],
        }));
        clients.push((tx, NodeId(a)));
    }
    for &(ab, ba) in &overlay.edge_pipes[&cut_edge] {
        sim.schedule(SimTime::from_millis(800), ScenarioEvent::DisablePipe(ab));
        sim.schedule(SimTime::from_millis(800), ScenarioEvent::DisablePipe(ba));
        sim.schedule(SimTime::from_millis(1400), ScenarioEvent::EnablePipe(ab));
        sim.schedule(SimTime::from_millis(1400), ScenarioEvent::EnablePipe(ba));
    }
    if shards > 1 {
        let mut plan = overlay.shard_plan(shards, sim.process_count());
        for &(client, node) in &clients {
            overlay.colocate(&mut plan, client, node);
        }
        sim.set_shard_plan(Some(plan));
    }

    sim.run_until(SimTime::from_secs(2));

    let mut forwarded = 0;
    let mut reroutes = 0;
    for &d in &overlay.daemons {
        let m = sim.proc_ref::<OverlayNode>(d).expect("daemon").metrics();
        forwarded += m.forwarded;
        reroutes += m.counters.get("reroutes");
    }
    let delivered = rxs
        .iter()
        .map(|&rx| {
            sim.proc_ref::<ClientProcess>(rx)
                .expect("receiver")
                .sole_recv()
                .received
        })
        .sum();
    Observed {
        fingerprint: sim.fingerprint(),
        forwarded,
        delivered,
        reroutes,
    }
}

#[test]
fn ring_parity_across_shard_counts_and_seeds() {
    let topo = scale_topology(16, 10.0);
    for seed in [3, 11] {
        let seq = observe(&topo, false, seed, 1);
        assert!(seq.delivered > 0, "workload must deliver (seed {seed})");
        for shards in [2, 4, 8] {
            let par = observe(&topo, false, seed, shards);
            assert_eq!(
                par, seq,
                "shards={shards} seed={seed} diverged from sequential"
            );
        }
    }
}

#[test]
fn chorded_ring_parity() {
    let topo = ring_with_chords(24, 10.0, 4);
    let seq = observe(&topo, false, 7, 1);
    assert!(seq.delivered > 0);
    for shards in [2, 4] {
        let par = observe(&topo, false, 7, shards);
        assert_eq!(par, seq, "shards={shards} diverged on the chorded ring");
    }
}

#[test]
fn continental_parity_with_underlay_bound_pipes() {
    // The placed overlay's cross-shard lookahead comes from
    // `Underlay::min_link_latency` — real fiber latencies, not configs.
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let seq = observe(&topo, true, 5, 1);
    assert!(seq.delivered > 0);
    for shards in [2, 4] {
        let par = observe(&topo, true, 5, shards);
        assert_eq!(par, seq, "shards={shards} diverged on continental-US");
    }
}

#[test]
fn watchdog_campaign_parity_including_watch_history() {
    // Fault injection (daemon crash/restart flaps) + watchdog remediation,
    // run sequentially and sharded: fingerprints, delivery counts, and the
    // complete watchdog audit history must all match.
    let run = |shards: usize| {
        let mut r = WatchdogRun::new("parity", 71, router_failure_campaign)
            .with_watch(WatchConfig::default())
            .with_shards(shards);
        r.run_for = SimDuration::from_secs(12);
        r.count = 800;
        r.run()
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(par.fingerprint, seq.fingerprint, "fingerprint diverged");
    assert_eq!(par.sent, seq.sent);
    assert_eq!(par.received, seq.received);
    assert_eq!(par.within_deadline, seq.within_deadline);
    assert_eq!(
        par.watch_events, seq.watch_events,
        "watchdog audit history diverged"
    );
    assert!(
        !seq.watch_events.is_empty(),
        "campaign must exercise the watchdog for the parity to mean anything"
    );
}

#[test]
fn churn_campaign_parity_with_membership_active() {
    // Sustained graceful churn with the full membership machinery live:
    // leave floods, crash detection epochs, evictions, rejoin incarnation
    // bumps. Sequential and sharded runs must stay bit-identical — the
    // tentpole's determinism requirement.
    let run = |shards: usize| {
        let mut r = ChurnRun::new(
            "parity",
            53,
            ChurnPattern::Sustained {
                events: 6,
                downtime: SimDuration::from_secs(2),
                graceful: true,
            },
        )
        .with_shards(shards);
        r.nodes = 32;
        r.run_for = SimDuration::from_secs(14);
        r.count = 800;
        r.run()
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(par.fingerprint, seq.fingerprint, "fingerprint diverged");
    assert_eq!(par.sent, seq.sent);
    assert_eq!(par.received, seq.received);
    assert_eq!(par.max_lag, seq.max_lag);
    assert_eq!(par.evictions, seq.evictions, "eviction counts diverged");
    assert!(
        seq.evictions > 0 && seq.graceful_leaves > 0,
        "campaign must exercise membership for the parity to mean anything"
    );
}
