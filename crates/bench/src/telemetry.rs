//! Cluster-side telemetry aggregation: the collector state behind `son-top`.
//!
//! A [`ClusterState`] ingests [`TelemetrySnapshot`]s from any mix of
//! sources — decoded UDP frames off the collector socket, or replayed
//! `kind:"telemetry"` JSONL rows — and maintains per-node liveness
//! (received / lost / duplicate accounting off the seq numbers) plus the
//! latest snapshot per node. [`ClusterState::rollup`] renders the cluster
//! view `son-top` displays and CI gates on; it deliberately contains no
//! wall-clock-derived field, so the same snapshots produce byte-identical
//! roll-ups whether they arrived live or from a recording
//! (`live_ingest_matches_jsonl_replay` in `exp_udp_parity` locks this).
//!
//! [`Gate`] implements the SLO grammar (`delivery>=0.95,stale<=2`): each
//! clause names a numeric roll-up field, and a breach makes `son-top` exit
//! non-zero so scripts can use it as a cluster health check.

use std::collections::BTreeMap;

use son_obs::snapshot::{HistDigest, TelemetrySnapshot};
use son_obs::Json;

/// Telemetry epoch assumed for staleness accounting, ns. Matches the
/// emitter's default (`son_node::TELEMETRY_EPOCH_NS`).
pub const EPOCH_NS: u64 = 500_000_000;

/// Epochs of silence after which a node is considered departed (left or
/// crashed) rather than stale: it is excluded from the `stale` roll-up —
/// a member that left must not breach a `stale<=N` gate forever — and
/// reported under `departed` instead. Matches the overlay's detection
/// cadence (3 maintenance epochs) with slack for collector jitter.
pub const DEPART_EPOCHS: u64 = 6;

/// Per-node collector state: the latest snapshot plus seq accounting.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Most recent (highest-seq) snapshot from this node.
    pub latest: TelemetrySnapshot,
    /// Driver time of the first snapshot seen, ns.
    pub first_at_ns: u64,
    /// Snapshots ingested.
    pub received: u64,
    /// Seq numbers skipped (loss made visible by the numbering).
    pub lost: u64,
    /// Duplicate or reordered-late snapshots (seq at or below the max).
    pub dup: u64,
    /// Highest seq seen.
    pub max_seq: u64,
}

/// The whole collector: per-node state keyed by node id (ordered, so every
/// derived view is deterministic), plus ingest health.
#[derive(Debug, Default)]
pub struct ClusterState {
    nodes: BTreeMap<u32, NodeState>,
    /// Datagrams that failed the telemetry codec.
    pub decode_errors: u64,
}

impl ClusterState {
    /// An empty collector.
    #[must_use]
    pub fn new() -> ClusterState {
        ClusterState::default()
    }

    /// Ingests one decoded snapshot, updating liveness accounting.
    pub fn ingest(&mut self, snap: TelemetrySnapshot) {
        match self.nodes.get_mut(&snap.node) {
            None => {
                // First sighting. The node may have just joined the
                // cluster mid-run, or the collector may have started late:
                // either way seqs before this one are history, not loss.
                self.nodes.insert(
                    snap.node,
                    NodeState {
                        first_at_ns: snap.at_ns,
                        received: 1,
                        lost: 0,
                        dup: 0,
                        max_seq: snap.seq,
                        latest: snap,
                    },
                );
            }
            Some(ns) => {
                ns.received += 1;
                let seen_restarts = ns.latest.restarts;
                if snap.restarts > seen_restarts {
                    // The node restarted (rejoined): its seq numbering
                    // reset — a fresh incarnation, not loss.
                    ns.max_seq = snap.seq;
                    ns.latest = snap;
                } else if snap.restarts < seen_restarts {
                    // Straggler from a previous incarnation.
                    ns.dup += 1;
                } else if snap.seq > ns.max_seq {
                    ns.lost += snap.seq - ns.max_seq - 1;
                    ns.max_seq = snap.seq;
                    ns.latest = snap;
                } else {
                    ns.dup += 1;
                }
            }
        }
    }

    /// Ingests one UDP datagram; codec failures are counted, not fatal.
    pub fn ingest_bytes(&mut self, frame: &[u8]) {
        match TelemetrySnapshot::decode(frame) {
            Ok(snap) => self.ingest(snap),
            Err(_) => self.decode_errors += 1,
        }
    }

    /// Ingests one JSONL line if it is a `kind:"telemetry"` row; other
    /// kinds are ignored (experiment files interleave kinds), broken
    /// telemetry rows are counted as decode errors.
    pub fn ingest_line(&mut self, line: &str) {
        let Ok(row) = Json::parse(line) else {
            self.decode_errors += 1;
            return;
        };
        match TelemetrySnapshot::from_row(&row) {
            Ok(Some(snap)) => self.ingest(snap),
            Ok(None) => {}
            Err(_) => self.decode_errors += 1,
        }
    }

    /// Nodes heard from.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node state, node-id order.
    pub fn nodes(&self) -> impl Iterator<Item = (&u32, &NodeState)> {
        self.nodes.iter()
    }

    /// Total snapshots ingested.
    #[must_use]
    pub fn snapshots(&self) -> u64 {
        self.nodes.values().map(|n| n.received).sum()
    }

    /// Sums the `total` of every counter whose key starts with `prefix`
    /// across each node's latest snapshot.
    fn sum_totals(&self, prefix: &str) -> u64 {
        self.nodes
            .values()
            .flat_map(|n| n.latest.counters.iter())
            .filter(|c| key_name(&c.key) == prefix || c.key.starts_with(prefix))
            .map(|c| c.total)
            .sum()
    }

    /// The cluster roll-up `son-top` renders and gates on. `top_n` bounds
    /// the hot-link / hot-flow lists. Every field derives from snapshot
    /// content only — no wall clock — so identical snapshot streams yield
    /// identical roll-ups regardless of arrival timing.
    #[must_use]
    pub fn rollup(&self, top_n: usize) -> Json {
        let latest_at = self
            .nodes
            .values()
            .map(|n| n.latest.at_ns)
            .max()
            .unwrap_or(0);
        let first_at = self
            .nodes
            .values()
            .map(|n| n.first_at_ns)
            .min()
            .unwrap_or(0);
        // A node far enough behind the freshest snapshot has departed
        // (left or crashed); the rest are members, and only members count
        // toward staleness — departure is membership, not collector lag.
        let departed = self
            .nodes
            .values()
            .filter(|n| (latest_at - n.latest.at_ns) / EPOCH_NS >= DEPART_EPOCHS)
            .count() as u64;
        let members = self.nodes.len() as u64 - departed;
        let stale = self
            .nodes
            .values()
            .map(|n| (latest_at - n.latest.at_ns) / EPOCH_NS)
            .filter(|&epochs| epochs < DEPART_EPOCHS)
            .max()
            .unwrap_or(0);
        let lost: u64 = self.nodes.values().map(|n| n.lost).sum();
        let dup: u64 = self.nodes.values().map(|n| n.dup).sum();
        let restarts: u64 = self.nodes.values().map(|n| n.latest.restarts).sum();

        let sent = self.sum_totals("flow.sent");
        let delivered = self.sum_totals("node.delivered_local");
        let delivery = if sent == 0 {
            1.0
        } else {
            delivered as f64 / sent as f64
        };

        // Drop taxonomy: aggregate by counter name, labels stripped.
        let mut drops: BTreeMap<&str, u64> = BTreeMap::new();
        for n in self.nodes.values() {
            for c in &n.latest.counters {
                let name = key_name(&c.key);
                if name.starts_with("drop.") {
                    *drops.entry(name).or_insert(0) += c.total;
                }
            }
        }
        let drops_total: u64 = drops.values().sum();

        let reroutes = self.sum_totals("reroutes");
        let span_s = latest_at.saturating_sub(first_at) as f64 / 1e9;
        let reroutes_per_s = if span_s > 0.0 {
            reroutes as f64 / span_s
        } else {
            0.0
        };

        let mut suspended = 0u64;
        let mut probing = 0u64;
        let mut queue_depth = 0u64;
        let mut flows = 0u64;
        let mut footprint = 0u64;
        for n in self.nodes.values() {
            suspended += n.latest.health.links.iter().filter(|l| l.suspended).count() as u64;
            probing += n.latest.health.links.iter().filter(|l| l.probing).count() as u64;
            queue_depth += n.latest.health.queue_depth;
            flows += n.latest.health.flows;
            footprint += n.latest.health.footprint_bytes;
        }

        // Cluster delivery latency: merge every node's latest digest.
        let mut latency = HistDigest {
            min: u64::MAX,
            ..HistDigest::default()
        };
        for n in self.nodes.values() {
            for h in &n.latest.hists {
                if key_name(&h.key) == "node.delivery_latency_ns" {
                    latency.merge(&h.digest);
                }
            }
        }

        // Hot links: suspended first, then deepest backlog; (node, link)
        // breaks ties deterministically.
        let mut links: Vec<(u64, u32, &son_obs::snapshot::LinkHealth)> = self
            .nodes
            .iter()
            .flat_map(|(&id, n)| n.latest.health.links.iter().map(move |l| (id, l)))
            .filter(|(_, l)| l.queue_depth > 0 || l.suspended || l.probing)
            .map(|(id, l)| (l.queue_depth, id, l))
            .collect();
        links.sort_by(|a, b| {
            b.2.suspended
                .cmp(&a.2.suspended)
                .then(b.0.cmp(&a.0))
                .then(a.1.cmp(&b.1))
                .then(a.2.link.cmp(&b.2.link))
        });
        let hot_links = links
            .iter()
            .take(top_n)
            .map(|&(_, node, l)| {
                Json::obj(vec![
                    ("node", Json::U64(u64::from(node))),
                    ("link", Json::U64(u64::from(l.link))),
                    ("neighbor", Json::U64(u64::from(l.neighbor))),
                    ("queue_depth", Json::U64(l.queue_depth)),
                    ("suspended", Json::Bool(l.suspended)),
                    ("probing", Json::Bool(l.probing)),
                ])
            })
            .collect();

        // Hot flows: last-epoch activity (deltas) of flow.* counters,
        // grouped by the flow label across nodes.
        let mut flow_heat: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for n in self.nodes.values() {
            for c in &n.latest.counters {
                if key_name(&c.key).starts_with("flow.") {
                    if let Some(flow) = key_label(&c.key, "flow") {
                        let e = flow_heat.entry(flow.to_owned()).or_insert((0, 0));
                        e.0 += c.delta;
                        e.1 += c.total;
                    }
                }
            }
        }
        let mut heat: Vec<(&String, &(u64, u64))> = flow_heat.iter().collect();
        heat.sort_by(|a, b| (b.1 .0, a.0).cmp(&(a.1 .0, b.0)));
        let hot_flows = heat
            .iter()
            .take(top_n)
            .map(|(flow, &(delta, total))| {
                Json::obj(vec![
                    ("flow", Json::str(flow)),
                    ("delta", Json::U64(delta)),
                    ("total", Json::U64(total)),
                ])
            })
            .collect();

        Json::obj(vec![
            ("kind", Json::str("son-top")),
            ("nodes", Json::U64(self.nodes.len() as u64)),
            ("members", Json::U64(members)),
            ("departed", Json::U64(departed)),
            ("snapshots", Json::U64(self.snapshots())),
            ("lost", Json::U64(lost)),
            ("dup", Json::U64(dup)),
            ("decode_errors", Json::U64(self.decode_errors)),
            ("restarts", Json::U64(restarts)),
            ("stale", Json::U64(stale)),
            ("delivery", Json::F64(delivery)),
            ("sent", Json::U64(sent)),
            ("delivered", Json::U64(delivered)),
            ("drops_total", Json::U64(drops_total)),
            (
                "drops",
                Json::Obj(
                    drops
                        .iter()
                        .map(|(k, &v)| ((*k).to_owned(), Json::U64(v)))
                        .collect(),
                ),
            ),
            ("reroutes", Json::U64(reroutes)),
            ("reroutes_per_s", Json::F64(reroutes_per_s)),
            ("suspended_links", Json::U64(suspended)),
            ("probing_links", Json::U64(probing)),
            ("queue_depth", Json::U64(queue_depth)),
            ("flows", Json::U64(flows)),
            ("footprint_bytes", Json::U64(footprint)),
            (
                "p50_latency_ms",
                Json::F64(latency.p50() as f64 / 1_000_000.0),
            ),
            (
                "p99_latency_ms",
                Json::F64(latency.p99() as f64 / 1_000_000.0),
            ),
            ("hot_links", Json::Arr(hot_links)),
            ("hot_flows", Json::Arr(hot_flows)),
        ])
    }
}

/// The counter name of a registry key: everything before the label block.
#[must_use]
pub fn key_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// The value of one label in a registry key (`name{k=v,k2=v2}`).
#[must_use]
pub fn key_label<'a>(key: &'a str, label: &str) -> Option<&'a str> {
    let block = key.strip_suffix('}')?.split_once('{')?.1;
    block.split(',').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == label).then_some(v)
    })
}

// -------------------------------------------------------------------- gate

/// Comparison operator of one gate clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOp {
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `=`
    Eq,
}

impl GateOp {
    fn holds(self, value: f64, bound: f64) -> bool {
        match self {
            GateOp::Ge => value >= bound,
            GateOp::Le => value <= bound,
            GateOp::Gt => value > bound,
            GateOp::Lt => value < bound,
            GateOp::Eq => (value - bound).abs() < f64::EPSILON,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            GateOp::Ge => ">=",
            GateOp::Le => "<=",
            GateOp::Gt => ">",
            GateOp::Lt => "<",
            GateOp::Eq => "=",
        }
    }
}

/// One SLO clause: a numeric roll-up field compared against a bound.
#[derive(Debug, Clone, PartialEq)]
pub struct GateClause {
    /// Roll-up field name (`delivery`, `stale`, `lost`, ...).
    pub metric: String,
    /// Comparison.
    pub op: GateOp,
    /// Bound.
    pub bound: f64,
}

/// A parsed `--gate` spec: all clauses must hold.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Gate {
    /// The clauses, spec order.
    pub clauses: Vec<GateClause>,
}

impl Gate {
    /// Parses `metric OP value` clauses separated by commas, e.g.
    /// `delivery>=0.95,stale<=2`. Metrics name numeric top-level fields of
    /// [`ClusterState::rollup`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed clause.
    pub fn parse(spec: &str) -> Result<Gate, String> {
        let mut clauses = Vec::new();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (op_at, op, op_len) = clause
                .find(">=")
                .map(|i| (i, GateOp::Ge, 2))
                .or_else(|| clause.find("<=").map(|i| (i, GateOp::Le, 2)))
                .or_else(|| clause.find('>').map(|i| (i, GateOp::Gt, 1)))
                .or_else(|| clause.find('<').map(|i| (i, GateOp::Lt, 1)))
                .or_else(|| clause.find('=').map(|i| (i, GateOp::Eq, 1)))
                .ok_or_else(|| format!("gate clause {clause:?}: no operator (>=, <=, >, <, =)"))?;
            let metric = clause[..op_at].trim();
            if metric.is_empty() {
                return Err(format!("gate clause {clause:?}: empty metric name"));
            }
            let bound = clause[op_at + op_len..]
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("gate clause {clause:?}: bad bound: {e}"))?;
            clauses.push(GateClause {
                metric: metric.to_owned(),
                op,
                bound,
            });
        }
        Ok(Gate { clauses })
    }

    /// Evaluates every clause against a roll-up; returns the breaches
    /// (empty = healthy). Unknown or non-numeric metrics are breaches —
    /// a typo must not silently pass a health check.
    #[must_use]
    pub fn breaches(&self, rollup: &Json) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.clauses {
            let value = rollup.get(&c.metric).and_then(|v| match v {
                Json::U64(u) => Some(*u as f64),
                Json::F64(f) => Some(*f),
                _ => None,
            });
            match value {
                None => out.push(format!("{}: no such roll-up metric", c.metric)),
                Some(v) if !c.op.holds(v, c.bound) => out.push(format!(
                    "{} = {v} violates {} {} {}",
                    c.metric,
                    c.metric,
                    c.op.symbol(),
                    c.bound
                )),
                Some(_) => {}
            }
        }
        out
    }
}

// ----------------------------------------------------------- sim-leg hook

use son_netsim::sim::Simulation;
use son_obs::snapshot::SnapshotProducer;
use son_overlay::node::OverlayNode;
use son_overlay::{OverlayHandle, Wire};

/// One sim-leg telemetry tick: renders a snapshot per daemon, exactly as
/// the UDP leg's emitter would (wall_ns is 0 in-sim). `producers` must be
/// one per daemon, `overlay.daemons` order. Observation only — the
/// simulation's fingerprint is unchanged by emitting telemetry
/// (`telemetry_does_not_perturb_fingerprint` locks this).
#[must_use]
pub fn sim_telemetry(
    sim: &Simulation<Wire>,
    overlay: &OverlayHandle,
    producers: &mut [SnapshotProducer],
    at_ns: u64,
) -> Vec<TelemetrySnapshot> {
    overlay
        .daemons
        .iter()
        .zip(producers.iter_mut())
        .map(|(&d, producer)| {
            let node = sim.proc_ref::<OverlayNode>(d).expect("daemon");
            producer.produce(at_ns, 0, node.obs().registry(), &node.telemetry_health())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_obs::snapshot::{CounterDelta, LinkHealth, NodeHealth};

    fn snap(node: u32, seq: u64, sent: u64, delivered: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            node,
            seq,
            restarts: 0,
            at_ns: seq * EPOCH_NS,
            wall_ns: 0,
            uptime_ns: seq * EPOCH_NS,
            health: NodeHealth {
                queue_depth: 2,
                links: vec![LinkHealth {
                    link: 0,
                    neighbor: node + 1,
                    queue_depth: 2,
                    suspended: seq > 2,
                    probing: false,
                }],
                flows: 1,
                footprint_bytes: 1000,
            },
            counters: vec![
                CounterDelta {
                    key: format!("flow.sent{{flow=f1,node={node}}}"),
                    total: sent,
                    delta: sent.min(10),
                },
                CounterDelta {
                    key: format!("node.delivered_local{{node={node}}}"),
                    total: delivered,
                    delta: delivered.min(10),
                },
                CounterDelta {
                    key: format!("drop.loss{{node={node}}}"),
                    total: 3,
                    delta: 0,
                },
            ],
            hists: vec![],
        }
    }

    #[test]
    fn seq_accounting_sees_loss_and_duplicates() {
        let mut c = ClusterState::new();
        c.ingest(snap(0, 0, 10, 0));
        c.ingest(snap(0, 1, 20, 0));
        c.ingest(snap(0, 4, 50, 0)); // 2 and 3 lost
        c.ingest(snap(0, 4, 50, 0)); // duplicate
        c.ingest(snap(0, 3, 40, 0)); // late
        let (_, ns) = c.nodes().next().unwrap();
        assert_eq!(ns.received, 5);
        assert_eq!(ns.lost, 2);
        assert_eq!(ns.dup, 2);
        assert_eq!(ns.max_seq, 4);
        assert_eq!(ns.latest.seq, 4, "late arrival does not regress latest");
    }

    #[test]
    fn first_sighting_of_a_joining_node_is_not_loss() {
        // A node that joins the cluster mid-run starts emitting at a
        // nonzero seq; the collector must not book its history as loss.
        let mut c = ClusterState::new();
        c.ingest(snap(1, 5, 10, 0));
        let (_, ns) = c.nodes().next().unwrap();
        assert_eq!(ns.lost, 0, "pre-sighting seqs are history, not loss");
        assert_eq!(ns.max_seq, 5);
        c.ingest(snap(1, 7, 10, 0)); // 6 skipped after sighting
        let (_, ns) = c.nodes().next().unwrap();
        assert_eq!(ns.lost, 1, "post-sighting gaps still count");
    }

    #[test]
    fn restart_resets_seq_accounting_without_false_loss() {
        let mut c = ClusterState::new();
        c.ingest(snap(0, 7, 10, 0));
        let mut reborn = snap(0, 0, 1, 0);
        reborn.restarts = 1;
        c.ingest(reborn);
        let (_, ns) = c.nodes().next().unwrap();
        assert_eq!(ns.lost, 0, "a seq reset after restart is not loss");
        assert_eq!(ns.dup, 0, "nor is it a duplicate");
        assert_eq!(ns.max_seq, 0, "accounting follows the new incarnation");
        assert_eq!(ns.latest.restarts, 1);

        let mut straggler = snap(0, 9, 10, 0);
        straggler.restarts = 0;
        c.ingest(straggler);
        let (_, ns) = c.nodes().next().unwrap();
        assert_eq!(ns.dup, 1, "old-incarnation stragglers are duplicates");
        assert_eq!(ns.latest.restarts, 1, "and do not regress latest");
    }

    #[test]
    fn rollup_aggregates_across_nodes() {
        let mut c = ClusterState::new();
        c.ingest(snap(0, 3, 100, 0));
        c.ingest(snap(1, 3, 0, 90));
        let r = c.rollup(5);
        assert_eq!(r.get("nodes").and_then(Json::as_u64), Some(2));
        assert_eq!(r.get("sent").and_then(Json::as_u64), Some(100));
        assert_eq!(r.get("delivered").and_then(Json::as_u64), Some(90));
        assert_eq!(r.get("delivery").and_then(Json::as_f64), Some(0.9));
        assert_eq!(r.get("drops_total").and_then(Json::as_u64), Some(6));
        assert_eq!(r.get("suspended_links").and_then(Json::as_u64), Some(2));
        assert_eq!(r.get("stale").and_then(Json::as_u64), Some(0));
        let flows = r.get("hot_flows").and_then(Json::as_arr).unwrap();
        assert_eq!(
            flows[0].get("flow").and_then(Json::as_str),
            Some("f1"),
            "flow label grouped across nodes"
        );
    }

    #[test]
    fn stale_is_epochs_behind_the_freshest_member() {
        let mut c = ClusterState::new();
        c.ingest(snap(0, 10, 1, 1));
        c.ingest(snap(1, 7, 1, 1)); // 3 epochs behind node 0: stale member
        let r = c.rollup(5);
        assert_eq!(r.get("stale").and_then(Json::as_u64), Some(3));
        assert_eq!(r.get("members").and_then(Json::as_u64), Some(2));
        assert_eq!(r.get("departed").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn departed_node_is_excluded_from_staleness() {
        // A member that left stops emitting; it must move to `departed`
        // instead of breaching `stale<=N` gates forever.
        let mut c = ClusterState::new();
        c.ingest(snap(0, 10, 1, 1));
        c.ingest(snap(1, 2, 1, 1)); // 8 epochs behind >= DEPART_EPOCHS
        let r = c.rollup(5);
        assert_eq!(r.get("stale").and_then(Json::as_u64), Some(0));
        assert_eq!(r.get("nodes").and_then(Json::as_u64), Some(2));
        assert_eq!(r.get("members").and_then(Json::as_u64), Some(1));
        assert_eq!(r.get("departed").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn gate_on_member_count_works() {
        let mut c = ClusterState::new();
        c.ingest(snap(0, 10, 1, 1));
        c.ingest(snap(1, 10, 1, 1));
        c.ingest(snap(2, 2, 1, 1)); // departed
        let r = c.rollup(5);
        assert!(Gate::parse("members>=2").unwrap().breaches(&r).is_empty());
        let breaches = Gate::parse("members>=3").unwrap().breaches(&r);
        assert_eq!(breaches.len(), 1, "a shrunken fleet breaches the gate");
        assert!(breaches[0].contains("members"));
    }

    #[test]
    fn gate_grammar_round_trips_and_evaluates() {
        let gate = Gate::parse("delivery>=0.95, stale<=2,lost<10").unwrap();
        assert_eq!(gate.clauses.len(), 3);
        let healthy = Json::obj(vec![
            ("delivery", Json::F64(0.99)),
            ("stale", Json::U64(1)),
            ("lost", Json::U64(0)),
        ]);
        assert!(gate.breaches(&healthy).is_empty());
        let sick = Json::obj(vec![
            ("delivery", Json::F64(0.5)),
            ("stale", Json::U64(9)),
            ("lost", Json::U64(0)),
        ]);
        let breaches = gate.breaches(&sick);
        assert_eq!(breaches.len(), 2);
        assert!(breaches[0].contains("delivery"));
    }

    #[test]
    fn gate_rejects_garbage_and_unknown_metrics_breach() {
        assert!(Gate::parse("delivery").is_err());
        assert!(Gate::parse("delivery>=banana").is_err());
        assert!(Gate::parse(">=2").is_err());
        let gate = Gate::parse("no_such_metric>=1").unwrap();
        assert_eq!(gate.breaches(&Json::obj(vec![])).len(), 1);
    }

    #[test]
    fn key_helpers_parse_registry_keys() {
        assert_eq!(key_name("flow.sent{flow=f1,node=3}"), "flow.sent");
        assert_eq!(key_name("reroutes"), "reroutes");
        assert_eq!(key_label("flow.sent{flow=f1,node=3}", "flow"), Some("f1"));
        assert_eq!(key_label("flow.sent{flow=f1,node=3}", "node"), Some("3"));
        assert_eq!(key_label("flow.sent{flow=f1}", "proto"), None);
        assert_eq!(key_label("reroutes", "node"), None);
    }

    #[test]
    fn bytes_and_rows_produce_identical_state() {
        let snaps: Vec<TelemetrySnapshot> = (0u64..4)
            .map(|s| snap(u32::from(s % 2 == 0), s, 10, 5))
            .collect();
        let mut via_bytes = ClusterState::new();
        let mut via_rows = ClusterState::new();
        for s in &snaps {
            via_bytes.ingest_bytes(&s.encode().unwrap());
            via_rows.ingest_line(&s.to_row().to_json());
        }
        assert_eq!(
            via_bytes.rollup(10).to_json(),
            via_rows.rollup(10).to_json(),
            "one schema, two transports, same roll-up"
        );
    }
}
