//! # son-bench — the experiment harness
//!
//! One binary per experiment; each regenerates a figure or quantitative
//! claim of the paper (see `DESIGN.md` §3 for the index and
//! `EXPERIMENTS.md` for paper-vs-measured results). This library holds the
//! shared runners and table-printing helpers.

pub mod churn;
pub mod export;
pub mod scale;
pub mod telemetry;
pub mod watchdog;

pub use export::{
    export_perf, export_registry, export_rows, export_timeseries, export_traces, export_watch,
    finish_export, obs_sink, tag_run,
};
pub use telemetry::{sim_telemetry, ClusterState, Gate, NodeState};

use son_netsim::loss::LossConfig;
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_obs::trace::TraceEvent;
use son_obs::{Json, Registry, TimeSeriesRing};
use son_overlay::builder::OverlayBuilder;
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, FlowRecv, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::{
    Destination, FlowSpec, LinkService, NodeConfig, OverlayAddr, OverlayHandle, Wire,
};
use son_topo::{Graph, NodeId};

/// Receiver port used by harness runs.
pub const RX_PORT: u16 = 70;
/// Sender port used by harness runs.
pub const TX_PORT: u16 = 50;

/// Wire-level accounting aggregated over all daemons for one service.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireStats {
    /// Original data transmissions.
    pub sent: u64,
    /// Retransmissions (recovery overhead).
    pub retransmitted: u64,
    /// Control messages.
    pub ctl: u64,
    /// Protocol-level drops.
    pub dropped: u64,
}

impl WireStats {
    /// Transmissions per original packet.
    #[must_use]
    pub fn overhead_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            (self.sent + self.retransmitted) as f64 / self.sent as f64
        }
    }
}

/// The result of one unicast harness run.
#[derive(Debug)]
pub struct UnicastOutcome {
    /// Packets the sender emitted.
    pub sent: u64,
    /// The receiver's log.
    pub recv: FlowRecv,
    /// Wire accounting for the flow's link service.
    pub wire: WireStats,
    /// Total de-duplication suppressions across nodes.
    pub dedup_suppressed: u64,
    /// Total daemon-level forwards (transmission count onto links).
    pub forwarded: u64,
    /// Every daemon's metrics registry absorbed into one experiment-wide
    /// view, plus the simulator's pipe-level counters — ready for
    /// [`export_registry`].
    pub registry: Registry,
    /// Every daemon's trace events, merged and time-sorted — ready for
    /// [`export_traces`]. Empty unless the run's `node_config` enables
    /// sampling (`trace_sample > 0`).
    pub traces: Vec<TraceEvent>,
    /// Flight-recorder samples taken on the run's `ts_cadence`, as JSONL
    /// rows — ready for [`export_timeseries`]. Empty when `ts_cadence` is
    /// `None`.
    pub timeseries: Vec<Json>,
}

/// Configuration of one unicast harness run.
#[derive(Debug, Clone)]
pub struct UnicastRun {
    /// Overlay topology (weights = one-way ms).
    pub topology: Graph,
    /// Daemon config.
    pub node_config: NodeConfig,
    /// Loss model on every link.
    pub loss: LossConfig,
    /// Flow services.
    pub spec: FlowSpec,
    /// Source overlay node.
    pub from: NodeId,
    /// Destination overlay node.
    pub to: NodeId,
    /// Packets to send.
    pub count: u64,
    /// Payload size.
    pub size: usize,
    /// Packet interval.
    pub interval: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Virtual time horizon.
    pub run_for: SimDuration,
    /// When set, the flight recorder snapshots the experiment-wide
    /// counters ([`default_tracked`]) at this sim-clock cadence.
    pub ts_cadence: Option<SimDuration>,
}

impl UnicastRun {
    /// A run with defaults suitable for most experiments.
    #[must_use]
    pub fn new(topology: Graph, spec: FlowSpec, from: NodeId, to: NodeId) -> Self {
        UnicastRun {
            topology,
            node_config: NodeConfig::default(),
            loss: LossConfig::Perfect,
            spec,
            from,
            to,
            count: 1000,
            size: 1000,
            interval: SimDuration::from_millis(10),
            seed: 42,
            run_for: SimDuration::from_secs(30),
            ts_cadence: None,
        }
    }

    /// Executes the run.
    #[must_use]
    pub fn run(self) -> UnicastOutcome {
        let mut sim: Simulation<Wire> = Simulation::new(self.seed);
        let overlay = OverlayBuilder::new(self.topology)
            .node_config(self.node_config.clone())
            .default_loss(self.loss.clone())
            .build(&mut sim);
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(self.to),
            port: RX_PORT,
            joins: vec![],
            flows: vec![],
        }));
        let tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(self.from),
            port: TX_PORT,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(self.to, RX_PORT)),
                spec: self.spec,
                workload: Workload::Cbr {
                    size: self.size,
                    interval: self.interval,
                    count: self.count,
                    start: SimTime::from_millis(500),
                },
            }],
        }));
        let until = SimTime::ZERO + self.run_for;
        let timeseries = match self.ts_cadence {
            None => {
                sim.run_until(until);
                Vec::new()
            }
            Some(cadence) => {
                let mut recorder = TimeSeriesRing::new(4096, default_tracked());
                sim.run_with_cadence(until, cadence, |sim, at, wall| {
                    let reg = gather_registry(sim, &overlay);
                    recorder.snapshot_registry(at.as_nanos(), wall, &reg);
                });
                recorder.rows()
            }
        };
        harvest(&sim, &overlay, tx, rx, self.spec.link, timeseries)
    }
}

/// Pulls the outcome out of a finished simulation.
#[must_use]
pub fn harvest(
    sim: &Simulation<Wire>,
    overlay: &OverlayHandle,
    tx: son_netsim::process::ProcessId,
    rx: son_netsim::process::ProcessId,
    service: LinkService,
    timeseries: Vec<Json>,
) -> UnicastOutcome {
    let sent = sim.proc_ref::<ClientProcess>(tx).expect("sender").sent(1);
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .expect("receiver")
        .recv
        .values()
        .next()
        .cloned()
        .unwrap_or_default();
    let (wire, dedup_suppressed, forwarded) = wire_stats(sim, overlay, service);
    let registry = gather_registry(sim, overlay);
    let traces = gather_traces(sim, overlay);
    UnicastOutcome {
        sent,
        recv,
        wire,
        dedup_suppressed,
        forwarded,
        registry,
        traces,
        timeseries,
    }
}

/// The counters the flight recorder tracks by default: the cross-layer
/// signals a post-mortem reads first (work done, recovery churn, routing
/// churn).
#[must_use]
pub fn default_tracked() -> Vec<String> {
    [
        "node.forwarded",
        "node.delivered_local",
        "link.retransmit",
        "link.loss_detected",
        "reroutes",
        "provider_switches",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect()
}

/// Merges every daemon's trace ring into one time-sorted event stream.
/// Sorting is by `(at_ns, trace_id, hop, node)` so equal-time events from
/// different daemons land in a deterministic order.
#[must_use]
pub fn gather_traces(sim: &Simulation<Wire>, overlay: &OverlayHandle) -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = Vec::new();
    for &d in &overlay.daemons {
        let node = sim.proc_ref::<OverlayNode>(d).expect("daemon");
        events.extend(node.obs().traces().events().copied());
    }
    events.sort_by_key(|e| (e.at_ns, e.trace_id, e.hop, e.node));
    events
}

/// Merges every daemon's watchdog audit ring into one time-sorted stream.
/// Sorting is by `(at_ns, node, link)` so equal-time events from different
/// daemons land in a deterministic order.
#[must_use]
pub fn gather_watch(
    sim: &Simulation<Wire>,
    overlay: &OverlayHandle,
) -> Vec<son_obs::watch::WatchEvent> {
    let mut events: Vec<son_obs::watch::WatchEvent> = Vec::new();
    for &d in &overlay.daemons {
        let node = sim.proc_ref::<OverlayNode>(d).expect("daemon");
        events.extend(node.obs().watch_events().events().copied());
    }
    events.sort_by_key(|e| (e.at_ns, e.node, e.link));
    events
}

/// Absorbs every daemon's metrics registry into one experiment-wide
/// registry, and folds in the simulator's pipe-level counters (labelled
/// `layer=pipe`) so cross-layer accounting lives in one place.
#[must_use]
pub fn gather_registry(sim: &Simulation<Wire>, overlay: &OverlayHandle) -> Registry {
    let mut reg = Registry::new();
    for &d in &overlay.daemons {
        let node = sim.proc_ref::<OverlayNode>(d).expect("daemon");
        reg.absorb(node.obs().registry());
    }
    for (name, value) in sim.counters().iter() {
        let id = reg.counter(name, &[("layer", "pipe")]);
        reg.add(id, value);
    }
    reg
}

/// Aggregates link-protocol and node statistics across all daemons.
#[must_use]
pub fn wire_stats(
    sim: &Simulation<Wire>,
    overlay: &OverlayHandle,
    service: LinkService,
) -> (WireStats, u64, u64) {
    let mut wire = WireStats::default();
    let mut dedup = 0;
    let mut forwarded = 0;
    for &d in &overlay.daemons {
        let node = sim.proc_ref::<OverlayNode>(d).expect("daemon");
        let s = node.service_stats(service);
        wire.sent += s.sent;
        wire.retransmitted += s.retransmitted;
        wire.ctl += s.ctl_sent;
        wire.dropped += s.dropped;
        dedup += node.metrics().dedup_suppressed;
        forwarded += node.metrics().forwarded;
    }
    (wire, dedup, forwarded)
}

/// A ring of `n` nodes (`hop_ms` per link) plus a long chord every
/// `chord_every` positions on the first half of the ring (`0` = plain
/// ring). Scales the route-recompute benchmarks from 16 to 256 nodes while
/// staying within the 256-edge source-route mask: at 256 nodes the ring
/// alone uses every mask bit, so it carries no chords.
#[must_use]
pub fn ring_with_chords(n: usize, hop_ms: f64, chord_every: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n), hop_ms);
    }
    if chord_every > 0 {
        let mut i = 0;
        while i < n / 2 && g.edge_count() < son_topo::graph::MAX_EDGES {
            g.add_edge(NodeId(i), NodeId(i + n / 2), hop_ms * 1.5);
            i += chord_every;
        }
    }
    g
}

/// Prints an experiment header.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("    {claim}");
    println!();
}

/// Prints a table header row and a separator.
pub fn table_header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, width) in cols {
        line.push_str(&format!("{name:>width$}  ", width = width));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
}

/// Formats a cell-aligned row.
pub fn row(cells: &[(String, usize)]) {
    let mut line = String::new();
    for (value, width) in cells {
        line.push_str(&format!("{value:>width$}  ", width = width));
    }
    println!("{line}");
}

/// Shorthand for fixed-precision cells.
#[must_use]
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_overlay::builder::chain_topology;

    #[test]
    fn unicast_run_delivers() {
        let mut run = UnicastRun::new(
            chain_topology(3, 10.0),
            FlowSpec::reliable(),
            NodeId(0),
            NodeId(2),
        );
        run.count = 50;
        let out = run.run();
        assert_eq!(out.sent, 50);
        assert_eq!(out.recv.received, 50);
        assert_eq!(
            out.wire.overhead_ratio(),
            1.0,
            "no loss, no retransmissions"
        );
        assert!(out.forwarded >= 100, "two hops per packet");
    }

    #[test]
    fn unicast_run_with_loss_recovers() {
        let mut run = UnicastRun::new(
            chain_topology(3, 10.0),
            FlowSpec::reliable(),
            NodeId(0),
            NodeId(2),
        );
        run.count = 200;
        run.loss = LossConfig::Bernoulli { p: 0.05 };
        let out = run.run();
        assert_eq!(out.recv.received, 200);
        assert!(out.wire.retransmitted > 0);
        assert!(out.wire.overhead_ratio() > 1.0);
    }
}
