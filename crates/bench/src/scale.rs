//! E16 — the scale observatory harness.
//!
//! Sweeps seeded ring-with-chords overlays over increasing node counts and
//! measures, per N, the three axes the paper's scaling story rests on:
//!
//! 1. **Throughput** — simulated packets forwarded per wall-clock second
//!    while CBR flows cross the overlay and one link fails mid-run.
//! 2. **Memory** — retained bytes per node, broken down by subsystem via
//!    [`son_overlay::node::OverlayNode::footprint`]. Per-node state holds
//!    the full link-state view, so bytes/node grows O(N); the committed
//!    `BENCH_scale.json` curve gates against anything worse (O(N²) per
//!    node would mean O(N³) fleet-wide — a design regression).
//! 3. **Reroute latency** — the `route.rebuild` profiler stage's total-time
//!    percentiles: what one topology change costs a daemon, snapshot
//!    rebuild plus Dijkstra, as N grows.
//!
//! Each N runs twice on the same seed: once with the profiler off (the
//! clean throughput figure) and once with it on (profiler stages and the
//! perf-overhead figure). The sim is deterministic, so both passes execute
//! the identical event sequence and the wall-clock delta prices the
//! profiler alone.

use std::time::Instant;

use son_netsim::event::QueueStats;
use son_netsim::shard::ShardStats;
use son_netsim::sim::{ScenarioEvent, Simulation};
use son_netsim::time::{SimDuration, SimTime};
use son_obs::{FootprintReport, PerfRegistry, PerfStageStats};
use son_overlay::builder::OverlayBuilder;
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::state::connectivity::ConnectivityConfig;
use son_overlay::{Destination, FlowSpec, NodeConfig, OverlayAddr, Wire};
use son_topo::{EdgeId, Graph, NodeId};

use crate::{RX_PORT, TX_PORT};

/// Master seed for every scale run: the sweep must be reproducible so the
/// committed `BENCH_scale.json` curve is comparable across machines.
pub const SCALE_SEED: u64 = 11;

/// Cross-overlay CBR flows per run — constant across N so throughput
/// differences isolate the per-node routing and data-path costs.
pub const SCALE_FLOWS: usize = 8;

/// LSA rebuild hold-down used by every scale run. Without it, cold start
/// is an O(N²) convergence storm: each of N daemons rebuilds routes once
/// per arriving LSA during the initial flood (~N rebuilds per daemon).
/// With the debounce the flood coalesces into a handful of rebuilds per
/// daemon, so fleet-wide rebuilds stay O(N).
pub const SCALE_HOLD_DOWN: SimDuration = SimDuration::from_millis(250);

/// A ring of `n` nodes (`hop_ms` per link) plus a chord from `i` to
/// `i + n/2` every 16 positions on the first half. Unlike
/// [`crate::ring_with_chords`] this does *not* stop at the 256-edge
/// source-route mask: link-state unicast routing never builds edge masks,
/// and the scale sweep needs topologies far past 256 edges.
#[must_use]
pub fn scale_topology(n: usize, hop_ms: f64) -> Graph {
    assert!(
        n >= 16 && n.is_multiple_of(2),
        "scale topology needs an even n >= 16"
    );
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n), hop_ms);
    }
    let mut i = 0;
    while i < n / 2 {
        g.add_edge(NodeId(i), NodeId(i + n / 2), hop_ms * 1.5);
        i += 16;
    }
    g
}

/// One measured point of the sweep.
pub struct ScaleResult {
    /// Overlay size.
    pub n: usize,
    /// Event-engine shards the run used (1 = sequential).
    pub shards: usize,
    /// Per-shard load and merge-stall figures (zeros when sequential),
    /// from the perf-off pass.
    pub shard_stats: ShardStats,
    /// Event-queue occupancy and compaction counters (perf-off pass).
    pub queue_stats: QueueStats,
    /// Virtual-time horizon of the run.
    pub sim_seconds: f64,
    /// Wall-clock cost of the profiler-off pass.
    pub wall_seconds: f64,
    /// Wall-clock cost of the profiler-on pass (same event sequence).
    pub perf_wall_seconds: f64,
    /// Data packets forwarded onto links, summed over daemons (perf-off).
    pub forwarded: u64,
    /// Packets the flow receivers logged (perf-off).
    pub delivered: u64,
    /// Route recomputations, summed over daemons (perf-off).
    pub reroutes: u64,
    /// Retained-bytes estimate summed over every daemon, by subsystem
    /// (taken from the perf-off pass so profiler state is not charged).
    pub footprint: FootprintReport,
    /// Every daemon's profiler plus the event loop's, absorbed into one
    /// fleet-wide view (from the perf-on pass).
    pub perf: PerfRegistry,
}

impl ScaleResult {
    /// Simulated packets forwarded per wall-clock second (perf-off pass).
    #[must_use]
    pub fn pkts_per_wall_s(&self) -> f64 {
        self.forwarded as f64 / self.wall_seconds.max(1e-9)
    }

    /// Profiler overhead as a fraction of the perf-off wall time (may be
    /// slightly negative from scheduler noise on short runs).
    #[must_use]
    pub fn perf_overhead(&self) -> f64 {
        self.perf_wall_seconds / self.wall_seconds.max(1e-9) - 1.0
    }

    /// Average retained bytes per node, by subsystem label.
    #[must_use]
    pub fn bytes_per_node(&self) -> Vec<(&'static str, f64)> {
        self.footprint
            .parts()
            .iter()
            .map(|p| (p.label, p.bytes as f64 / self.n as f64))
            .collect()
    }

    /// Average retained bytes per node, all subsystems.
    #[must_use]
    pub fn bytes_per_node_total(&self) -> f64 {
        self.footprint.total() as f64 / self.n as f64
    }

    /// Average retained bytes per node excluding the fixed-capacity
    /// observability rings (`rings`): the state that actually grows with N
    /// — link-state DB, routing tables, topology — and the quantity the
    /// sublinearity gate watches. Gating on the total would let the flat
    /// ~MiB ring preallocation mask an O(N²)-per-node regression.
    #[must_use]
    pub fn bytes_per_node_state(&self) -> f64 {
        let rings = self
            .footprint
            .parts()
            .iter()
            .find(|p| p.label == "rings")
            .map_or(0, |p| p.bytes);
        (self.footprint.total() - rings) as f64 / self.n as f64
    }

    /// The fleet-wide `route.rebuild` stage, if the perf pass recorded it:
    /// what one topology change costs a daemon (snapshot + Dijkstra).
    #[must_use]
    pub fn reroute_stage(&self) -> Option<PerfStageStats> {
        self.perf
            .stats()
            .into_iter()
            .find(|s| s.label == "route.rebuild")
    }
}

struct Pass {
    wall_seconds: f64,
    forwarded: u64,
    delivered: u64,
    reroutes: u64,
    footprint: FootprintReport,
    perf: PerfRegistry,
    shard_stats: ShardStats,
    queue_stats: QueueStats,
}

/// One deterministic run at size `n`: CBR flows crossing the overlay, one
/// ring link cut at 1.5s and restored at 2.2s (forcing a fleet-wide
/// reroute wave), horizon `sim_seconds`. With `shards > 1` the event
/// engine runs the conservative parallel core — bit-identical to
/// sequential, so every figure except wall time matches `shards = 1`.
fn run_pass(n: usize, sim_seconds: u64, perf: bool, shards: usize) -> Pass {
    let topo = scale_topology(n, 10.0);
    let mut sim: Simulation<Wire> = Simulation::new(SCALE_SEED);
    if perf {
        sim.enable_perf();
    }
    let connectivity = ConnectivityConfig {
        rebuild_hold_down: SCALE_HOLD_DOWN,
        ..ConnectivityConfig::default()
    };
    let overlay = OverlayBuilder::new(topo)
        .node_config(NodeConfig {
            perf,
            connectivity,
            ..NodeConfig::default()
        })
        .build(&mut sim);

    // Flows from evenly spaced sources to (almost) the antipode: the +5
    // offset keeps each path off a single chord so forwarding does real
    // multi-hop work.
    let mut rxs = Vec::new();
    let mut clients = Vec::new();
    for k in 0..SCALE_FLOWS {
        let a = k * n / SCALE_FLOWS;
        let b = (a + n / 2 + 5) % n;
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(b)),
            port: RX_PORT + k as u16,
            joins: vec![],
            flows: vec![],
        }));
        rxs.push(rx);
        clients.push((rx, NodeId(b)));
        let tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(a)),
            port: TX_PORT + k as u16,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(b), RX_PORT + k as u16)),
                spec: FlowSpec::best_effort(),
                workload: Workload::Cbr {
                    size: 1000,
                    interval: SimDuration::from_millis(2),
                    count: u64::MAX,
                    start: SimTime::from_millis(500),
                },
            }],
        }));
        clients.push((tx, NodeId(a)));
    }
    if shards > 1 {
        // Contiguous daemon blocks; clients ride their daemon's shard
        // (client<->daemon IPC is zero-latency and must not cross shards).
        let mut plan = overlay.shard_plan(shards, sim.process_count());
        for &(client, node) in &clients {
            overlay.colocate(&mut plan, client, node);
        }
        sim.set_shard_plan(Some(plan));
    }

    // Cut one ring link mid-run and bring it back: every daemon sees the
    // failure LSA, rebuilds, then rebuilds again on recovery.
    let victim = EdgeId(1);
    for &(ab, ba) in &overlay.edge_pipes[&victim] {
        sim.schedule(SimTime::from_millis(1500), ScenarioEvent::DisablePipe(ab));
        sim.schedule(SimTime::from_millis(1500), ScenarioEvent::DisablePipe(ba));
        sim.schedule(SimTime::from_millis(2200), ScenarioEvent::EnablePipe(ab));
        sim.schedule(SimTime::from_millis(2200), ScenarioEvent::EnablePipe(ba));
    }

    let wall = Instant::now();
    sim.run_until(SimTime::from_secs(sim_seconds));
    let wall_seconds = wall.elapsed().as_secs_f64();

    let mut forwarded = 0;
    let mut reroutes = 0;
    let mut footprint = FootprintReport::new();
    let merged = PerfRegistry::new(false);
    for &d in &overlay.daemons {
        let node = sim.proc_ref::<OverlayNode>(d).expect("daemon");
        let m = node.metrics();
        forwarded += m.forwarded;
        reroutes += m.counters.get("reroutes");
        footprint.merge(&node.footprint());
        merged.absorb(node.obs().perf());
    }
    if let Some(p) = sim.perf() {
        merged.absorb(p);
    }
    let delivered = rxs
        .iter()
        .map(|&rx| {
            sim.proc_ref::<ClientProcess>(rx)
                .expect("receiver")
                .sole_recv()
                .received
        })
        .sum();
    Pass {
        wall_seconds,
        forwarded,
        delivered,
        reroutes,
        footprint,
        perf: merged,
        shard_stats: sim.shard_stats().clone(),
        queue_stats: sim.queue_stats(),
    }
}

/// Measures one point of the sweep: the perf-off pass (throughput and
/// footprints) followed by the perf-on pass (profiler stages) on the same
/// seed and event sequence.
#[must_use]
pub fn run_scale(n: usize, sim_seconds: u64) -> ScaleResult {
    run_scale_sharded(n, sim_seconds, 1)
}

/// [`run_scale`] on the sharded engine. The event sequence — and thus
/// every figure but wall time — is bit-identical to `shards = 1`.
#[must_use]
pub fn run_scale_sharded(n: usize, sim_seconds: u64, shards: usize) -> ScaleResult {
    let base = run_pass(n, sim_seconds, false, shards);
    let profiled = run_pass(n, sim_seconds, true, shards);
    debug_assert_eq!(
        base.forwarded, profiled.forwarded,
        "profiler must not perturb the simulation"
    );
    ScaleResult {
        n,
        shards: shards.max(1),
        shard_stats: base.shard_stats,
        queue_stats: base.queue_stats,
        sim_seconds: sim_seconds as f64,
        wall_seconds: base.wall_seconds,
        perf_wall_seconds: profiled.wall_seconds,
        forwarded: base.forwarded,
        delivered: base.delivered,
        reroutes: base.reroutes,
        footprint: base.footprint,
        perf: profiled.perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_topology_shape() {
        let g = scale_topology(64, 10.0);
        assert_eq!(g.node_count(), 64);
        // 64 ring edges + chords at 0 and 16.
        assert_eq!(g.edge_count(), 66);
        let big = scale_topology(1024, 10.0);
        assert!(big.edge_count() > son_topo::graph::MAX_EDGES);
    }

    #[test]
    fn scale_point_measures_all_three_axes() {
        let r = run_scale(16, 3);
        assert!(r.delivered > 0, "flows must deliver");
        assert!(r.forwarded > r.delivered, "multi-hop paths forward more");
        assert!(r.reroutes > 0, "the link cut must trigger reroutes");
        assert!(r.bytes_per_node_total() > 0.0);
        let labels: Vec<&str> = r.footprint.parts().iter().map(|p| p.label).collect();
        for want in ["routing", "lsdb", "topo", "rings"] {
            assert!(labels.contains(&want), "missing footprint label {want}");
        }
        let stage = r.reroute_stage().expect("route.rebuild stage recorded");
        assert!(stage.count > 0);
        assert!(stage.total_p50_ns > 0.0);
        // The profiled pass must replay the identical event sequence.
        assert_eq!(r.forwarded, run_pass(16, 3, true, 1).forwarded);
    }

    #[test]
    fn sharded_scale_run_matches_sequential() {
        let seq = run_scale(16, 3);
        let par = run_scale_sharded(16, 3, 4);
        assert_eq!(par.shards, 4);
        assert_eq!(seq.forwarded, par.forwarded);
        assert_eq!(seq.delivered, par.delivered);
        assert_eq!(seq.reroutes, par.reroutes);
        assert_eq!(par.shard_stats.loads.len(), 4);
        assert!(par.shard_stats.windows > 0);
        assert!(
            par.shard_stats.loads.iter().map(|l| l.events).sum::<u64>() > 0,
            "per-shard event counts recorded"
        );
    }

    #[test]
    fn hold_down_caps_cold_start_rebuilds() {
        // Without the hold-down each daemon rebuilds ~once per arriving
        // LSA during the cold-start flood (~N per daemon → ~N^2 fleet-wide);
        // with it the flood coalesces to a handful per daemon.
        let r = run_scale(32, 3);
        assert!(
            r.reroutes <= 32 * 10,
            "cold-start rebuild storm is back: {} reroutes at n=32",
            r.reroutes
        );
    }
}
