//! E9 — §V-C: compound flows with in-overlay transcoding and failover.
//!
//! A stadium feed crosses the overlay to an anycast-selected transcoding
//! facility, is transformed (downscaled, with processing latency), and the
//! rendition is multicast onward to CDN ingest points. Mid-run the active
//! facility fails; the overlay's shared group state re-resolves the anycast
//! to the surviving facility and the compound flow continues.

use son_apps::transcode::{TranscoderConfig, TranscoderProcess, OUTPUT_GROUP, TRANSCODE_GROUP};
use son_apps::video::VideoProfile;
use son_bench::{banner, f, row, table_header, RX_PORT, TX_PORT};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess};
use son_overlay::{Destination, FlowSpec, Wire};
use son_topo::NodeId;

const STADIUM: NodeId = NodeId(4); // MIA: the live event
const FACILITY_A: NodeId = NodeId(3); // ATL cloud region (nearest)
const FACILITY_B: NodeId = NodeId(5); // CHI cloud region (backup)
const CDNS: [NodeId; 3] = [NodeId(0), NodeId(9), NodeId(11)]; // NYC, SEA, LA

fn run(fail_primary: bool) -> (u64, u64, u64, Vec<u64>, f64, f64) {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let mut sim: Simulation<Wire> = Simulation::new(91);
    let overlay = OverlayBuilder::new(topo).build(&mut sim);

    let mk = |node: NodeId, fail_at: Option<SimTime>| TranscoderConfig {
        daemon: overlay.daemon(node),
        port: 150,
        input_group: TRANSCODE_GROUP,
        output_group: OUTPUT_GROUP,
        scale: 0.25,
        processing: SimDuration::from_millis(30),
        output_spec: FlowSpec::reliable(),
        fail_at,
    };
    let fac_a = sim.add_process(TranscoderProcess::new(mk(
        FACILITY_A,
        fail_primary.then(|| SimTime::from_secs(10)),
    )));
    let fac_b = sim.add_process(TranscoderProcess::new(mk(FACILITY_B, None)));

    let cdns: Vec<_> = CDNS
        .iter()
        .map(|&n| {
            sim.add_process(ClientProcess::new(ClientConfig {
                daemon: overlay.daemon(n),
                port: RX_PORT,
                joins: vec![OUTPUT_GROUP],
                flows: vec![],
            }))
        })
        .collect();

    let profile = VideoProfile::broadcast_sd();
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(STADIUM),
        port: TX_PORT,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Anycast(TRANSCODE_GROUP),
            spec: FlowSpec::reliable(),
            workload: profile.workload(SimTime::from_secs(1), SimDuration::from_secs(20)),
        }],
    }));
    sim.run_until(SimTime::from_secs(30));

    let sent = sim.proc_ref::<ClientProcess>(tx).unwrap().sent(1);
    let a = sim.proc_ref::<TranscoderProcess>(fac_a).unwrap();
    let b = sim.proc_ref::<TranscoderProcess>(fac_b).unwrap();
    let stage1_latency = a
        .input_latency_ms
        .mean()
        .or(b.input_latency_ms.mean())
        .unwrap_or(f64::NAN);
    let per_cdn: Vec<u64> = cdns
        .iter()
        .map(|&c| {
            sim.proc_ref::<ClientProcess>(c)
                .unwrap()
                .recv
                .values()
                .map(|r| r.received)
                .sum()
        })
        .collect();
    // Failover gap: longest delivery gap at the first CDN after the failure.
    let gap = sim
        .proc_ref::<ClientProcess>(cdns[0])
        .unwrap()
        .recv
        .values()
        .flat_map(|r| r.arrivals.windows(2))
        .filter(|w| w[1].0 > SimTime::from_secs(10))
        .map(|w| w[1].0.saturating_since(w[0].0).as_millis_f64())
        .fold(0.0f64, f64::max);
    (sent, a.processed, b.processed, per_cdn, stage1_latency, gap)
}

fn main() {
    banner(
        "E9 / Section V-C (compound flows: transcode in the overlay)",
        "stadium -> anycast transcoding facility -> multicast to CDNs, with facility failover",
    );

    table_header(&[
        ("scenario", 18),
        ("sent", 6),
        ("facility A", 10),
        ("facility B", 10),
        ("min CDN recv", 12),
        ("stage1 ms", 9),
        ("failover gap", 12),
    ]);
    for fail in [false, true] {
        let (sent, a, b, per_cdn, stage1, gap) = run(fail);
        row(&[
            (
                if fail {
                    "A fails at t=10s"
                } else {
                    "no failure"
                }
                .to_string(),
                18,
            ),
            (sent.to_string(), 6),
            (a.to_string(), 10),
            (b.to_string(), 10),
            (per_cdn.iter().min().unwrap().to_string(), 12),
            (f(stage1, 1), 9),
            (if fail { f(gap, 0) + "ms" } else { "-".into() }, 12),
        ]);
    }

    println!();
    println!("Shape check (paper): the compound flow's guarantees hold through the");
    println!("transformation (every CDN receives the rendition); when the facility");
    println!("fails, anycast re-resolution moves the flow to the backup facility at");
    println!("sub-second scale and the stream continues (only in-flight packets to");
    println!("the dead facility are lost).");
}
