//! E2 — Figure 4 / §IV-A: the NM-Strikes real-time protocol.
//!
//! "On the scale of a continent with a 40ms propagation delay, the 200ms
//! latency bound allows about 160ms for the protocol to recover lost
//! packets... The overall cost of the NM-Strikes protocol is 1 + Mp."
//!
//! A 4-hop continental path (4 × 10 ms) carries live video under bursty
//! (Gilbert–Elliott) loss. We sweep the burst profile and the (N, M)
//! parameters and compare against Best Effort (no recovery) and the
//! Reliable Data Link (complete reliability, unbounded timeliness), judging
//! by the paper's metric: fraction of packets delivered within the 200 ms
//! bound, and wire overhead versus the 1 + M·p prediction.

use son_bench::{
    banner, export_registry, f, finish_export, obs_sink, row, table_header, UnicastRun,
};
use son_netsim::loss::LossConfig;
use son_netsim::time::SimDuration;
use son_obs::JsonlSink;
use son_overlay::builder::chain_topology;
use son_overlay::service::FecParams;
use son_overlay::{FlowSpec, LinkService, RealtimeParams};
use son_topo::NodeId;

const DEADLINE_MS: f64 = 200.0;

fn run_one(
    spec: FlowSpec,
    loss: LossConfig,
    seed: u64,
    sink: &mut Option<JsonlSink>,
    tag: &str,
) -> (f64, f64, f64, u64) {
    let mut run = UnicastRun::new(chain_topology(5, 10.0), spec, NodeId(0), NodeId(4));
    run.loss = loss;
    run.count = 30_000;
    run.size = 1316;
    run.interval = SimDuration::from_millis(2);
    run.run_for = SimDuration::from_secs(120);
    run.seed = seed;
    let out = run.run();
    if let Some(sink) = sink {
        let _ = export_registry(sink, tag, &out.registry);
    }
    let within = out
        .recv
        .latency_ms
        .fraction_within(DEADLINE_MS)
        .unwrap_or(0.0)
        * out.recv.received as f64
        / out.sent as f64;
    let mut lat = out.recv.latency_ms.clone();
    let p999 = lat.quantile(0.999).unwrap_or(f64::NAN);
    (within, p999, out.wire.overhead_ratio(), out.sent)
}

fn main() {
    banner(
        "E2 / Figure 4 (NM-Strikes)",
        "complete timeliness within 200ms on a continental path under bursty loss; cost -> 1 + M*p",
    );

    let bursts = [
        (
            "1% loss, 5ms bursts",
            LossConfig::bursts(SimDuration::from_millis(495), SimDuration::from_millis(5)),
            0.01,
        ),
        (
            "1% loss, 20ms bursts",
            LossConfig::bursts(SimDuration::from_millis(1980), SimDuration::from_millis(20)),
            0.01,
        ),
        (
            "5% loss, 20ms bursts",
            LossConfig::bursts(SimDuration::from_millis(380), SimDuration::from_millis(20)),
            0.05,
        ),
        (
            "5% loss, 50ms bursts",
            LossConfig::bursts(SimDuration::from_millis(950), SimDuration::from_millis(50)),
            0.05,
        ),
    ];

    table_header(&[
        ("loss profile", 22),
        ("protocol", 16),
        ("within 200ms", 12),
        ("p99.9 ms", 9),
        ("overhead", 8),
        ("1+Mp", 6),
    ]);

    let mut sink = obs_sink("exp_nm_strikes");
    for (burst_label, loss, p) in &bursts {
        let mut protos: Vec<(String, FlowSpec, Option<f64>)> = vec![
            (
                "best effort".into(),
                FlowSpec::best_effort()
                    .with_ordered(true)
                    .with_deadline(SimDuration::from_millis(200)),
                None,
            ),
            ("reliable (hbh)".into(), FlowSpec::reliable(), None),
        ];
        for (n, m) in [(1u8, 1u8), (2, 2), (3, 2), (3, 3)] {
            let params = RealtimeParams {
                n_requests: n,
                m_retransmissions: m,
                budget: SimDuration::from_millis(160),
            };
            protos.push((
                format!("NM-Strikes {n}x{m}"),
                FlowSpec::best_effort()
                    .with_link(LinkService::Realtime(params))
                    .with_ordered(true)
                    .with_deadline(SimDuration::from_millis(200)),
                Some(1.0 + f64::from(m) * p),
            ));
        }
        for fec in [FecParams::light(), FecParams::strong()] {
            protos.push((
                format!("FEC {}+{}", fec.k, fec.r),
                FlowSpec::best_effort()
                    .with_link(LinkService::Fec(fec))
                    .with_ordered(true)
                    .with_deadline(SimDuration::from_millis(200)),
                Some(fec.overhead()),
            ));
        }
        for (name, spec, predicted) in protos {
            let tag = format!("{burst_label}/{name}");
            let (within, p999, overhead, _) = run_one(
                spec,
                loss.clone(),
                7_000 + (*p * 1e3) as u64,
                &mut sink,
                &tag,
            );
            row(&[
                (burst_label.to_string(), 22),
                (name, 16),
                (f(within * 100.0, 2) + "%", 12),
                (f(p999, 1), 9),
                (f(overhead, 3), 8),
                (predicted.map_or("-".into(), |v| f(v, 3)), 6),
            ]);
        }
        println!();
    }

    if let Some(sink) = sink {
        finish_export(sink);
    }
    println!("Shape check (paper): NM-Strikes keeps ~all packets within the 200ms bound even");
    println!("with correlated bursts (more strikes help as bursts lengthen); best effort loses");
    println!("p% outright; hop-by-hop reliable recovers everything but blows the deadline tail;");
    println!("NM-Strikes overhead tracks 1 + M*p (it is lower when fewer than M copies are");
    println!("needed, i.e. the worst-case bound holds).");
}
