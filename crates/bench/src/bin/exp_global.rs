//! E11 — §II-A: global coverage with a few tens of overlay nodes.
//!
//! "A key property of structured overlay networks is that they require only
//! a few tens of well situated overlay nodes to provide excellent global
//! coverage... about 150ms is sufficient to reach nearly any point on the
//! globe from any other point."
//!
//! A 20-node world overlay over two submarine-cable providers. We report
//! the all-pairs overlay latency distribution (including per-hop processing)
//! and then actually run the hardest flow — live video New York → Sydney
//! under bursty loss with NM-Strikes — to show the paper's live-TV service
//! works at planetary scale.

use son_bench::{banner, f, row, table_header, RX_PORT, TX_PORT};
use son_netsim::loss::LossConfig;
use son_netsim::scenario::{global_20, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{global_overlay, OverlayBuilder, HOP_PROCESSING};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
use son_topo::{dijkstra, NodeId};

fn main() {
    banner(
        "E11 / Section II-A (global coverage)",
        "a few tens of overlay nodes reach nearly any point on the globe within ~150ms",
    );

    let sc = global_20(DEFAULT_CONVERGENCE);
    let (topo, cities) = global_overlay(&sc);
    let hop_ms = HOP_PROCESSING.as_millis_f64();

    // All-pairs overlay latency.
    let mut lat = son_netsim::stats::Percentiles::new();
    let mut worst = (0usize, 0usize, 0.0f64);
    for a in 0..cities.len() {
        let spt = dijkstra(&topo, NodeId(a));
        for b in 0..cities.len() {
            if a == b {
                continue;
            }
            let p = spt.path_to(NodeId(b)).expect("connected");
            let ms = p.cost + hop_ms * p.hops() as f64;
            lat.record(ms);
            if ms > worst.2 {
                worst = (a, b, ms);
            }
        }
    }
    table_header(&[("all-pairs overlay latency", 26), ("ms", 8)]);
    for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("max", 1.0)] {
        row(&[(label.to_string(), 26), (f(lat.quantile(q).unwrap(), 1), 8)]);
    }
    println!(
        "\nworst pair: {} -> {} at {:.1}ms ({} overlay nodes total)",
        sc.underlay.city_name(cities[worst.0]),
        sc.underlay.city_name(cities[worst.1]),
        worst.2,
        cities.len()
    );

    // Live video NYC -> SYD with NM-Strikes under 1% bursty loss.
    let nyc = NodeId(cities.iter().position(|&c| c == sc.city("NYC")).unwrap());
    let syd = NodeId(cities.iter().position(|&c| c == sc.city("SYD")).unwrap());
    let mut sim: Simulation<Wire> = Simulation::new(111);
    let overlay = OverlayBuilder::new(topo)
        .default_loss(LossConfig::bursts(
            SimDuration::from_millis(990),
            SimDuration::from_millis(10),
        ))
        .build(&mut sim);
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(syd),
        port: RX_PORT,
        joins: vec![],
        flows: vec![],
    }));
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(nyc),
        port: TX_PORT,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(syd, RX_PORT)),
            spec: FlowSpec::live_video(SimDuration::from_millis(200)),
            workload: Workload::Cbr {
                size: 1316,
                interval: SimDuration::from_millis(2),
                count: 10_000,
                start: SimTime::from_secs(1),
            },
        }],
    }));
    sim.run_until(SimTime::from_secs(30));
    let sent = sim.proc_ref::<ClientProcess>(tx).unwrap().sent(1);
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .recv
        .values()
        .next()
        .cloned()
        .unwrap_or_default();
    let mut l = recv.latency_ms.clone();
    println!("\nlive video NYC -> SYD (200ms bound, 1% bursty loss/link):");
    println!(
        "  delivered within bound: {:.2}%  (p50 {:.1}ms, max {:.1}ms)",
        100.0 * recv.received as f64 / sent as f64 * l.fraction_within(200.0).unwrap_or(0.0),
        l.quantile(0.5).unwrap_or(f64::NAN),
        l.max().unwrap_or(f64::NAN),
    );
    println!();
    println!("Shape check (paper): 20 well-situated nodes cover the globe with worst");
    println!("pairs near the 150ms mark, and the live-TV service holds its 200ms bound");
    println!("even on the longest path.");
}
