//! E20 — membership churn: join/leave protocol with self-stabilizing
//! topology maintenance.
//!
//! For each churn campaign in the matrix (sustained graceful churn,
//! sustained crash churn, a correlated flash wave, a permanent leave),
//! best-effort CBR flows cross a chorded ring twice: once with membership
//! maintenance off (the control — crashes are only ever discovered as link
//! loss, departed state is never evicted) and once with it on. The table
//! reports the delivery ratio for surviving-member flows, the worst
//! convergence lag after any membership event, and the eviction counts.
//! The claims the regression tests lock:
//!
//! * with maintenance on, every single join/leave/crash re-converges the
//!   fleet (routes **and** membership views) within a bounded number of
//!   maintenance epochs;
//! * under sustained graceful churn the delivery ratio stays ≥ 0.90 and is
//!   **strictly higher** than the no-maintenance control;
//! * departed members are evicted — a 50%-churned deployment's footprint
//!   does not grow monotonically;
//! * the same seed reproduces the identical
//!   [`Simulation::fingerprint`](son_netsim::sim::Simulation::fingerprint),
//!   churn and all.
//!
//! `--smoke` runs a reduced matrix at n = 32 and exits non-zero if the
//! delivery floor, the strict on-vs-off ordering, or the convergence bound
//! fails — the CI gate.

use son_bench::churn::{campaign_matrix, ChurnRun};
use son_bench::{banner, export_registry, f, finish_export, obs_sink, row, table_header};
use son_netsim::time::SimDuration;

/// Convergence bound the gate enforces: 8 maintenance epochs (500 ms each).
const LAG_BOUND: SimDuration = SimDuration::from_secs(4);
/// Delivery floor for surviving-member flows under sustained churn.
const DELIVERY_FLOOR: f64 = 0.90;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "E20 (membership churn)",
        "join/leave with self-stabilizing maintenance: converge within bounded \
         epochs after every membership event, keep surviving flows above the \
         delivery floor, and evict departed state",
    );

    let mut sink = obs_sink("exp_churn");

    table_header(&[
        ("campaign", 20),
        ("membership", 11),
        ("sent", 6),
        ("recvd", 6),
        ("delivery", 9),
        ("max-lag", 9),
        ("evict", 6),
        ("leaves", 7),
    ]);

    let matrix = campaign_matrix();
    let matrix: Vec<_> = if smoke {
        matrix
            .into_iter()
            .filter(|(name, _)| matches!(*name, "sustained-graceful" | "leave-permanent"))
            .collect()
    } else {
        matrix
    };

    let mut results: Vec<(String, bool, f64, SimDuration)> = Vec::new();
    for (name, pattern) in matrix {
        for membership_on in [false, true] {
            let mut run = ChurnRun::new(name, 53, pattern.clone());
            if smoke {
                run.nodes = 32;
                run.run_for = SimDuration::from_secs(22);
                run.count = 1800;
            }
            if !membership_on {
                run = run.without_membership();
            }
            let out = run.run();
            row(&[
                (name.to_string(), 20),
                (if membership_on { "on" } else { "off" }.into(), 11),
                (out.sent.to_string(), 6),
                (out.received.to_string(), 6),
                (f(out.delivery_ratio() * 100.0, 1) + "%", 9),
                (format!("{}ms", out.max_lag.as_millis_f64() as u64), 9),
                (out.evictions.to_string(), 6),
                (out.graceful_leaves.to_string(), 7),
            ]);
            let tag = format!("{name}.{}", if membership_on { "on" } else { "off" });
            if let Some(s) = &mut sink {
                let _ = export_registry(s, &tag, &out.registry);
            }
            results.push((
                name.to_string(),
                membership_on,
                out.delivery_ratio(),
                out.max_lag,
            ));
        }
    }

    if let Some(s) = sink {
        finish_export(s);
    }

    println!();
    let get = |name: &str, on: bool| {
        results
            .iter()
            .find(|(n, m, ..)| n == name && *m == on)
            .map(|&(_, _, d, lag)| (d, lag))
            .unwrap_or((0.0, SimDuration::ZERO))
    };
    let (on_d, on_lag) = get("sustained-graceful", true);
    let (_, leave_lag) = get("leave-permanent", true);
    // The strict on-vs-off comparison aggregates the whole matrix: which
    // campaigns actually drop packets depends on whether the randomized
    // victims intersect the measured paths at a given scale, but the
    // matrix-wide total must never favor running without maintenance.
    let agg = |on: bool| -> f64 {
        let rows: Vec<f64> = results
            .iter()
            .filter(|&&(_, m, ..)| m == on)
            .map(|&(_, _, d, _)| d)
            .collect();
        rows.iter().sum::<f64>() / rows.len() as f64
    };
    let (agg_on, agg_off) = (agg(true), agg(false));

    let floor_ok = on_d >= DELIVERY_FLOOR;
    let strict_ok = agg_on > agg_off;
    let bound_ok = on_lag <= LAG_BOUND && leave_lag <= LAG_BOUND;
    println!("Shape check (paper, resilient-architecture framing): the overlay must");
    println!("absorb membership churn as a normal operating condition, not an outage.");
    println!(
        "  delivery floor   on={:5.1}% (floor {:.0}%)  ({})",
        on_d * 100.0,
        DELIVERY_FLOOR * 100.0,
        if floor_ok { "ok" } else { "BELOW FLOOR" }
    );
    println!(
        "  on vs off        on={:6.2}% off={:6.2}% (matrix mean)  ({})",
        agg_on * 100.0,
        agg_off * 100.0,
        if strict_ok {
            "maintenance improves"
        } else {
            "NO IMPROVEMENT"
        }
    );
    println!(
        "  convergence lag  sustained={}ms leave={}ms (bound {}ms)  ({})",
        on_lag.as_millis_f64() as u64,
        leave_lag.as_millis_f64() as u64,
        LAG_BOUND.as_millis_f64() as u64,
        if bound_ok { "ok" } else { "BOUND EXCEEDED" }
    );

    if smoke && !(floor_ok && strict_ok && bound_ok) {
        eprintln!("exp_churn --smoke: gate FAILED");
        std::process::exit(1);
    }
}
