//! E10 — §II-B/§III-A: redundant dissemination with in-network
//! de-duplication.
//!
//! Redundant schemes intentionally put multiple copies of every packet on
//! the wire; the overlay's flow-scoped duplicate suppression must ensure
//! the application sees each payload exactly once, while the wire cost
//! reflects the scheme. A hostile duplicating relay is also thrown in to
//! show dedup handles amplification, not just planned redundancy.

use son_bench::{banner, f, row, table_header, UnicastRun};
use son_netsim::time::SimDuration;
use son_overlay::builder::chain_topology;
use son_overlay::{FlowSpec, RoutingService, SourceRoute};
use son_topo::{Graph, NodeId};

/// Diamond: two node-disjoint 2-hop routes 0-1-3 and 0-2-3.
fn diamond() -> Graph {
    let mut g = Graph::new(4);
    g.add_edge(NodeId(0), NodeId(1), 10.0);
    g.add_edge(NodeId(1), NodeId(3), 10.0);
    g.add_edge(NodeId(0), NodeId(2), 10.0);
    g.add_edge(NodeId(2), NodeId(3), 10.0);
    g
}

fn main() {
    banner(
        "E10 / Sections II-B, III-A (de-duplication)",
        "redundant copies die in the network; the application sees each payload exactly once",
    );

    table_header(&[
        ("scheme", 16),
        ("delivered", 9),
        ("app dups", 8),
        ("wire tx/pkt", 11),
        ("dedup kills/pkt", 15),
    ]);

    let schemes: Vec<(&str, FlowSpec)> = vec![
        ("single path", FlowSpec::best_effort()),
        (
            "2 disjoint",
            FlowSpec::best_effort()
                .with_routing(RoutingService::SourceBased(SourceRoute::DisjointPaths(2))),
        ),
        (
            "flooding",
            FlowSpec::best_effort().with_routing(RoutingService::SourceBased(
                SourceRoute::ConstrainedFlooding,
            )),
        ),
    ];
    let count = 500u64;
    for (name, spec) in schemes {
        let mut run = UnicastRun::new(diamond(), spec, NodeId(0), NodeId(3));
        run.count = count;
        run.interval = SimDuration::from_millis(10);
        let out = run.run();
        row(&[
            (name.to_string(), 16),
            (format!("{}/{}", out.recv.received, out.sent), 9),
            (out.recv.app_duplicates.to_string(), 8),
            (f(out.forwarded as f64 / count as f64, 2), 11),
            (f(out.dedup_suppressed as f64 / count as f64, 2), 15),
        ]);
    }

    // Amplification attack: a compromised relay triples every packet.
    {
        use son_netsim::sim::Simulation;
        use son_netsim::time::SimTime;
        use son_overlay::adversary::Behavior;
        use son_overlay::builder::OverlayBuilder;
        use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
        use son_overlay::node::OverlayNode;
        use son_overlay::{Destination, OverlayAddr, Wire};

        let mut sim: Simulation<Wire> = Simulation::new(13);
        let overlay = OverlayBuilder::new(chain_topology(3, 10.0)).build(&mut sim);
        sim.proc_mut::<OverlayNode>(overlay.daemon(NodeId(1)))
            .unwrap()
            .set_behavior(Behavior::Duplicate { copies: 3 });
        let mask = son_topo::EdgeMask::from_edges([son_topo::EdgeId(0), son_topo::EdgeId(1)]);
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(2)),
            port: son_bench::RX_PORT,
            joins: vec![],
            flows: vec![],
        }));
        let _tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(0)),
            port: son_bench::TX_PORT,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(2), son_bench::RX_PORT)),
                spec: FlowSpec::best_effort()
                    .with_routing(RoutingService::SourceBased(SourceRoute::Static(mask))),
                workload: Workload::Cbr {
                    size: 1000,
                    interval: SimDuration::from_millis(10),
                    count,
                    start: SimTime::from_millis(500),
                },
            }],
        }));
        sim.run_until(SimTime::from_secs(10));
        let recv = sim
            .proc_ref::<ClientProcess>(rx)
            .unwrap()
            .sole_recv()
            .clone();
        let kills = sim
            .proc_ref::<OverlayNode>(overlay.daemon(NodeId(2)))
            .unwrap()
            .metrics()
            .dedup_suppressed;
        row(&[
            ("3x amplifier".to_string(), 16),
            (format!("{}/{count}", recv.received), 9),
            (recv.app_duplicates.to_string(), 8),
            ("-".to_string(), 11),
            (f(kills as f64 / count as f64, 2), 15),
        ]);
    }

    println!();
    println!("Shape check (paper): wire transmissions scale with the scheme's redundancy");
    println!("(2x+ for disjoint paths, the whole topology for flooding, 3x under the");
    println!("amplifier), while application-level duplicates stay at exactly zero.");
}
