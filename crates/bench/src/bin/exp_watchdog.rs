//! E-watchdog — online anomaly watchdog with automated remediation,
//! validated by a deterministic fault-injection campaign.
//!
//! For each campaign in the matrix (all-healthy control, link flaps, burst
//! loss, silent blackhole, router failures), a CBR flow crosses the
//! continental US twice: once with the watchdog off and once with it on.
//! The table reports the fraction of packets delivered within a one-way
//! deadline plus the remediation counts from the watchdog's audit stream.
//! The claims the regression tests lock:
//!
//! * the control campaign produces **zero** suspensions (no false
//!   positives on healthy links);
//! * under the blackhole and flap campaigns, watchdog-on delivers a
//!   **strictly higher** within-deadline fraction than watchdog-off;
//! * the same seed reproduces the identical
//!   [`Simulation::fingerprint`](son_netsim::sim::Simulation::fingerprint).
//!
//! Audit events are exported as `watch.jsonl` rows and cross-checked by
//! `son-trace --watch-audit`.

use son_bench::watchdog::{campaign_matrix, WatchdogRun};
use son_bench::{
    banner, export_registry, export_watch, f, finish_export, obs_sink, row, table_header,
};
use son_netsim::time::SimDuration;
use son_obs::watch::WatchKind;
use son_overlay::watch::WatchConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "E-watchdog (online anomaly watchdog)",
        "detect pathologies online, remediate, and audit every action; \
         watchdog-on must beat watchdog-off under faults and stay silent when healthy",
    );

    let mut sink = obs_sink("exp_watchdog");
    let mut watch_sink = obs_sink("watch");

    table_header(&[
        ("campaign", 16),
        ("watchdog", 9),
        ("sent", 6),
        ("recvd", 6),
        ("in-deadline", 12),
        ("susp", 5),
        ("readmit", 8),
        ("damped", 7),
        ("shed", 5),
    ]);

    let matrix = campaign_matrix();
    let matrix: Vec<_> = if smoke {
        matrix
            .into_iter()
            .filter(|(name, _)| matches!(*name, "control" | "flaps" | "blackhole"))
            .collect()
    } else {
        matrix
    };

    let mut fractions: Vec<(String, bool, f64, u64)> = Vec::new();
    for (name, build) in matrix {
        for watch_on in [false, true] {
            let mut run = WatchdogRun::new(name, 71, build);
            if smoke {
                run.run_for = SimDuration::from_secs(22);
                run.count = 1800;
            }
            if watch_on {
                run = run.with_watch(WatchConfig::default());
            }
            let out = run.run();
            let damped = out.count_events(|k| matches!(k, WatchKind::FlapDamped { .. }));
            let shed = out.count_events(|k| matches!(k, WatchKind::ShedEngaged { .. }));
            row(&[
                (name.to_string(), 16),
                (if watch_on { "on" } else { "off" }.into(), 9),
                (out.sent.to_string(), 6),
                (out.received.to_string(), 6),
                (f(out.deadline_fraction() * 100.0, 1) + "%", 12),
                (out.suspensions().to_string(), 5),
                (out.readmissions().to_string(), 8),
                (damped.to_string(), 7),
                (shed.to_string(), 5),
            ]);
            let tag = format!("{name}.{}", if watch_on { "on" } else { "off" });
            if let Some(s) = &mut watch_sink {
                let _ = export_watch(s, &tag, &out.watch_events);
            }
            if let Some(s) = &mut sink {
                let _ = export_registry(s, &tag, &out.registry);
            }
            fractions.push((
                name.to_string(),
                watch_on,
                out.deadline_fraction(),
                out.suspensions(),
            ));
        }
    }

    for s in [sink, watch_sink].into_iter().flatten() {
        finish_export(s);
    }

    println!();
    let frac = |name: &str, on: bool| {
        fractions
            .iter()
            .find(|(n, w, ..)| n == name && *w == on)
            .map_or(0.0, |&(_, _, f, _)| f)
    };
    let control_susp = fractions
        .iter()
        .find(|(n, w, ..)| n == "control" && *w)
        .map_or(0, |&(.., s)| s);
    println!("Shape check (paper, NM-Strikes / cost-benefit framing): a compromised");
    println!("or degraded element must be detected and routed around by the overlay");
    println!("itself, without tearing down the service. Watchdog-on vs off within-");
    println!("deadline fractions:");
    for name in ["flaps", "blackhole"] {
        println!(
            "  {name:12} off={:5.1}%  on={:5.1}%  ({})",
            frac(name, false) * 100.0,
            frac(name, true) * 100.0,
            if frac(name, true) > frac(name, false) {
                "watchdog improves"
            } else {
                "NO IMPROVEMENT"
            }
        );
    }
    println!(
        "  control      suspensions with watchdog on: {control_susp} ({})",
        if control_susp == 0 {
            "no false positives"
        } else {
            "FALSE POSITIVES"
        }
    );
}
