//! E12 — §V-B: intrusion-tolerant agreement within the SCADA deadline.
//!
//! "Certain critical infrastructure control systems, such as SCADA for the
//! power grid, require strict timeliness, on the order of 100-200ms for a
//! control command to be delivered and executed in response to received
//! monitoring data. For the control system to withstand compromises, this
//! 100-200ms can include the time to execute an intrusion-tolerant
//! agreement protocol... the cryptography required to support intrusion
//! tolerance today becomes a barrier to timely message delivery as the size
//! of the system grows."
//!
//! Replicas are spread across continental-US cities; a field unit in Miami
//! reports events and a substation in LA actuates the agreed commands. We
//! sweep the replica count (n = 3f+1) and the number of compromised
//! replicas, and report the end-to-end event→actuation latency against the
//! 100–200 ms budget.

use son_apps::scada::{agreement_spec, Device, FieldUnit, Replica, ReplicaConfig, ReplicaFault};
use son_bench::{banner, f, row, table_header};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::{NodeConfig, Wire};
use son_topo::NodeId;

const FIELD: usize = 4; // MIA
const SUBSTATION: usize = 11; // LA
/// Cities hosting control-center replicas, in placement order.
const REPLICA_SITES: [usize; 10] = [0, 5, 3, 8, 2, 6, 7, 10, 1, 9];
const EVENTS: u64 = 50;

fn run(n: u16, silent: u16, equivocating: u16) -> (usize, f64, f64, f64) {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let config = NodeConfig {
        auth_enabled: true,
        ..Default::default()
    };
    let mut sim: Simulation<Wire> = Simulation::new(1200 + u64::from(n));
    let overlay = OverlayBuilder::new(topo)
        .node_config(config)
        .build(&mut sim);

    for i in 0..n {
        // Faulty replicas are the highest-indexed ones (never the leader;
        // leader fail-over is view-change territory, out of scope).
        let fault = if i >= n - silent {
            ReplicaFault::Silent
        } else if i >= n - silent - equivocating {
            ReplicaFault::Equivocate
        } else {
            ReplicaFault::None
        };
        sim.add_process(Replica::new(ReplicaConfig {
            daemon: overlay.daemon(NodeId(REPLICA_SITES[usize::from(i) % REPLICA_SITES.len()])),
            port: 300 + i,
            index: i,
            n,
            fault,
            spec: agreement_spec(),
        }));
    }
    let device = sim.add_process(Device::new(overlay.daemon(NodeId(SUBSTATION)), 400));
    let _unit = sim.add_process(FieldUnit::new(
        overlay.daemon(NodeId(FIELD)),
        401,
        SimDuration::from_millis(100),
        EVENTS,
        agreement_spec(),
    ));
    sim.run_until(SimTime::from_secs(12));
    let dev = sim.proc_ref::<Device>(device).unwrap();
    let mut lat = dev.latency_ms.clone();
    (
        dev.commands.len(),
        lat.quantile(0.5).unwrap_or(f64::NAN),
        lat.quantile(0.99).unwrap_or(f64::NAN),
        lat.max().unwrap_or(f64::NAN),
    )
}

fn main() {
    banner(
        "E12 / Section V-B (SCADA with intrusion-tolerant agreement)",
        "event -> 3-round agreement -> actuation within the 100-200ms budget, despite f faults",
    );

    table_header(&[
        ("replicas", 8),
        ("faults", 22),
        ("actuated", 8),
        ("p50 ms", 8),
        ("p99 ms", 8),
        ("max ms", 8),
        ("in budget", 9),
    ]);

    let cases: [(u16, u16, u16, &str); 7] = [
        (4, 0, 0, "none"),
        (4, 1, 0, "1 silent"),
        (4, 0, 1, "1 equivocating"),
        (7, 2, 0, "2 silent"),
        (7, 1, 1, "1 silent + 1 equiv"),
        (10, 3, 0, "3 silent"),
        (4, 2, 0, "2 silent (f exceeded)"),
    ];
    for (n, silent, equiv, label) in cases {
        let (actuated, p50, p99, max) = run(n, silent, equiv);
        row(&[
            (format!("n={n}"), 8),
            (label.to_string(), 22),
            (format!("{actuated}/{EVENTS}"), 8),
            (f(p50, 1), 8),
            (f(p99, 1), 8),
            (f(max, 1), 8),
            (
                if actuated == EVENTS as usize && max <= 200.0 {
                    "yes"
                } else if actuated == 0 {
                    "no quorum"
                } else {
                    "NO"
                }
                .to_string(),
                9,
            ),
        ]);
    }

    println!();
    println!("Shape check (paper): three authenticated rounds across a continental");
    println!("overlay land inside the 100-200ms SCADA budget for n up to 10 replicas,");
    println!("with up to f compromised replicas masked. Exceeding f halts liveness");
    println!("(no quorum -> no commands) but never actuates a wrong command; latency");
    println!("grows with n through crypto and fan-out, as the paper warns.");
}
