//! E16 — the scale observatory (§VII: the overlay is built to grow, so the
//! repo tracks *how* it grows, not just whether it works).
//!
//! Sweeps seeded ring-with-chords overlays at N ∈ {64, 256, 1024} (4096
//! behind `--full`, a multi-minute run; `--smoke` stops at 256 for CI) and
//! reports, per N: simulated packets forwarded per wall-clock second,
//! retained bytes per node broken down by subsystem, and the fleet-wide
//! `route.rebuild` latency percentiles — what one topology change costs a
//! daemon as the link-state view grows.
//!
//! Results land in two places:
//!
//! - `BENCH_scale.json` (override with `BENCH_OUT`): one locked row per N,
//!   gated by `scripts/bench_smoke.sh` — bytes/node must stay sublinear in
//!   N relative to the committed curve, and the profiler-on pass must stay
//!   within the overhead budget.
//! - `<obs dir>/scale.jsonl`: the same rows plus the absorbed profiler's
//!   per-stage rows for each N (`run` = `n64`, `n256`, …), the input to
//!   `son-trace --scale-report`.

use son_bench::scale::{run_scale_sharded, ScaleResult, SCALE_FLOWS, SCALE_SEED};
use son_bench::{banner, export_perf, export_rows, f, finish_export, obs_sink, row, table_header};
use son_obs::{Json, JsonlSink};

/// Virtual-time horizon per run: long enough for convergence, the mid-run
/// link cut at 1.5s, recovery at 2.2s, and steady state after — and short
/// of the 5s LSA refresh, whose fleet-wide flood would swamp the figures.
const SIM_SECONDS: u64 = 3;

/// Bytes/node is expected O(N) (every node holds the fleet's link state),
/// so N=1024 vs N=64 should sit near 16×. The gate allows headroom for
/// constant terms but catches anything superlinear per node.
const SUBLINEAR_SLACK: f64 = 1.5;

fn bench_row(r: &ScaleResult, mode: &str) -> Json {
    let per_node: Vec<(String, Json)> = r
        .bytes_per_node()
        .into_iter()
        .map(|(label, b)| (label.to_owned(), Json::F64(b)))
        .collect();
    let stage = r.reroute_stage();
    Json::obj(vec![
        ("bench", Json::str("exp_scale")),
        ("mode", Json::str(mode)),
        ("n", Json::U64(r.n as u64)),
        ("seed", Json::U64(SCALE_SEED)),
        ("flows", Json::U64(SCALE_FLOWS as u64)),
        ("sim_seconds", Json::F64(r.sim_seconds)),
        ("wall_seconds", Json::F64(r.wall_seconds)),
        ("perf_wall_seconds", Json::F64(r.perf_wall_seconds)),
        ("perf_overhead_pct", Json::F64(r.perf_overhead() * 100.0)),
        ("forwarded", Json::U64(r.forwarded)),
        ("delivered", Json::U64(r.delivered)),
        ("reroutes", Json::U64(r.reroutes)),
        ("sim_pkts_per_wall_s", Json::F64(r.pkts_per_wall_s())),
        ("bytes_per_node", Json::Obj(per_node)),
        ("bytes_per_node_total", Json::F64(r.bytes_per_node_total())),
        ("bytes_per_node_state", Json::F64(r.bytes_per_node_state())),
        (
            "reroute_p50_ns",
            Json::F64(stage.as_ref().map_or(0.0, |s| s.total_p50_ns)),
        ),
        (
            "reroute_p99_ns",
            Json::F64(stage.as_ref().map_or(0.0, |s| s.total_p99_ns)),
        ),
        ("shards", Json::U64(r.shards as u64)),
        (
            "shard_events",
            Json::Arr(
                r.shard_stats
                    .loads
                    .iter()
                    .map(|l| Json::U64(l.events))
                    .collect(),
            ),
        ),
        (
            "shard_cross_sends",
            Json::Arr(
                r.shard_stats
                    .loads
                    .iter()
                    .map(|l| Json::U64(l.sent_cross))
                    .collect(),
            ),
        ),
        (
            "merge_stall_ms",
            Json::F64(
                r.shard_stats
                    .loads
                    .iter()
                    .map(|l| l.stall_ns as f64)
                    .sum::<f64>()
                    / 1e6,
            ),
        ),
        ("queue_live", Json::U64(r.queue_stats.live as u64)),
        (
            "queue_tombstones_peak",
            Json::U64(r.queue_stats.tombstones_peak as u64),
        ),
        ("queue_compactions", Json::U64(r.queue_stats.compactions)),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = std::env::args().any(|a| a == "--full");
    let args: Vec<String> = std::env::args().collect();
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    banner(
        "E16 (scale observatory)",
        "throughput, bytes/node by subsystem, and reroute latency as the overlay grows",
    );
    if shards > 1 {
        println!("event engine: {shards} shards (bit-identical to sequential)");
    }

    let sizes: &[usize] = if smoke {
        &[64, 256]
    } else if full {
        &[64, 256, 1024, 4096]
    } else {
        &[64, 256, 1024]
    };
    let mode = if smoke { "smoke" } else { "full" };

    let bench_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_owned());
    let mut bench = JsonlSink::create(&bench_path).ok();
    if bench.is_none() {
        eprintln!("bench: cannot write {bench_path}; results print only");
    }
    let mut obs = obs_sink("scale");

    table_header(&[
        ("n", 6),
        ("wall s", 8),
        ("pkts/wall s", 12),
        ("KiB/node", 10),
        ("state KiB", 10),
        ("reroute p50", 12),
        ("reroute p99", 12),
        ("perf ovh", 9),
    ]);
    let mut results: Vec<ScaleResult> = Vec::new();
    for &n in sizes {
        let r = run_scale_sharded(n, SIM_SECONDS, shards);
        let stage = r.reroute_stage();
        row(&[
            (n.to_string(), 6),
            (f(r.wall_seconds, 2), 8),
            (f(r.pkts_per_wall_s(), 0), 12),
            (f(r.bytes_per_node_total() / 1024.0, 1), 10),
            (f(r.bytes_per_node_state() / 1024.0, 1), 10),
            (
                format!(
                    "{:.0}us",
                    stage.as_ref().map_or(0.0, |s| s.total_p50_ns) / 1e3
                ),
                12,
            ),
            (
                format!(
                    "{:.0}us",
                    stage.as_ref().map_or(0.0, |s| s.total_p99_ns) / 1e3
                ),
                12,
            ),
            (format!("{:+.1}%", r.perf_overhead() * 100.0), 9),
        ]);
        let row = bench_row(&r, mode);
        if let Some(sink) = &mut bench {
            let _ = sink.write(&row);
        }
        if let Some(sink) = &mut obs {
            let run = format!("n{n}");
            let _ = export_rows(sink, &run, std::iter::once(row));
            let _ = export_perf(sink, &run, &r.perf);
        }
        results.push(r);
    }

    // Subsystem breakdown at the largest N: where the bytes actually live.
    let last = results.last().expect("at least one size");
    println!("\nbytes/node by subsystem at n={}:", last.n);
    let mut parts = last.bytes_per_node();
    parts.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (label, b) in parts {
        println!("  {label:>10}  {:>10.1} KiB", b / 1024.0);
    }

    // Top profiler stages at the largest N: where the wall-clock goes.
    println!("\ntop profiler stages at n={} (by self time):", last.n);
    table_header(&[
        ("stage", 16),
        ("count", 12),
        ("self ms", 10),
        ("total ms", 10),
    ]);
    for s in last.perf.top_by_self(10) {
        row(&[
            (s.label.to_string(), 16),
            (s.count.to_string(), 12),
            (f(s.self_ns / 1e6, 1), 10),
            (f(s.total_ns / 1e6, 1), 10),
        ]);
    }

    // The sublinearity invariant, asserted in-process on every run (the
    // committed-curve comparison lives in scripts/bench_smoke.sh). Gated on
    // *state* bytes/node — the fixed-capacity rings would mask growth.
    let base = &results[0];
    let top = results.last().expect("at least one size");
    let ratio = top.bytes_per_node_state() / base.bytes_per_node_state().max(1.0);
    let linear = top.n as f64 / base.n as f64;
    println!(
        "\nstate bytes/node growth n={}→{}: {ratio:.1}x (linear would be {linear:.0}x; budget {:.0}x)",
        base.n,
        top.n,
        linear * SUBLINEAR_SLACK
    );
    assert!(
        ratio <= linear * SUBLINEAR_SLACK,
        "state bytes/node grew superlinearly: {ratio:.1}x over a {linear:.0}x size increase"
    );

    if let Some(sink) = bench {
        let rows = sink.rows();
        match sink.finish() {
            Ok(path) => println!("\nbench: wrote {rows} rows to {}", path.display()),
            Err(e) => eprintln!("bench: export failed ({e})"),
        }
    }
    if let Some(sink) = obs {
        finish_export(sink);
    }
}
