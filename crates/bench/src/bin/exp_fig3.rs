//! E1 — Figure 3: hop-by-hop recovery vs end-to-end recovery.
//!
//! "Consider a symmetric network path that spans a continent with a one-way
//! latency of 50ms... a packet recovered end-to-end has at least 100ms of
//! additional latency for a total minimum latency of 150ms. If that network
//! path can be replaced with a series of five 10ms latency overlay links
//! using hop-by-hop recovery, then a recovered packet has only at least 20ms
//! additional latency for a total minimum latency of 70ms."
//!
//! Both configurations run the same Reliable Data Link protocol; the only
//! difference is the topology: one 50 ms link (recovery spans the continent)
//! versus five 10 ms links (recovery is hop-local). We sweep the per-link
//! loss rate and report delivery latency for the packets that needed
//! recovery, plus overall smoothness (jitter).
//!
//! Every run samples 1-in-16 packets for distributed tracing and snapshots
//! the flight recorder once per simulated second; `son-trace` reconstructs
//! the exported `exp_fig3.trace.jsonl` into per-packet timelines showing
//! exactly where each recovery happened. `--smoke` runs a single reduced
//! loss point for CI.

use son_bench::{
    banner, export_registry, export_timeseries, export_traces, f, finish_export, obs_sink, row,
    table_header, UnicastRun,
};
use son_netsim::loss::LossConfig;
use son_netsim::time::SimDuration;
use son_overlay::builder::chain_topology;
use son_overlay::FlowSpec;
use son_topo::NodeId;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "E1 / Figure 3",
        "50ms end-to-end ARQ recovers at >=150ms; five 10ms hop-by-hop links recover at ~70ms",
    );

    table_header(&[
        ("topology", 18),
        ("loss/link", 9),
        ("delivered", 9),
        ("base ms", 8),
        ("late p50 ms", 13),
        ("late max ms", 13),
        ("p99 ms", 8),
        ("jitter ms", 9),
    ]);

    let mut sink = obs_sink("exp_fig3");
    let mut trace_sink = obs_sink("exp_fig3.trace");
    let mut ts_sink = obs_sink("exp_fig3.metrics_ts");

    // The end-to-end loss probability is matched: one 50ms link at loss p_e
    // vs five 10ms links each at p such that 1-(1-p)^5 = p_e.
    let sweep: &[f64] = if smoke { &[0.02] } else { &[0.005, 0.02, 0.05] };
    for &e2e_loss in sweep {
        let per_link = 1.0 - (1.0 - e2e_loss).powf(0.2);
        for (label, topo, loss, from, to) in [
            (
                "1 x 50ms (e2e)",
                chain_topology(2, 50.0),
                e2e_loss,
                NodeId(0),
                NodeId(1),
            ),
            (
                "5 x 10ms (hbh)",
                chain_topology(6, 10.0),
                per_link,
                NodeId(0),
                NodeId(5),
            ),
        ] {
            let mut run = UnicastRun::new(topo, FlowSpec::reliable(), from, to);
            run.loss = LossConfig::Bernoulli { p: loss };
            run.count = if smoke { 4_000 } else { 20_000 };
            run.interval = SimDuration::from_millis(5);
            run.run_for = SimDuration::from_secs(if smoke { 40 } else { 150 });
            run.seed = 1_000 + (e2e_loss * 1e4) as u64;
            run.node_config.trace_sample = 16;
            run.ts_cadence = Some(SimDuration::from_secs(1));
            let out = run.run();
            let tag = format!("{label}@{:.2}%", loss * 100.0);
            if let Some(sink) = &mut sink {
                let _ = export_registry(sink, &tag, &out.registry);
            }
            if let Some(sink) = &mut trace_sink {
                let _ = export_traces(sink, &tag, &out.traces);
            }
            if let Some(sink) = &mut ts_sink {
                let _ = export_timeseries(sink, &tag, &out.timeseries);
            }

            let mut lat = out.recv.latency_ms.clone();
            // "Late" deliveries are those well above the no-loss baseline
            // (propagation + processing + IPC): the recovered packets plus
            // everything held behind them by in-order delivery, i.e. the
            // full user-visible cost of each loss episode.
            let base = lat.quantile(0.05).unwrap_or(0.0);
            let recovered: son_netsim::stats::Percentiles = out
                .recv
                .latency_ms
                .samples()
                .iter()
                .copied()
                .filter(|&l| l > base + 5.0)
                .collect();
            let mut recovered = recovered;
            let (rec_p50, rec_max) = if recovered.count() > 0 {
                (recovered.median().unwrap(), recovered.max().unwrap())
            } else {
                (f64::NAN, f64::NAN)
            };
            row(&[
                (label.to_string(), 18),
                (f(loss * 100.0, 2) + "%", 9),
                (format!("{}/{}", out.recv.received, out.sent), 9),
                (f(base, 1), 8),
                (f(rec_p50, 1), 13),
                (f(rec_max, 1), 13),
                (f(lat.quantile(0.99).unwrap(), 1), 8),
                (f(out.recv.jitter_ms.mean().unwrap_or(0.0), 2), 9),
            ]);
        }
    }

    for s in [sink, trace_sink, ts_sink].into_iter().flatten() {
        finish_export(s);
    }
    println!();
    println!("Shape check (paper): recovered-packet latency ~150ms end-to-end vs ~70ms");
    println!("hop-by-hop — hop-by-hop recovery cuts recovery latency by ~2x or more and");
    println!("delivers a smoother stream (lower p99/jitter) at equal end-to-end loss.");
}
