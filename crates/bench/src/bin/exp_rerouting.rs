//! E3 — Figure 1 / §II-A: sub-second overlay rerouting vs BGP convergence,
//! and multihoming across ISP backbones.
//!
//! "This is in contrast to the 40 seconds to minutes that BGP may take to
//! converge during some network faults." A CBR flow crosses the continental
//! US while we kill fiber links out from under it, and we measure the outage
//! the application actually sees:
//!
//! * **Internet baseline** — a direct NYC→LA path on one provider; the flow
//!   is blackholed until BGP reconverges (40 s).
//! * **Overlay, one ISP fails under a link** — the multihomed overlay link
//!   switches provider after a couple of missed hellos (no reroute needed).
//! * **Overlay, a whole link dies** — every provider pipe of one overlay
//!   link is cut; link-state flooding reroutes around it.

use son_bench::{
    banner, default_tracked, export_registry, export_timeseries, export_traces, f, finish_export,
    gather_registry, gather_traces, obs_sink, row, table_header, RX_PORT, TX_PORT,
};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::{ScenarioEvent, Simulation};
use son_netsim::time::{SimDuration, SimTime};
use son_obs::TimeSeriesRing;
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
use son_topo::NodeId;

const FAIL_AT: SimTime = SimTime::from_secs(5);
const RUN_FOR: SimTime = SimTime::from_secs(60);

/// The outage the application saw: the longest inter-arrival gap after the
/// failure instant, and whether traffic was flowing at the end.
fn outage(recv: &son_overlay::client::FlowRecv) -> (SimDuration, bool) {
    let gap = recv
        .arrivals
        .windows(2)
        .filter(|w| w[1].0 > FAIL_AT)
        .map(|w| w[1].0.saturating_since(w[0].0))
        .max()
        .unwrap_or(SimDuration::MAX);
    let flowing = recv
        .arrivals
        .last()
        .is_some_and(|&(t, _)| t > RUN_FOR - SimDuration::from_millis(500));
    (gap, flowing)
}

fn cbr_forever() -> Workload {
    Workload::Cbr {
        size: 1000,
        interval: SimDuration::from_millis(10),
        count: u64::MAX,
        start: SimTime::from_millis(500),
    }
}

fn main() {
    banner(
        "E3 / Figure 1 (resilient architecture)",
        "overlay reroutes sub-second; multihoming dodges single-ISP faults; BGP needs ~40s",
    );

    table_header(&[
        ("configuration", 34),
        ("failure", 26),
        ("outage seen", 12),
        ("recovered", 10),
    ]);

    let mut sink = obs_sink("exp_rerouting");
    let mut trace_sink = obs_sink("exp_rerouting.trace");
    let mut ts_sink = obs_sink("exp_rerouting.metrics_ts");

    // ---- Internet baseline: one "overlay" link NYC->LA on one ISP. -------
    {
        let sc = continental_us(DEFAULT_CONVERGENCE);
        let mut sim: Simulation<Wire> = Simulation::new(31);
        sim.set_underlay(sc.underlay.clone());
        let mut topo = son_topo::Graph::new(2);
        topo.add_edge(NodeId(0), NodeId(1), 40.0);
        // Pin the endpoints to NYC and LA; the builder binds one pipe pair
        // per shared provider, but we disable all but the first so the flow
        // rides exactly one provider, like a normal Internet path.
        let overlay = OverlayBuilder::new(topo)
            .place_in_cities(vec![sc.city("NYC"), sc.city("LA")])
            .build(&mut sim);
        for pairs in overlay.edge_pipes.values() {
            for &(ab, ba) in &pairs[1..] {
                sim.schedule(SimTime::ZERO, ScenarioEvent::DisablePipe(ab));
                sim.schedule(SimTime::ZERO, ScenarioEvent::DisablePipe(ba));
            }
        }
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(1)),
            port: RX_PORT,
            joins: vec![],
            flows: vec![],
        }));
        let _tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(0)),
            port: TX_PORT,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(1), RX_PORT)),
                spec: FlowSpec::best_effort(),
                workload: cbr_forever(),
            }],
        }));
        // Fail every fiber on the first ISP's current NYC->LA route.
        let isp = sc.isps[0];
        let route = {
            let mut ul = sc.underlay.clone();
            ul.resolve(
                SimTime::ZERO,
                son_netsim::underlay::Attachment::OnNet(isp),
                sc.city("NYC"),
                sc.city("LA"),
            )
            .expect("route exists")
            .edges
        };
        // Cutting one edge of the route is enough to blackhole it.
        sim.schedule(FAIL_AT, ScenarioEvent::FailUnderlayEdge(route[0]));
        sim.run_until(RUN_FOR);
        if let Some(sink) = &mut sink {
            let _ = export_registry(sink, "internet_baseline", &gather_registry(&sim, &overlay));
        }
        let (gap, flowing) = outage(sim.proc_ref::<ClientProcess>(rx).unwrap().sole_recv());
        row(&[
            ("Internet path (1 ISP, no overlay)".into(), 34),
            ("fiber cut on the route".into(), 26),
            (f(gap.as_secs_f64(), 2) + "s", 12),
            (if flowing { "yes" } else { "NO" }.to_string(), 10),
        ]);
    }

    // ---- Overlay on the 12-city topology. ---------------------------------
    // Flow NYC -> LA across the overlay; the victim link is the first hop of
    // the flow's current overlay route, so the failure definitely bites.
    let scenarios: [(&str, &str, bool); 2] = [
        ("overlay 1st-hop link, 1 ISP", "provider switch", false),
        ("overlay 1st-hop link, all ISPs", "link-state reroute", true),
    ];
    for (what, how, kill_all) in scenarios {
        let sc = continental_us(DEFAULT_CONVERGENCE);
        let (topo, cities) = continental_overlay(&sc);
        let nyc = NodeId(cities.iter().position(|&c| c == sc.city("NYC")).unwrap());
        let la = NodeId(cities.iter().position(|&c| c == sc.city("LA")).unwrap());
        let mut sim: Simulation<Wire> = Simulation::new(32);
        sim.set_underlay(sc.underlay.clone());
        // Sample 1-in-16 packets for tracing so the exported trace records
        // the reroute markers and the rerouted packets' new paths.
        let node_config = son_overlay::NodeConfig {
            trace_sample: 16,
            ..son_overlay::NodeConfig::default()
        };
        let overlay = OverlayBuilder::new(topo.clone())
            .place_in_cities(cities.clone())
            .node_config(node_config)
            .build(&mut sim);
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(la),
            port: RX_PORT,
            joins: vec![],
            flows: vec![],
        }));
        let _tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(nyc),
            port: TX_PORT,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(la, RX_PORT)),
                spec: FlowSpec::best_effort(),
                workload: cbr_forever(),
            }],
        }));
        // Cut the first-hop overlay link of the NYC->LA route: one
        // provider's pipe pair, or all of them.
        let edge = son_topo::shortest_path(&topo, nyc, la)
            .expect("route")
            .edges[0];
        let pairs = &overlay.edge_pipes[&edge];
        let victims: Vec<_> = if kill_all {
            pairs.clone()
        } else {
            vec![pairs[0]]
        };
        for (ab, ba) in victims {
            sim.schedule(FAIL_AT, ScenarioEvent::DisablePipe(ab));
            sim.schedule(FAIL_AT, ScenarioEvent::DisablePipe(ba));
        }
        let mut recorder = TimeSeriesRing::new(256, default_tracked());
        sim.run_with_cadence(RUN_FOR, SimDuration::from_secs(1), |sim, at, wall| {
            recorder.snapshot_registry(at.as_nanos(), wall, &gather_registry(sim, &overlay));
        });
        if let Some(sink) = &mut sink {
            let _ = export_registry(sink, what, &gather_registry(&sim, &overlay));
        }
        if let Some(sink) = &mut trace_sink {
            let _ = export_traces(sink, what, &gather_traces(&sim, &overlay));
        }
        if let Some(sink) = &mut ts_sink {
            let _ = export_timeseries(sink, what, &recorder.rows());
        }
        let client = sim.proc_ref::<ClientProcess>(rx).unwrap();
        let (gap, flowing) = outage(client.sole_recv());
        // Count provider switches / reroutes across daemons for the record.
        let mut switches = 0;
        let mut reroutes = 0;
        for &d in &overlay.daemons {
            let m = sim.proc_ref::<OverlayNode>(d).unwrap().metrics();
            switches += m.counters.get("provider_switches");
            reroutes += m.counters.get("reroutes");
        }
        row(&[
            (
                format!("{what} [{switches} switches, {reroutes} reroutes]"),
                34,
            ),
            (how.to_string(), 26),
            (f(gap.as_secs_f64() * 1000.0, 0) + "ms", 12),
            (if flowing { "yes" } else { "NO" }.to_string(), 10),
        ]);
    }

    for s in [sink, trace_sink, ts_sink].into_iter().flatten() {
        finish_export(s);
    }
    println!();
    println!("Shape check (paper): the native Internet path blackholes for ~the BGP");
    println!("convergence time (40s); the overlay masks a single-provider fault by");
    println!("switching ISPs under the link in a few hello intervals, and survives a");
    println!("full overlay-link failure by rerouting at the overlay level — both at");
    println!("sub-second scale, while the flow keeps running.");
}
