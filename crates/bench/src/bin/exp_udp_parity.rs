//! E18 — sim-vs-real parity: the same scenario file, the same node state
//! machines, run twice — once inside the deterministic simulator, once as a
//! multi-process UDP loopback cluster of `son-node` daemons — and compared.
//!
//! The claim under test is the transport abstraction itself: protocol code
//! compiled once against `Ctx` must produce the same *protocol outcomes*
//! whether its driver is the virtual-time event queue or wall-clock timers
//! over real sockets. Outcomes, not bytes: the UDP leg schedules on a real
//! OS, so wall-clock jitter is expected and the comparison uses tolerance
//! bands (documented in `EXPERIMENTS.md` E18):
//!
//! * delivery ratio within ±5 pp (±10 pp for the blackout scenario, where
//!   a reroute-timing difference of a second moves percentage points);
//! * end-to-end p50 within ±20% + 5 ms;
//! * zero codec decode errors and zero misattributed frames on the wire.
//!
//! Two scenario shapes: **E1** (the Fig. 3 chain, hop-by-hop recovery
//! under per-link loss) and, in full mode, **E3** (a ring with a mid-run
//! link blackout; both worlds must reroute rather than wait it out).
//! `--smoke` runs E1 only over 4 processes in a few wall-seconds — the CI
//! `udp_loopback_smoke` job. Results append to `BENCH_forwarding.json`
//! (override with `BENCH_OUT`) as `"mode":"udp"` rows, replacing any
//! previous `udp_parity` rows.

use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use son_bench::telemetry::{sim_telemetry, ClusterState, EPOCH_NS};
use son_bench::{banner, f, row, table_header, RX_PORT, TX_PORT};
use son_netsim::loss::LossConfig;
use son_netsim::sim::{ScenarioEvent, Simulation};
use son_netsim::time::{SimDuration, SimTime};
use son_node::{unix_now_ns, Scenario, TopoKind};
use son_obs::snapshot::{SnapshotProducer, TelemetrySnapshot};
use son_obs::Json;
use son_overlay::builder::OverlayBuilder;
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::{Destination, NodeConfig, OverlayAddr, Wire};
use son_topo::NodeId;

/// One leg's outcome, sim or UDP.
#[derive(Debug, Clone, Copy)]
struct Leg {
    sent: u64,
    received: u64,
    p50_ms: f64,
    p90_ms: f64,
    max_gap_ms: f64,
    decode_errors: u64,
    unknown_pipe: u64,
}

impl Leg {
    fn delivery(&self) -> f64 {
        self.received as f64 / (self.sent as f64).max(1.0)
    }
}

fn e1_scenario(smoke: bool) -> Scenario {
    Scenario {
        name: if smoke { "udp_e1_smoke" } else { "udp_e1" }.to_owned(),
        topo: TopoKind::Chain,
        nodes: if smoke { 4 } else { 8 },
        hop_ms: if smoke { 5.0 } else { 10.0 },
        loss: 0.01,
        spec: "reliable".to_owned(),
        deadline_ms: None,
        from: 0,
        to: if smoke { 3 } else { 7 },
        count: if smoke { 300 } else { 2000 },
        size: 200,
        interval_us: 5_000,
        start_ms: if smoke { 800 } else { 1_000 },
        run_for_ms: if smoke { 4_000 } else { 16_000 },
        seed: 1_000,
        trace_sample: 8,
        watch: false,
        membership: false,
        outage: None,
    }
}

fn e3_scenario() -> Scenario {
    Scenario {
        name: "udp_e3".to_owned(),
        topo: TopoKind::Ring,
        nodes: 6,
        hop_ms: 10.0,
        loss: 0.0,
        spec: "best_effort".to_owned(),
        deadline_ms: None,
        from: 0,
        to: 3,
        count: 2_400,
        size: 200,
        interval_us: 5_000,
        start_ms: 1_000,
        run_for_ms: 16_000,
        seed: 2_000,
        trace_sample: 8,
        watch: true,
        membership: false,
        outage: Some(son_node::Outage {
            a: 1,
            b: 2,
            from_ms: 4_000,
            to_ms: 8_000,
        }),
    }
}

/// Runs the scenario inside the deterministic simulator, emitting the same
/// telemetry rows the UDP leg streams — through `run_with_cadence`, into
/// `<dir>/<name>.sim.telemetry.jsonl` — so one schema serves both legs.
fn run_in_sim(s: &Scenario, dir: &Path) -> Leg {
    let topo = s.topology();
    let mut sim: Simulation<Wire> = Simulation::new(s.seed);
    let config = NodeConfig {
        trace_sample: s.trace_sample,
        watch: s.watch.then(son_overlay::watch::WatchConfig::default),
        ..NodeConfig::default()
    };
    let loss = if s.loss > 0.0 {
        LossConfig::Bernoulli { p: s.loss }
    } else {
        LossConfig::Perfect
    };
    let overlay = OverlayBuilder::new(topo.clone())
        .node_config(config)
        .default_loss(loss)
        .build(&mut sim);
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(s.to as usize)),
        port: RX_PORT,
        joins: vec![],
        flows: vec![],
    }));
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(s.from as usize)),
        port: TX_PORT,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(NodeId(s.to as usize), RX_PORT)),
            spec: s.flow_spec().expect("scenario spec is valid"),
            workload: Workload::Cbr {
                size: s.size,
                interval: s.interval(),
                count: s.count,
                start: SimTime::from_millis(s.start_ms),
            },
        }],
    }));
    if let Some(o) = s.outage {
        let edge = topo
            .edge_between(NodeId(o.a as usize), NodeId(o.b as usize))
            .expect("outage edge exists");
        let down = SimTime::from_millis(o.from_ms);
        let up = SimTime::from_millis(o.to_ms);
        for &(ab, ba) in &overlay.edge_pipes[&edge] {
            sim.schedule(down, ScenarioEvent::DisablePipe(ab));
            sim.schedule(down, ScenarioEvent::DisablePipe(ba));
            sim.schedule(up, ScenarioEvent::EnablePipe(ab));
            sim.schedule(up, ScenarioEvent::EnablePipe(ba));
        }
    }
    let _ = std::fs::create_dir_all(dir);
    let telemetry_path = dir.join(format!("{}.sim.telemetry.jsonl", s.name));
    let mut telemetry = std::fs::File::create(&telemetry_path).ok();
    let mut producers: Vec<SnapshotProducer> = (0..s.nodes)
        .map(|i| SnapshotProducer::new(i as u32))
        .collect();
    sim.run_with_cadence(
        SimTime::from_millis(s.run_for_ms),
        SimDuration::from_nanos(EPOCH_NS),
        |sim, at, _wall| {
            let snaps = sim_telemetry(sim, &overlay, &mut producers, at.as_nanos());
            if let Some(f) = telemetry.as_mut() {
                for snap in &snaps {
                    let _ = writeln!(f, "{}", snap.to_row().to_json());
                }
            }
        },
    );

    let sent = sim.proc_ref::<ClientProcess>(tx).expect("sender").sent(1);
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .expect("receiver")
        .sole_recv();
    let mut lat = recv.latency_ms.clone();
    Leg {
        sent,
        received: recv.received,
        p50_ms: lat.quantile(0.5).unwrap_or(0.0),
        p90_ms: lat.quantile(0.9).unwrap_or(0.0),
        max_gap_ms: max_gap_ms(&recv.arrivals),
        decode_errors: 0,
        unknown_pipe: 0,
    }
}

fn max_gap_ms(arrivals: &[(SimTime, u64)]) -> f64 {
    arrivals
        .windows(2)
        .map(|w| (w[1].0 - w[0].0).as_millis_f64())
        .fold(0.0_f64, f64::max)
}

/// Locates the `son-node` binary next to this experiment binary.
fn son_node_bin() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("current_exe has no parent")?;
    let bin = dir.join("son-node");
    if bin.exists() {
        Ok(bin)
    } else {
        Err(format!(
            "{} not found — build it first (cargo build -p son-node)",
            bin.display()
        ))
    }
}

/// The in-process telemetry collector: binds the socket the daemons stream
/// to, ingests every frame live into a [`ClusterState`], and records each
/// snapshot as a JSONL row in arrival order — so replaying the recording
/// must reproduce the live roll-up exactly.
struct Collector {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<(ClusterState, u64)>,
}

fn spawn_collector(record_path: PathBuf) -> Result<Collector, String> {
    let socket =
        std::net::UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("collector bind: {e}"))?;
    let addr = socket
        .local_addr()
        .map_err(|e| format!("collector addr: {e}"))?;
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| format!("collector timeout: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut live = ClusterState::new();
        let mut bad_frames = 0u64;
        let mut record = std::fs::File::create(&record_path).ok();
        let mut buf = vec![0u8; 65_536];
        loop {
            match socket.recv_from(&mut buf) {
                Ok((n, _)) => match TelemetrySnapshot::decode(&buf[..n]) {
                    Ok(snap) => {
                        if let Some(f) = record.as_mut() {
                            let _ = writeln!(f, "{}", snap.to_row().to_json());
                        }
                        live.ingest(snap);
                    }
                    Err(_) => bad_frames += 1,
                },
                // Timeout / interrupt: check the stop flag and keep draining.
                Err(_) if !thread_stop.load(Ordering::Relaxed) => {}
                Err(_) => break,
            }
        }
        (live, bad_frames)
    });
    Ok(Collector { addr, stop, handle })
}

/// What the telemetry plane saw over one UDP cluster run.
#[derive(Debug, Clone, Copy, Default)]
struct TelemetryOutcome {
    snapshots: u64,
    lost: u64,
    nodes: u64,
}

/// Runs the scenario as a multi-process UDP loopback cluster and
/// aggregates the per-process result files. Each daemon streams telemetry
/// to an in-process collector; after the run, the live roll-up is asserted
/// byte-identical to replaying the collector's own JSONL recording
/// (acceptance: one schema, live and replay agree).
fn run_on_udp(s: &Scenario, base_port: u16, dir: &Path) -> Result<(Leg, TelemetryOutcome), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let scenario_path = dir.join(format!("{}.scenario.json", s.name));
    std::fs::write(&scenario_path, s.to_json())
        .map_err(|e| format!("write {}: {e}", scenario_path.display()))?;
    let bin = son_node_bin()?;
    let record_path = dir.join(format!("{}.udp.telemetry.jsonl", s.name));
    let collector = spawn_collector(record_path.clone())?;

    // Every daemon waits for this shared instant before starting its clock;
    // the lead time covers process spawn and socket binding.
    let epoch_ns = unix_now_ns() + 800_000_000;
    let mut children = Vec::new();
    for i in 0..s.nodes {
        let out = dir.join(format!("{}.result.{i}.json", s.name));
        let child = std::process::Command::new(&bin)
            .arg("--scenario")
            .arg(&scenario_path)
            .arg("--node")
            .arg(i.to_string())
            .arg("--epoch")
            .arg(epoch_ns.to_string())
            .arg("--base-port")
            .arg(base_port.to_string())
            .arg("--out")
            .arg(&out)
            .arg("--telemetry")
            .arg(collector.addr.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        children.push((i, child, out));
    }

    // Grace = epoch lead + scenario horizon + generous slack for a loaded
    // host; a daemon past that is hung and gets killed.
    let deadline = Instant::now() + Duration::from_millis(800 + s.run_for_ms + 15_000);
    let mut failures = Vec::new();
    for (i, child, _) in &mut children {
        loop {
            match child.try_wait() {
                Ok(Some(status)) if status.success() => break,
                Ok(Some(status)) => {
                    let mut err = String::new();
                    if let Some(mut e) = child.stderr.take() {
                        let _ = e.read_to_string(&mut err);
                    }
                    failures.push(format!("node {i} exited {status}: {}", err.trim()));
                    break;
                }
                Ok(None) if Instant::now() > deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    failures.push(format!("node {i} hung past the deadline; killed"));
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => {
                    failures.push(format!("node {i} wait: {e}"));
                    break;
                }
            }
        }
    }
    // Every daemon has exited; give the last in-flight datagrams a beat,
    // then stop the collector and compare live vs replay.
    std::thread::sleep(Duration::from_millis(200));
    collector.stop.store(true, Ordering::Relaxed);
    let (live, bad_frames) = collector
        .handle
        .join()
        .map_err(|_| "collector thread panicked".to_owned())?;
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    if bad_frames > 0 {
        return Err(format!(
            "collector received {bad_frames} undecodable telemetry frames"
        ));
    }
    let mut replay = ClusterState::new();
    let recorded =
        std::fs::read_to_string(&record_path).map_err(|e| format!("telemetry recording: {e}"))?;
    for line in recorded.lines().filter(|l| !l.trim().is_empty()) {
        replay.ingest_line(line);
    }
    let live_rollup = live.rollup(5).to_json();
    let replay_rollup = replay.rollup(5).to_json();
    if live_rollup != replay_rollup {
        return Err(format!(
            "telemetry roll-up diverged between live ingest and JSONL replay:\nlive:   {live_rollup}\nreplay: {replay_rollup}"
        ));
    }
    let telemetry = TelemetryOutcome {
        snapshots: live.snapshots(),
        lost: live.nodes().map(|(_, n)| n.lost).sum(),
        nodes: live.node_count() as u64,
    };

    let mut leg = Leg {
        sent: 0,
        received: 0,
        p50_ms: 0.0,
        p90_ms: 0.0,
        max_gap_ms: 0.0,
        decode_errors: 0,
        unknown_pipe: 0,
    };
    for (i, _, out) in &children {
        let text = std::fs::read_to_string(out)
            .map_err(|e| format!("node {i} wrote no result ({}: {e})", out.display()))?;
        let first = text
            .lines()
            .next()
            .ok_or_else(|| format!("node {i}: empty result"))?;
        let summary = Json::parse(first).map_err(|e| format!("node {i} summary: {e}"))?;
        let get_u64 = |key: &str| summary.get(key).and_then(Json::as_u64).unwrap_or(0);
        let get_f64 = |key: &str| summary.get(key).and_then(Json::as_f64);
        leg.sent += get_u64("sent");
        leg.received += get_u64("received");
        leg.decode_errors += get_u64("decode_errors");
        leg.unknown_pipe += get_u64("unknown_pipe");
        if let Some(p) = get_f64("p50_ms") {
            leg.p50_ms = p;
        }
        if let Some(p) = get_f64("p90_ms") {
            leg.p90_ms = p;
        }
        if let Some(g) = get_f64("max_gap_ms") {
            leg.max_gap_ms = g;
        }
    }
    Ok((leg, telemetry))
}

/// Appends fresh `udp_parity` rows to the bench file, dropping any rows a
/// previous run wrote (the other benches' rows are preserved verbatim).
fn update_bench(path: &str, rows: &[Json]) -> std::io::Result<()> {
    let mut kept = String::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            if !line.contains("\"bench\":\"udp_parity\"") && !line.trim().is_empty() {
                kept.push_str(line);
                kept.push('\n');
            }
        }
    }
    for r in rows {
        kept.push_str(&r.to_json());
        kept.push('\n');
    }
    std::fs::write(path, kept)
}

struct Comparison {
    scenario: Scenario,
    sim: Leg,
    udp: Leg,
    delivery_band: f64,
}

fn compare(s: Scenario, delivery_band: f64, base_port: u16, dir: &Path) -> Comparison {
    println!("\nscenario {}: {} nodes, spec {}", s.name, s.nodes, s.spec);
    let sim = run_in_sim(&s, dir);
    let (udp, telemetry) = match run_on_udp(&s, base_port, dir) {
        Ok(outcome) => outcome,
        Err(e) => panic!("UDP cluster failed for {}: {e}", s.name),
    };
    println!(
        "telemetry: {} snapshots from {} nodes ({} lost in flight); live == replay roll-up",
        telemetry.snapshots, telemetry.nodes, telemetry.lost
    );
    table_header(&[
        ("leg", 5),
        ("sent", 7),
        ("recv", 7),
        ("delivery", 9),
        ("p50 ms", 8),
        ("p90 ms", 8),
        ("max gap ms", 11),
    ]);
    for (name, l) in [("sim", &sim), ("udp", &udp)] {
        row(&[
            (name.to_string(), 5),
            (l.sent.to_string(), 7),
            (l.received.to_string(), 7),
            (f(l.delivery() * 100.0, 1) + "%", 9),
            (f(l.p50_ms, 2), 8),
            (f(l.p90_ms, 2), 8),
            (f(l.max_gap_ms, 1), 11),
        ]);
    }
    Comparison {
        scenario: s,
        sim,
        udp,
        delivery_band,
    }
}

impl Comparison {
    /// The E18 parity assertions; panics name the violated band.
    fn check(&self) {
        let name = &self.scenario.name;
        assert_eq!(
            self.udp.decode_errors, 0,
            "{name}: the cluster saw undecodable frames"
        );
        assert_eq!(
            self.udp.unknown_pipe, 0,
            "{name}: frames arrived from unregistered (peer, provider) pairs"
        );
        assert_eq!(
            self.udp.sent, self.scenario.count,
            "{name}: the UDP sender did not finish its workload"
        );
        let dd = (self.udp.delivery() - self.sim.delivery()).abs();
        assert!(
            dd <= self.delivery_band,
            "{name}: delivery ratio diverged: sim {:.3} vs udp {:.3} (band ±{:.0} pp)",
            self.sim.delivery(),
            self.udp.delivery(),
            self.delivery_band * 100.0
        );
        let p50_band = (self.sim.p50_ms * 0.20).max(0.0) + 5.0;
        assert!(
            (self.udp.p50_ms - self.sim.p50_ms).abs() <= p50_band,
            "{name}: p50 diverged: sim {:.2} ms vs udp {:.2} ms (band ±{:.2} ms)",
            self.sim.p50_ms,
            self.udp.p50_ms,
            p50_band
        );
        if let Some(o) = self.scenario.outage {
            let blackout_ms = (o.to_ms - o.from_ms) as f64;
            assert!(
                self.sim.max_gap_ms < blackout_ms && self.udp.max_gap_ms < blackout_ms,
                "{name}: a leg waited out the blackout instead of rerouting \
                 (sim gap {:.0} ms, udp gap {:.0} ms, blackout {blackout_ms:.0} ms)",
                self.sim.max_gap_ms,
                self.udp.max_gap_ms
            );
        }
        println!(
            "parity ok: delivery Δ {:.1} pp (band {:.0}), p50 Δ {:.2} ms (band {:.2})",
            dd * 100.0,
            self.delivery_band * 100.0,
            (self.udp.p50_ms - self.sim.p50_ms).abs(),
            p50_band
        );
    }

    fn bench_row(&self, smoke: bool) -> Json {
        Json::obj(vec![
            ("bench", Json::str("udp_parity")),
            ("mode", Json::str("udp")),
            ("scenario", Json::str(&self.scenario.name)),
            ("smoke", Json::Bool(smoke)),
            ("nodes", Json::U64(self.scenario.nodes as u64)),
            ("count", Json::U64(self.scenario.count)),
            ("sim_delivery", Json::F64(self.sim.delivery())),
            ("udp_delivery", Json::F64(self.udp.delivery())),
            ("sim_p50_ms", Json::F64(self.sim.p50_ms)),
            ("udp_p50_ms", Json::F64(self.udp.p50_ms)),
            ("sim_p90_ms", Json::F64(self.sim.p90_ms)),
            ("udp_p90_ms", Json::F64(self.udp.p90_ms)),
            ("sim_max_gap_ms", Json::F64(self.sim.max_gap_ms)),
            ("udp_max_gap_ms", Json::F64(self.udp.max_gap_ms)),
            (
                "delivery_delta",
                Json::F64(self.udp.delivery() - self.sim.delivery()),
            ),
            ("udp_decode_errors", Json::U64(self.udp.decode_errors)),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let base_port: u16 = args
        .iter()
        .position(|a| a == "--base-port")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(47_600);
    banner(
        "E18 (sim-vs-real parity)",
        "one scenario file, one protocol implementation, two drivers: \
         virtual-time pipes and wall-clock UDP must agree on outcomes",
    );
    let dir = PathBuf::from(
        std::env::var("UDP_PARITY_DIR").unwrap_or_else(|_| "target/obs/udp_parity".to_owned()),
    );

    let mut comparisons = vec![compare(e1_scenario(smoke), 0.05, base_port, &dir)];
    if !smoke {
        comparisons.push(compare(e3_scenario(), 0.10, base_port + 100, &dir));
    }
    for c in &comparisons {
        c.check();
    }

    let bench_path =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_forwarding.json".to_owned());
    let rows: Vec<Json> = comparisons.iter().map(|c| c.bench_row(smoke)).collect();
    match update_bench(&bench_path, &rows) {
        Ok(()) => println!(
            "\nbench: wrote {} udp_parity rows to {bench_path}",
            rows.len()
        ),
        Err(e) => eprintln!("bench: cannot update {bench_path}: {e}"),
    }
    println!(
        "cluster artifacts (per-process results, trace exports): {}",
        dir.display()
    );
}
