//! EP — the data-plane fast path, measured (§II-D: "less than 1ms
//! additional latency per intermediate overlay node" demands that route
//! maintenance and per-packet work stay far off the critical path).
//!
//! Two measurements, both exported to `BENCH_forwarding.json` (override the
//! path with `BENCH_OUT`) so the perf trajectory is tracked in-repo:
//!
//! 1. **Route recomputation** — the per-LSA-event cost of the pre-PR
//!    full-invalidation path (clone the shared view, drop every cache,
//!    rebuild) against the versioned-snapshot path (no-op LSAs cost a
//!    version compare; real changes rebuild once), over a stream where 1 in
//!    10 events is a real change — the steady-state mix the periodic LSA
//!    refresh produces. The acceptance bar is ≥2× at 64 nodes.
//! 2. **Forwarding throughput under churn** — multi-flow CBR over the
//!    12-city continental overlay while links flap every couple of seconds,
//!    reported as simulated packets forwarded per wall-clock second.
//!
//! `--smoke` shrinks both to a few seconds for CI.

use std::time::Instant;

use son_bench::telemetry::{sim_telemetry, EPOCH_NS};
use son_bench::{
    banner, export_registry, f, finish_export, gather_registry, obs_sink, ring_with_chords, row,
    table_header, RX_PORT, TX_PORT,
};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::{ScenarioEvent, Simulation};
use son_netsim::time::{SimDuration, SimTime};
use son_obs::snapshot::SnapshotProducer;
use son_obs::{Json, JsonlSink};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::packet::{LinkAdvert, Lsa};
use son_overlay::routing::Forwarding;
use son_overlay::state::connectivity::{ConnAction, ConnectivityConfig, ConnectivityMonitor};
use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
use son_topo::{EdgeId, Graph, NodeId};

/// One LSA event in 10 is a real change; the rest are the periodic refresh
/// (identical link state, newer sequence number).
const CHANGE_PERIOD: usize = 10;

fn monitor_for(g: &Graph) -> ConnectivityMonitor {
    let links: Vec<(EdgeId, usize, f64)> = g
        .neighbors(NodeId(0))
        .map(|(_, e)| (e, 1, g.weight(e)))
        .collect();
    ConnectivityMonitor::new(NodeId(0), g.clone(), links, ConnectivityConfig::default())
}

/// The LSA stream node 0 receives from node 1: every event re-advertises
/// node 1's links, and the advertised latency flips every `CHANGE_PERIOD`
/// events (so exactly 1 in `CHANGE_PERIOD` is a real topology change).
fn lsa_stream(g: &Graph, events: usize) -> Vec<Lsa> {
    let incident: Vec<EdgeId> = g.neighbors(NodeId(1)).map(|(_, e)| e).collect();
    (0..events)
        .map(|i| {
            let lat = if (i / CHANGE_PERIOD).is_multiple_of(2) {
                10.0
            } else {
                12.0
            };
            Lsa {
                origin: NodeId(1),
                seq: (i + 1) as u64,
                links: incident
                    .iter()
                    .map(|&edge| LinkAdvert {
                        edge,
                        up: true,
                        latency_ms: lat,
                        loss: 0.0,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Pre-PR handling: every accepted LSA rebuilds the local topology view
/// and drops every routing cache, whether or not anything changed.
fn measure_legacy(g: &Graph, stream: &[Lsa]) -> f64 {
    let mut mon = monitor_for(g);
    let mut fwd = Forwarding::new(NodeId(0), g.clone());
    let probe = NodeId(g.node_count() / 2);
    let start = Instant::now();
    for lsa in stream {
        let mut out = Vec::new();
        mon.on_lsa(SimTime::ZERO, lsa.clone(), None, &mut out);
        fwd.set_graph(mon.current_graph());
        std::hint::black_box(fwd.unicast_next_hop(probe));
    }
    start.elapsed().as_secs_f64() / stream.len() as f64 * 1e9
}

/// Post-PR handling: install the version-keyed shared snapshot only when
/// the monitor signals a real change; lookups hit the dense table.
fn measure_snapshot(g: &Graph, stream: &[Lsa]) -> f64 {
    let mut mon = monitor_for(g);
    let mut fwd = Forwarding::new(NodeId(0), g.clone());
    let probe = NodeId(g.node_count() / 2);
    let start = Instant::now();
    for lsa in stream {
        let mut out = Vec::new();
        mon.on_lsa(SimTime::ZERO, lsa.clone(), None, &mut out);
        if out.iter().any(|a| matches!(a, ConnAction::TopologyChanged)) {
            fwd.install(mon.snapshot(), mon.version());
        }
        std::hint::black_box(fwd.unicast_next_hop(probe));
    }
    start.elapsed().as_secs_f64() / stream.len() as f64 * 1e9
}

struct RecomputeResult {
    nodes: usize,
    legacy_ns: f64,
    snapshot_ns: f64,
}

impl RecomputeResult {
    fn speedup(&self) -> f64 {
        self.legacy_ns / self.snapshot_ns.max(1e-9)
    }
}

fn route_recompute(events: usize) -> Vec<RecomputeResult> {
    [(16usize, 4usize), (64, 8), (256, 0)]
        .into_iter()
        .map(|(n, chord_every)| {
            let g = ring_with_chords(n, 10.0, chord_every);
            let stream = lsa_stream(&g, events);
            // Warm both paths once (page in code, size caches) off-clock.
            measure_legacy(&g, &stream[..events.min(20)]);
            measure_snapshot(&g, &stream[..events.min(20)]);
            RecomputeResult {
                nodes: n,
                legacy_ns: measure_legacy(&g, &stream),
                snapshot_ns: measure_snapshot(&g, &stream),
            }
        })
        .collect()
}

struct ThroughputResult {
    sim_seconds: f64,
    wall_seconds: f64,
    forwarded: u64,
    delivered: u64,
    reroutes: u64,
}

impl ThroughputResult {
    fn pkts_per_wall_s(&self) -> f64 {
        self.forwarded as f64 / self.wall_seconds.max(1e-9)
    }
}

/// Multi-flow CBR over the 12-city overlay with a link flapping every two
/// seconds: the forwarding fast path under the exact conditions (churn +
/// traffic) the paper's sub-second-rerouting claim assumes. `trace_sample`
/// enables distributed tracing (0 = off) so the traced rerun measures the
/// sampling overhead on the same workload; `perf` enables the wall-clock
/// span profiler (daemons and event loop) so the profiled rerun prices the
/// always-on profiler the same way; `telemetry` streams per-epoch
/// [`son_obs::TelemetrySnapshot`] rows to
/// `target/obs/exp_throughput.telemetry.jsonl` through `run_with_cadence`,
/// so the traced row also prices the telemetry plane.
fn throughput_under_churn(
    smoke: bool,
    trace_sample: u32,
    perf: bool,
    shards: usize,
    telemetry: bool,
) -> (ThroughputResult, son_obs::Registry) {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, cities) = continental_overlay(&sc);
    let mut sim: Simulation<Wire> = Simulation::new(7);
    sim.set_underlay(sc.underlay);
    if perf {
        sim.enable_perf();
    }
    // The traced rerun also runs the full anomaly watchdog (with adaptive
    // sampling), so the ≤5% overhead gate prices the whole observability +
    // remediation stack, not just the sampling.
    let node_config = son_overlay::NodeConfig {
        trace_sample,
        perf,
        watch: (trace_sample > 0).then(son_overlay::watch::WatchConfig::default),
        ..son_overlay::NodeConfig::default()
    };
    let overlay = OverlayBuilder::new(topo.clone())
        .place_in_cities(cities)
        .node_config(node_config)
        .build(&mut sim);

    let run_for = if smoke {
        SimTime::from_secs(3)
    } else {
        SimTime::from_secs(20)
    };
    let flows: &[(usize, usize)] = if smoke {
        &[(0, 6), (1, 7), (2, 8)]
    } else {
        &[
            (0, 6),
            (1, 7),
            (2, 8),
            (3, 9),
            (4, 10),
            (5, 11),
            (6, 0),
            (7, 1),
        ]
    };
    let mut rxs = Vec::new();
    let mut clients = Vec::new();
    for (k, &(a, b)) in flows.iter().enumerate() {
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(b)),
            port: RX_PORT + k as u16,
            joins: vec![],
            flows: vec![],
        }));
        rxs.push(rx);
        clients.push((rx, NodeId(b)));
        let tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(a)),
            port: TX_PORT + k as u16,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(b), RX_PORT + k as u16)),
                spec: FlowSpec::best_effort(),
                workload: Workload::Cbr {
                    size: 1000,
                    interval: SimDuration::from_millis(2),
                    count: u64::MAX,
                    start: SimTime::from_millis(500),
                },
            }],
        }));
        clients.push((tx, NodeId(a)));
    }
    if shards > 1 {
        // City-block daemon partition; clients share their daemon's shard
        // (zero-latency IPC must not cross a shard boundary).
        let mut plan = overlay.shard_plan(shards, sim.process_count());
        for &(client, node) in &clients {
            overlay.colocate(&mut plan, client, node);
        }
        sim.set_shard_plan(Some(plan));
    }
    // Churn: flap one overlay link per two-second window (down one second,
    // back up the next), cycling over the topology's edges.
    let edges: Vec<EdgeId> = topo.edges().collect();
    let mut window = 0u64;
    loop {
        let down_at = SimTime::from_secs(1) + SimDuration::from_secs(2 * window);
        if down_at >= run_for {
            break;
        }
        let victim = edges[window as usize % edges.len()];
        for &(ab, ba) in &overlay.edge_pipes[&victim] {
            sim.schedule(down_at, ScenarioEvent::DisablePipe(ab));
            sim.schedule(down_at, ScenarioEvent::DisablePipe(ba));
            sim.schedule(
                down_at + SimDuration::from_secs(1),
                ScenarioEvent::EnablePipe(ab),
            );
            sim.schedule(
                down_at + SimDuration::from_secs(1),
                ScenarioEvent::EnablePipe(ba),
            );
        }
        window += 1;
    }

    let wall = Instant::now();
    let mut telemetry_rows = String::new();
    if telemetry {
        let mut producers: Vec<SnapshotProducer> = (0..overlay.daemons.len())
            .map(|i| SnapshotProducer::new(i as u32))
            .collect();
        telemetry_rows.reserve(64 * 1024);
        sim.run_with_cadence(
            run_for,
            SimDuration::from_nanos(EPOCH_NS),
            |sim, at, _wall| {
                for snap in sim_telemetry(sim, &overlay, &mut producers, at.as_nanos()) {
                    snap.write_row_json(&mut telemetry_rows);
                    telemetry_rows.push('\n');
                }
            },
        );
    } else {
        sim.run_until(run_for);
    }
    let wall_seconds = wall.elapsed().as_secs_f64();
    if telemetry {
        // Producing and serializing every epoch is priced inside the timed
        // window above; the file itself lands afterwards, like every other
        // obs export.
        let _ = std::fs::create_dir_all("target/obs");
        let _ = std::fs::write("target/obs/exp_throughput.telemetry.jsonl", &telemetry_rows);
    }

    let mut forwarded = 0;
    let mut reroutes = 0;
    for &d in &overlay.daemons {
        let m = sim.proc_ref::<OverlayNode>(d).unwrap().metrics();
        forwarded += m.forwarded;
        reroutes += m.counters.get("reroutes");
    }
    let delivered = rxs
        .iter()
        .map(|&rx| {
            sim.proc_ref::<ClientProcess>(rx)
                .unwrap()
                .sole_recv()
                .received
        })
        .sum();
    (
        ThroughputResult {
            sim_seconds: run_for.as_secs_f64(),
            wall_seconds,
            forwarded,
            delivered,
            reroutes,
        },
        gather_registry(&sim, &overlay),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    banner(
        "EP (data-plane fast path)",
        "no-op LSAs cost a version compare; real changes rebuild once; forwarding stays hot under churn",
    );

    let bench_path =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_forwarding.json".to_owned());
    let mut bench = JsonlSink::create(&bench_path).ok();
    if bench.is_none() {
        eprintln!("bench: cannot write {bench_path}; results print only");
    }

    // ---- 1: route recomputation, legacy vs snapshot. ---------------------
    let events = if smoke { 200 } else { 2000 };
    println!("route recomputation, {events} LSA events, 1 in {CHANGE_PERIOD} a real change:");
    table_header(&[
        ("nodes", 6),
        ("legacy ns/event", 16),
        ("snapshot ns/event", 18),
        ("speedup", 8),
    ]);
    let results = route_recompute(events);
    for r in &results {
        row(&[
            (r.nodes.to_string(), 6),
            (f(r.legacy_ns, 0), 16),
            (f(r.snapshot_ns, 0), 18),
            (f(r.speedup(), 1) + "x", 8),
        ]);
        if let Some(sink) = &mut bench {
            let _ = sink.write(&Json::obj(vec![
                ("bench", Json::str("route_recompute")),
                ("nodes", Json::U64(r.nodes as u64)),
                ("lsa_events", Json::U64(events as u64)),
                ("change_period", Json::U64(CHANGE_PERIOD as u64)),
                ("legacy_ns_per_event", Json::F64(r.legacy_ns)),
                ("snapshot_ns_per_event", Json::F64(r.snapshot_ns)),
                ("speedup", Json::F64(r.speedup())),
            ]));
        }
    }
    let at64 = results.iter().find(|r| r.nodes == 64).expect("64-node row");
    println!(
        "\n64-node speedup: {:.1}x (acceptance bar: >= 2x)",
        at64.speedup()
    );
    if !smoke {
        assert!(
            at64.speedup() >= 2.0,
            "snapshot path must be >= 2x the full-invalidation path at 64 nodes"
        );
    }

    // ---- 2: forwarding throughput under churn, then the same workload
    // with 1-in-64 trace sampling on to price the tracing fast path. Each
    // mode reports its best of three runs: the sim is deterministic (the
    // counters are identical every time), so wall-clock spread is scheduler
    // noise and the minimum is the honest cost figure.
    println!("\nforwarding under churn (12-city overlay, CBR flows, links flapping):");
    // Iterations are interleaved (untraced, traced, untraced, ...) so a
    // load spike on the host degrades both modes instead of biasing one.
    let iters = if smoke { 16 } else { 3 };
    // The traced rerun carries the whole observability stack — sampling,
    // watchdog, AND per-epoch telemetry emission — so the ≤5% gate prices
    // telemetry too.
    let mut t = throughput_under_churn(smoke, 0, false, 1, false);
    let mut traced = throughput_under_churn(smoke, 64, false, 1, true);
    let mut profiled = throughput_under_churn(smoke, 0, true, 1, false);
    let mut sharded = throughput_under_churn(smoke, 0, false, shards, false);
    for _ in 1..iters {
        let a = throughput_under_churn(smoke, 0, false, 1, false);
        if a.0.wall_seconds < t.0.wall_seconds {
            t = a;
        }
        let b = throughput_under_churn(smoke, 64, false, 1, true);
        if b.0.wall_seconds < traced.0.wall_seconds {
            traced = b;
        }
        let c = throughput_under_churn(smoke, 0, true, 1, false);
        if c.0.wall_seconds < profiled.0.wall_seconds {
            profiled = c;
        }
        let d = throughput_under_churn(smoke, 0, false, shards, false);
        if d.0.wall_seconds < sharded.0.wall_seconds {
            sharded = d;
        }
    }
    let (t, registry) = t;
    let (traced, _) = traced;
    let (profiled, _) = profiled;
    let (sharded, _) = sharded;
    // The sharded engine must replay the sequential run bit for bit: same
    // packets forwarded, delivered, and reroutes — only wall time may move.
    assert_eq!(
        (sharded.forwarded, sharded.delivered, sharded.reroutes),
        (t.forwarded, t.delivered, t.reroutes),
        "sharded run diverged from sequential"
    );
    table_header(&[
        ("mode", 8),
        ("sim s", 8),
        ("wall s", 8),
        ("forwarded", 12),
        ("delivered", 12),
        ("reroutes", 10),
        ("sim pkts/wall s", 16),
    ]);
    let base_mode = if smoke { "smoke" } else { "full" };
    let host_par = std::thread::available_parallelism().map_or(1, |p| p.get());
    for (mode, r) in [
        (base_mode, &t),
        ("traced", &traced),
        ("perf", &profiled),
        ("sharded", &sharded),
    ] {
        row(&[
            (mode.to_string(), 8),
            (f(r.sim_seconds, 1), 8),
            (f(r.wall_seconds, 2), 8),
            (r.forwarded.to_string(), 12),
            (r.delivered.to_string(), 12),
            (r.reroutes.to_string(), 10),
            (f(r.pkts_per_wall_s(), 0), 16),
        ]);
        if let Some(sink) = &mut bench {
            let mut fields = vec![
                ("bench", Json::str("exp_throughput")),
                ("mode", Json::str(mode)),
                (
                    "trace_sample",
                    Json::U64(if mode == "traced" { 64 } else { 0 }),
                ),
                ("telemetry", Json::Bool(mode == "traced")),
                (
                    "shards",
                    Json::U64(if mode == "sharded" { shards as u64 } else { 1 }),
                ),
                ("host_parallelism", Json::U64(host_par as u64)),
                ("sim_seconds", Json::F64(r.sim_seconds)),
                ("wall_seconds", Json::F64(r.wall_seconds)),
                ("forwarded", Json::U64(r.forwarded)),
                ("delivered", Json::U64(r.delivered)),
                ("reroutes", Json::U64(r.reroutes)),
                ("sim_pkts_per_wall_s", Json::F64(r.pkts_per_wall_s())),
                (
                    "speedup_vs_seq",
                    Json::F64(r.pkts_per_wall_s() / t.pkts_per_wall_s().max(1e-9)),
                ),
            ];
            if mode == "sharded" {
                // The 1.8x-at-4-shards speedup gate is only meaningful on
                // hosts that can actually run 4 shards in parallel; record
                // the decision so the committed baseline says explicitly
                // whether its sharded figure was gated or not.
                fields.push((
                    "gate",
                    Json::str(if host_par >= 4 { "enforced" } else { "skipped" }),
                ));
            }
            let _ = sink.write(&Json::obj(fields));
        }
    }
    println!(
        "\ntracing overhead: {:.1}% (traced vs untraced pkts/wall s; budget: <= 5%)",
        (1.0 - traced.pkts_per_wall_s() / t.pkts_per_wall_s()) * 100.0
    );
    println!(
        "profiler overhead: {:.1}% (perf vs untraced pkts/wall s; budget: <= 5%)",
        (1.0 - profiled.pkts_per_wall_s() / t.pkts_per_wall_s()) * 100.0
    );
    let cores = host_par;
    println!(
        "sharded ({shards} shards, {cores} cores): {:.2}x vs sequential, bit-identical replay \
         (gate >= 1.8x at 4 shards applies only when the host has >= 4 cores)",
        sharded.pkts_per_wall_s() / t.pkts_per_wall_s().max(1e-9)
    );
    if let Some(sink) = bench {
        let rows = sink.rows();
        match sink.finish() {
            Ok(path) => println!("\nbench: wrote {rows} rows to {}", path.display()),
            Err(e) => eprintln!("bench: export failed ({e})"),
        }
    }

    // Registry rows (per-node counters, pipe stats) go to the obs dir like
    // every other experiment.
    if let Some(mut sink) = obs_sink("exp_throughput") {
        let _ = export_registry(&mut sink, "churn_throughput", &registry);
        finish_export(sink);
    }
}
