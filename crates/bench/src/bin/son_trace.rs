//! # son-trace — the distributed-trace analyzer
//!
//! Ingests `*.trace.jsonl` exports (schema in `EXPERIMENTS.md`),
//! reconstructs each sampled packet's end-to-end timeline, and prints the
//! aggregate per-hop latency attribution: queueing at each daemon,
//! propagation-plus-recovery on each link, and gap-to-recovery latencies
//! where a link protocol repaired a loss.
//!
//! ```text
//! son-trace [--self-check] [--watch-audit] [--limit N] FILE...
//! ```
//!
//! `--self-check` verifies every reconstructed timeline's causal
//! consistency (monotone time, contiguous hops, exactly one terminal) and
//! exits non-zero on a violation or an empty export — CI runs this against
//! the smoke experiment. Any `kind:"telemetry"` rows in the inputs are
//! validated too: per-node seq numbers must be monotone in export order
//! with no duplicate `(node, seq)`, and seq gaps (snapshots lost in
//! flight) are counted and reported rather than silently ignored — gaps
//! are legal for a best-effort stream, silence about them is not.
//! `--limit N` caps the example timelines printed (default 3).
//!
//! `--watch-audit` switches to auditing `watch.jsonl` exports instead: it
//! replays each run's watchdog audit stream and verifies that every
//! remediation is explainable by a preceding detection — suspensions by a
//! budget breach or blackhole signature on the same node and link, probes
//! and readmissions by a preceding suspension, damping by the origin's
//! recorded churn, shedding by queue growth. Exits non-zero on any
//! unexplained action (or an empty export).
//!
//! `--scale-report` switches to rendering `scale.jsonl` exports (E16): the
//! per-N scaling curve — throughput, retained bytes per node, reroute
//! latency — and the profiler's top stages at the largest N. Exits non-zero
//! on an empty export.

use std::process::ExitCode;

use son_bench::{banner, f, row, table_header};
use son_obs::trace::{attribute, median_ns, reconstruct, self_check, Terminal, Timeline};
use son_obs::watch::{WatchEvent, WatchKind};
use son_obs::{Json, TraceEvent, TraceStage};

struct Args {
    self_check: bool,
    watch_audit: bool,
    scale_report: bool,
    limit: usize,
    files: Vec<String>,
}

const USAGE: &str =
    "usage: son-trace [--self-check] [--watch-audit] [--scale-report] [--limit N] FILE...";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        self_check: false,
        watch_audit: false,
        scale_report: false,
        limit: 3,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--self-check" => args.self_check = true,
            "--watch-audit" => args.watch_audit = true,
            "--scale-report" => args.scale_report = true,
            "--limit" => {
                let v = it.next().ok_or("--limit needs a value")?;
                args.limit = v.parse().map_err(|_| format!("bad --limit value {v:?}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg}")),
            _ => args.files.push(arg),
        }
    }
    if args.files.is_empty() {
        return Err(USAGE.to_owned());
    }
    Ok(args)
}

/// Reads one JSONL export, keeping the trace rows (tagged with their run
/// configuration) and ignoring the other kinds (counter / ts rows share
/// experiment files). Trace ids are only unique within one run — sweeps
/// replay the same flow and sequence range per configuration — so every
/// event keeps its `run` tag and analysis groups by (run, trace id).
fn load(path: &str) -> Result<Vec<(String, TraceEvent)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if let Some(ev) = TraceEvent::from_row(&json) {
            let run = json
                .get("run")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned();
            events.push((run, ev));
        }
    }
    Ok(events)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn print_timeline(tl: &Timeline) {
    let path: Vec<String> = tl.path().iter().map(|n| format!("n{n}")).collect();
    println!(
        "  trace {:#018x}  flow {} seq {}  path {}  {}{}",
        tl.trace_id,
        tl.packet.flow,
        tl.packet.seq,
        path.join(" -> "),
        match tl.terminal() {
            Terminal::Delivered => "delivered".to_owned(),
            Terminal::Dropped(c) => format!("dropped ({})", c.label()),
            Terminal::LostInFlight => "lost in flight".to_owned(),
        },
        if tl.source_routed() {
            "  [source-routed]"
        } else {
            ""
        },
    );
    let start = tl.events.first().map_or(0, |e| e.at_ns);
    for e in &tl.events {
        let detail = match e.stage {
            TraceStage::Recovered { after_ns } => format!("  after {:.2} ms", ms(after_ns)),
            TraceStage::Drop(c) => format!("  {}", c.label()),
            _ => String::new(),
        };
        println!(
            "    +{:>9.3} ms  hop {}  n{:<4} {}{}",
            ms(e.at_ns - start),
            e.hop,
            e.node,
            e.stage.label(),
            detail
        );
    }
}

/// Seq accounting over the telemetry rows of one export set.
#[derive(Debug, Default)]
struct TelemetryCheck {
    rows: u64,
    nodes: std::collections::BTreeSet<u32>,
    gaps: u64,
    violations: Vec<String>,
}

/// Validates every `kind:"telemetry"` row in the given files: monotone seq
/// per node incarnation in export order, no duplicate `(node, restarts,
/// seq)`, gaps counted. Membership churn is a normal condition, not a
/// violation: a node's first sighting charges no gap (it may have joined
/// mid-run), and a seq reset accompanied by a higher `restarts` is a
/// rejoin, not a monotonicity breach.
fn check_telemetry(files: &[String]) -> Result<TelemetryCheck, String> {
    use son_obs::snapshot::TelemetrySnapshot;
    let mut check = TelemetryCheck::default();
    // Per node: (incarnation, highest seq in that incarnation).
    let mut last_seq: std::collections::BTreeMap<u32, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut seen: std::collections::HashSet<(u32, u64, u64)> = std::collections::HashSet::new();
    for path in files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let json = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
            let snap = match TelemetrySnapshot::from_row(&json) {
                Ok(Some(snap)) => snap,
                Ok(None) => continue,
                Err(e) => {
                    check
                        .violations
                        .push(format!("{path}:{}: broken telemetry row: {e}", i + 1));
                    continue;
                }
            };
            check.rows += 1;
            check.nodes.insert(snap.node);
            if !seen.insert((snap.node, snap.restarts, snap.seq)) {
                check.violations.push(format!(
                    "{path}:{}: duplicate (node {}, incarnation {}, seq {})",
                    i + 1,
                    snap.node,
                    snap.restarts,
                    snap.seq
                ));
                continue;
            }
            match last_seq.get(&snap.node) {
                Some(&(inc, _)) if snap.restarts > inc => {
                    // Rejoin: a new incarnation restarts the numbering.
                    last_seq.insert(snap.node, (snap.restarts, snap.seq));
                }
                Some(&(inc, _)) if snap.restarts < inc => check.violations.push(format!(
                    "{path}:{}: node {} incarnation {} after incarnation {} (not monotone)",
                    i + 1,
                    snap.node,
                    snap.restarts,
                    inc
                )),
                Some(&(inc, prev)) if snap.seq < prev => check.violations.push(format!(
                    "{path}:{}: node {} seq {} after seq {} (incarnation {}, not monotone)",
                    i + 1,
                    snap.node,
                    snap.seq,
                    prev,
                    inc
                )),
                Some(&(inc, prev)) => {
                    check.gaps += snap.seq - prev - 1;
                    last_seq.insert(snap.node, (inc, snap.seq));
                }
                // First sighting: the node may have joined mid-run; its
                // earlier seqs are history, not export loss.
                None => {
                    last_seq.insert(snap.node, (snap.restarts, snap.seq));
                }
            }
        }
    }
    Ok(check)
}

/// Reads one JSONL export, keeping the watch rows with their `run` tags.
fn load_watch(path: &str) -> Result<Vec<(String, WatchEvent)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if let Some(ev) = WatchEvent::from_row(&json) {
            let run = json
                .get("run")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned();
            events.push((run, ev));
        }
    }
    Ok(events)
}

/// Replays one run's audit stream in order and verifies that every
/// remediation has a preceding explanation. Events are already exported
/// time-sorted with same-node insertion order preserved, so "preceding"
/// includes same-instant pairs (detection emitted just before its
/// remediation).
fn audit_run(run: &str, events: &[WatchEvent], violations: &mut Vec<String>) {
    use std::collections::HashSet;
    // Evidence seen so far, keyed by what each remediation must cite.
    let mut link_evidence: HashSet<(u32, u32)> = HashSet::new(); // budget/blackhole
    let mut suspended: HashSet<(u32, u32)> = HashSet::new();
    let mut churn: HashSet<u32> = HashSet::new(); // RerouteFlap per node
    let mut damped: HashSet<(u32, u32)> = HashSet::new(); // (node, origin)
    let mut growth: HashSet<u32> = HashSet::new();
    let mut shedding: HashSet<u32> = HashSet::new();
    let mut complain = |at_ns: u64, node: u32, what: &str| {
        violations.push(format!(
            "[{run}] t={:.3}ms n{node}: {what}",
            at_ns as f64 / 1e6
        ));
    };
    for e in events {
        let link = e.link.unwrap_or(u32::MAX);
        match e.kind {
            WatchKind::RecoveryBudgetExceeded { .. } | WatchKind::SilentBlackhole { .. } => {
                link_evidence.insert((e.node, link));
            }
            WatchKind::RerouteFlap { .. } => {
                churn.insert(e.node);
            }
            WatchKind::RetransmitStorm { .. } => {}
            WatchKind::QueueGrowth { .. } => {
                growth.insert(e.node);
            }
            WatchKind::LinkSuspended { .. } => {
                if !link_evidence.contains(&(e.node, link)) {
                    complain(
                        e.at_ns,
                        e.node,
                        &format!("link {link} suspended without budget/blackhole evidence"),
                    );
                }
                suspended.insert((e.node, link));
            }
            WatchKind::LinkProbed { .. } => {
                if !suspended.contains(&(e.node, link)) {
                    complain(
                        e.at_ns,
                        e.node,
                        &format!("link {link} probed, never suspended"),
                    );
                }
            }
            WatchKind::LinkReadmitted => {
                if !suspended.remove(&(e.node, link)) {
                    complain(
                        e.at_ns,
                        e.node,
                        &format!("link {link} readmitted, never suspended"),
                    );
                }
            }
            WatchKind::FlapDamped { origin } => {
                if !churn.contains(&e.node) {
                    complain(
                        e.at_ns,
                        e.node,
                        &format!("origin {origin} damped without recorded churn"),
                    );
                }
                damped.insert((e.node, origin));
            }
            WatchKind::FlapReleased { origin } => {
                if !damped.remove(&(e.node, origin)) {
                    complain(
                        e.at_ns,
                        e.node,
                        &format!("origin {origin} released, never damped"),
                    );
                }
            }
            WatchKind::ShedEngaged { .. } => {
                if !growth.contains(&e.node) {
                    complain(e.at_ns, e.node, "shedding engaged without queue growth");
                }
                shedding.insert(e.node);
            }
            WatchKind::ShedReleased => {
                if !shedding.remove(&e.node) {
                    complain(e.at_ns, e.node, "shedding released, never engaged");
                }
            }
        }
    }
}

fn run_watch_audit(args: &Args) -> Result<bool, String> {
    let mut by_run: std::collections::BTreeMap<String, Vec<WatchEvent>> =
        std::collections::BTreeMap::new();
    for file in &args.files {
        for (run, ev) in load_watch(file)? {
            by_run.entry(run).or_default().push(ev);
        }
    }
    banner(
        "son-trace --watch-audit",
        "Every watchdog remediation must be explained by a preceding detection",
    );
    let mut violations = Vec::new();
    table_header(&[
        ("run", 22),
        ("events", 7),
        ("detections", 11),
        ("remediations", 13),
        ("violations", 11),
    ]);
    let mut events_total = 0;
    for (tag, events) in &by_run {
        let before = violations.len();
        audit_run(tag, events, &mut violations);
        let remediations = events.iter().filter(|e| e.kind.is_remediation()).count();
        events_total += events.len();
        row(&[
            (tag.clone(), 22),
            (events.len().to_string(), 7),
            ((events.len() - remediations).to_string(), 11),
            (remediations.to_string(), 13),
            ((violations.len() - before).to_string(), 11),
        ]);
    }
    if !violations.is_empty() {
        println!("\nunexplained remediations:");
        for v in &violations {
            println!("  {v}");
        }
        println!("\nwatch-audit: FAIL ({} violations)", violations.len());
        return Ok(false);
    }
    if events_total == 0 {
        println!("\nwatch-audit: FAIL (no watch events in the export)");
        return Ok(false);
    }
    println!("\nwatch-audit: ok ({events_total} events, every remediation explained)");
    Ok(true)
}

/// Renders the E16 scaling curve and the largest-N profiler table from
/// `scale.jsonl` rows (one `bench:"exp_scale"` row plus `kind:"perf"` rows
/// per N, tagged `run:"n<N>"`).
fn run_scale_report(args: &Args) -> Result<bool, String> {
    let mut points: Vec<Json> = Vec::new();
    let mut perf_rows: std::collections::BTreeMap<String, Vec<Json>> =
        std::collections::BTreeMap::new();
    for file in &args.files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let json = Json::parse(line).map_err(|e| format!("{file}:{}: {e}", i + 1))?;
            if json.get("bench").and_then(Json::as_str) == Some("exp_scale") {
                points.push(json);
            } else if json.get("kind").and_then(Json::as_str) == Some("perf") {
                let run = json
                    .get("run")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned();
                perf_rows.entry(run).or_default().push(json);
            }
        }
    }
    banner(
        "son-trace --scale-report",
        "E16: throughput, bytes/node, and reroute latency as the overlay grows",
    );
    if points.is_empty() {
        println!("scale-report: FAIL (no exp_scale rows in the export)");
        return Ok(false);
    }
    points.sort_by_key(|p| p.get("n").and_then(Json::as_u64).unwrap_or(0));
    let num = |p: &Json, key: &str| p.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    table_header(&[
        ("n", 6),
        ("pkts/wall s", 12),
        ("KiB/node", 10),
        ("state KiB", 10),
        ("reroute p50", 12),
        ("reroute p99", 12),
        ("perf ovh", 9),
    ]);
    for p in &points {
        row(&[
            (num(p, "n").to_string(), 6),
            (f(num(p, "sim_pkts_per_wall_s"), 0), 12),
            (f(num(p, "bytes_per_node_total") / 1024.0, 1), 10),
            (f(num(p, "bytes_per_node_state") / 1024.0, 1), 10),
            (format!("{:.0}us", num(p, "reroute_p50_ns") / 1e3), 12),
            (format!("{:.0}us", num(p, "reroute_p99_ns") / 1e3), 12),
            (format!("{:+.1}%", num(p, "perf_overhead_pct")), 9),
        ]);
    }
    // Event-engine occupancy and sharding columns (added with the PDES
    // core): queue bloat and per-shard balance at each point.
    println!("\nevent engine per point:");
    table_header(&[
        ("n", 6),
        ("shards", 7),
        ("events min..max", 16),
        ("cross sends", 12),
        ("stall ms", 9),
        ("q live", 8),
        ("tomb peak", 10),
        ("compact", 8),
    ]);
    for p in &points {
        let events: Vec<u64> = p
            .get("shard_events")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_u64).collect())
            .unwrap_or_default();
        let cross: u64 = p
            .get("shard_cross_sends")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_u64).sum())
            .unwrap_or(0);
        let span = match (events.iter().min(), events.iter().max()) {
            (Some(lo), Some(hi)) => format!("{lo}..{hi}"),
            _ => "-".to_owned(),
        };
        row(&[
            (num(p, "n").to_string(), 6),
            (format!("{}", num(p, "shards").max(1.0) as u64), 7),
            (span, 16),
            (cross.to_string(), 12),
            (f(num(p, "merge_stall_ms"), 1), 9),
            (format!("{}", num(p, "queue_live") as u64), 8),
            (format!("{}", num(p, "queue_tombstones_peak") as u64), 10),
            (format!("{}", num(p, "queue_compactions") as u64), 8),
        ]);
    }
    let last = points.last().expect("non-empty");
    let last_n = last.get("n").and_then(Json::as_u64).unwrap_or(0);
    if let Some(stages) = perf_rows.get(&format!("n{last_n}")) {
        let mut stages: Vec<&Json> = stages.iter().collect();
        stages.sort_by(|a, b| num(b, "self_ns").total_cmp(&num(a, "self_ns")));
        println!("\ntop profiler stages at n={last_n} (by self time):");
        table_header(&[
            ("stage", 16),
            ("count", 12),
            ("self ms", 10),
            ("total ms", 10),
            ("total p99", 10),
        ]);
        for s in stages.iter().take(args.limit.max(10)) {
            row(&[
                (
                    s.get("stage")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    16,
                ),
                (format!("{}", num(s, "count") as u64), 12),
                (f(num(s, "self_ns") / 1e6, 1), 10),
                (f(num(s, "total_ns") / 1e6, 1), 10),
                (format!("{:.0}us", num(s, "total_p99_ns") / 1e3), 10),
            ]);
        }
    }
    let base = points.first().expect("non-empty");
    let (bn, tn) = (num(base, "n"), num(last, "n"));
    if tn > bn {
        let ratio = num(last, "bytes_per_node_state") / num(base, "bytes_per_node_state").max(1.0);
        println!(
            "\nstate bytes/node growth n={bn:.0}→{tn:.0}: {ratio:.1}x (linear would be {:.0}x)",
            tn / bn
        );
    }
    println!(
        "\nscale-report: ok ({} points, {} profiler stage rows)",
        points.len(),
        perf_rows.values().map(Vec::len).sum::<usize>()
    );
    Ok(true)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.watch_audit {
        return run_watch_audit(&args);
    }
    if args.scale_report {
        return run_scale_report(&args);
    }
    let mut by_run: std::collections::BTreeMap<String, Vec<TraceEvent>> =
        std::collections::BTreeMap::new();
    for file in &args.files {
        for (run, ev) in load(file)? {
            by_run.entry(run).or_default().push(ev);
        }
    }

    // Reconstruct and self-check per run (trace ids collide across runs);
    // the aggregate tables then pool every run's timelines.
    let mut timelines = Vec::new();
    let mut events_total = 0;
    let mut markers_total = 0;
    let mut violations = Vec::new();
    for (run, events) in &mut by_run {
        events.sort_by_key(|e| (e.at_ns, e.trace_id, e.hop, e.stage.rank()));
        let report = self_check(events);
        events_total += report.events;
        markers_total += report.markers;
        violations.extend(
            report
                .violations
                .into_iter()
                .map(|v| format!("[{run}] {v}")),
        );
        timelines.extend(reconstruct(events));
    }

    banner(
        "son-trace",
        "Per-packet end-to-end timelines from distributed trace events",
    );
    println!(
        "events: {} per-packet, {} node-scope markers, {} timelines over {} runs",
        events_total,
        markers_total,
        timelines.len(),
        by_run.len()
    );
    let delivered: Vec<&Timeline> = timelines
        .iter()
        .filter(|t| t.terminal() == Terminal::Delivered)
        .collect();
    let dropped = timelines
        .iter()
        .filter(|t| matches!(t.terminal(), Terminal::Dropped(_)))
        .count();
    let lost = timelines
        .iter()
        .filter(|t| t.terminal() == Terminal::LostInFlight)
        .count();
    let recovered: Vec<&Timeline> = delivered
        .iter()
        .copied()
        .filter(|t| t.recovery_ns() > 0)
        .collect();
    println!(
        "terminals: {} delivered ({} via recovery), {} dropped, {} lost in flight",
        delivered.len(),
        recovered.len(),
        dropped,
        lost
    );
    let e2e: Vec<u64> = delivered.iter().filter_map(|t| t.e2e_ns()).collect();
    let e2e_rec: Vec<u64> = recovered.iter().filter_map(|t| t.e2e_ns()).collect();
    println!(
        "e2e latency: p50 {:.2} ms over all delivered, p50 {:.2} ms over recovered",
        ms(median_ns(&e2e)),
        ms(median_ns(&e2e_rec))
    );

    if !timelines.is_empty() {
        println!("\nper-hop attribution (hop h = h-th daemon and the link leaving it):");
        table_header(&[
            ("hop", 4),
            ("arrivals", 9),
            ("queue p50 ms", 13),
            ("link p50 ms", 12),
            ("recoveries", 11),
            ("recovery p50 ms", 16),
        ]);
        for (hop, stat) in attribute(&timelines).iter().enumerate() {
            row(&[
                (hop.to_string(), 4),
                (stat.arrivals.to_string(), 9),
                (f(ms(median_ns(&stat.queue_ns)), 3), 13),
                (f(ms(median_ns(&stat.link_ns)), 3), 12),
                (stat.recoveries.to_string(), 11),
                (f(ms(median_ns(&stat.recovery_ns)), 3), 16),
            ]);
        }
    }

    if args.limit > 0 {
        // Show the most interesting examples first: recovered packets beat
        // clean deliveries.
        let mut examples: Vec<&Timeline> = recovered.clone();
        examples.extend(delivered.iter().copied().filter(|t| t.recovery_ns() == 0));
        if !examples.is_empty() {
            println!("\nexample timelines:");
            for tl in examples.iter().take(args.limit) {
                print_timeline(tl);
            }
        }
    }

    // Telemetry rows, when the inputs carry any: seq sanity plus explicit
    // gap accounting (lost snapshots are visible, never silent).
    let telemetry = check_telemetry(&args.files)?;
    if telemetry.rows > 0 {
        println!(
            "\ntelemetry: {} rows over {} nodes, {} seq gaps (snapshots lost in flight), {} violations",
            telemetry.rows,
            telemetry.nodes.len(),
            telemetry.gaps,
            telemetry.violations.len()
        );
    }

    if !violations.is_empty() {
        println!("\ncausal-consistency violations:");
        for v in &violations {
            println!("  {v}");
        }
    }
    if !telemetry.violations.is_empty() {
        println!("\ntelemetry violations:");
        for v in &telemetry.violations {
            println!("  {v}");
        }
    }
    if args.self_check {
        if timelines.is_empty() {
            println!("\nself-check: FAIL (no timelines reconstructed)");
            return Ok(false);
        }
        if !violations.is_empty() {
            println!(
                "\nself-check: FAIL ({} violations over {} timelines)",
                violations.len(),
                timelines.len()
            );
            return Ok(false);
        }
        if !telemetry.violations.is_empty() {
            println!(
                "\nself-check: FAIL ({} telemetry violations over {} rows)",
                telemetry.violations.len(),
                telemetry.rows
            );
            return Ok(false);
        }
        println!(
            "\nself-check: ok ({} timelines, {} events causally consistent{})",
            timelines.len(),
            events_total,
            if telemetry.rows > 0 {
                format!(
                    ", {} telemetry rows seq-consistent ({} gaps accounted)",
                    telemetry.rows, telemetry.gaps
                )
            } else {
                String::new()
            }
        );
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("son-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
