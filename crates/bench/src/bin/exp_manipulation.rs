//! E8 — §V-A: real-time remote manipulation at a 65 ms one-way deadline.
//!
//! "The roundtrip latency must be no more than about 130ms, translating to a
//! one-way latency requirement of 65ms. On the scale of a continent... this
//! leaves only 20-25ms of flexibility for buffering or recovery of lost
//! packets." The strict deadline defeats deep retransmission schedules, so
//! the approach combines the single-request/single-retransmission protocol
//! \[6,7\] with dissemination graphs that add redundancy in the problematic
//! areas \[2\].
//!
//! Setup: a 1 kHz haptic stream crosses the continental overlay NYC→LA
//! (~37 ms propagation). Loss is concentrated around the source — the
//! "problematic area" — on every link incident to NYC and its neighbors.
//! We grid protocols × routing schemes and report the paper's metric: the
//! fraction of commands delivered within 65 ms, plus wire cost.

use son_apps::manipulation::{self, HapticProfile};
use son_bench::{banner, f, row, table_header, RX_PORT, TX_PORT};
use son_netsim::loss::LossConfig;
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess};
use son_overlay::node::OverlayNode;
use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
use son_topo::NodeId;

const SRC: NodeId = NodeId(0); // NYC
const DST: NodeId = NodeId(11); // LA

fn run(spec: FlowSpec, loss_rate: f64, seed: u64) -> (f64, f64, f64, f64) {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    // Bursty loss concentrated around the source's area: every link whose
    // endpoints are within 2 hops of NYC.
    let near: Vec<NodeId> = {
        let spt = son_topo::dijkstra_with(&topo, SRC, |_| 1.0);
        topo.nodes()
            .filter(|&v| spt.dist(v).unwrap_or(99.0) <= 1.0)
            .collect()
    };
    let mut builder = OverlayBuilder::new(topo.clone());
    for e in topo.edges() {
        let (a, b) = topo.endpoints(e);
        if near.contains(&a) || near.contains(&b) {
            let burst = SimDuration::from_millis(8);
            let good = burst * ((1.0 - loss_rate) / loss_rate);
            builder = builder.edge_loss(e, LossConfig::bursts(good, burst));
        }
    }
    let mut sim: Simulation<Wire> = Simulation::new(seed);
    let overlay = builder.build(&mut sim);
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(DST),
        port: RX_PORT,
        joins: vec![],
        flows: vec![],
    }));
    let profile = HapticProfile {
        packet_size: 64,
        rate_hz: 1000,
    };
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(SRC),
        port: TX_PORT,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(DST, RX_PORT)),
            spec,
            workload: profile.workload(SimTime::from_secs(1), SimDuration::from_secs(20)),
        }],
    }));
    sim.run_until(SimTime::from_secs(25));
    let sent = sim.proc_ref::<ClientProcess>(tx).unwrap().sent(1);
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .recv
        .values()
        .next()
        .cloned()
        .unwrap_or_default();
    let report = manipulation::score(&recv, sent);
    let mut forwarded = 0;
    for &d in &overlay.daemons {
        forwarded += sim.proc_ref::<OverlayNode>(d).unwrap().metrics().forwarded;
    }
    (
        report.on_time_frac,
        report.mean_latency_ms,
        report.max_latency_ms,
        forwarded as f64 / sent as f64,
    )
}

fn main() {
    banner(
        "E8 / Section V-A (remote manipulation, 65ms one-way)",
        "single-strike recovery + dissemination graphs beat single path and uniform redundancy",
    );

    // ~12ms of slack per recovery hop out of the 20-25ms of flexibility.
    let budget = SimDuration::from_millis(12);
    let schemes: Vec<(&str, FlowSpec)> = vec![
        ("single path", manipulation::single_path_spec(budget)),
        ("2 disjoint", manipulation::disjoint_paths_spec(2, budget)),
        (
            "2 overlapping",
            manipulation::overlapping_paths_spec(2, budget),
        ),
        ("3 disjoint", manipulation::disjoint_paths_spec(3, budget)),
        ("dissem. graph", manipulation::manipulation_spec(budget)),
        ("flooding", manipulation::flooding_spec(budget)),
    ];

    for &loss in &[0.01f64, 0.05] {
        println!("-- {}% bursty loss around the source --", loss * 100.0);
        table_header(&[
            ("scheme", 14),
            ("on-time@65ms", 12),
            ("mean ms", 8),
            ("max ms", 8),
            ("tx/pkt", 7),
        ]);
        for (name, spec) in &schemes {
            let (on_time, mean, max, cost) = run(*spec, loss, 71);
            row(&[
                (name.to_string(), 14),
                (f(on_time * 100.0, 2) + "%", 12),
                (f(mean, 1), 8),
                (f(max, 1), 8),
                (f(cost, 1), 7),
            ]);
        }
        println!();
    }

    println!("Shape check (paper): with loss concentrated in the source's problematic");
    println!("area, a single path misses the deadline for every burst; the dissemination");
    println!("graph recovers nearly everything flooding does, at a fraction of its cost,");
    println!("and does at least as well as uniform (disjoint-path) redundancy because its");
    println!("redundancy is targeted where the loss actually is.");
}
