//! E6 — §IV-B: intrusion-tolerant redundant dissemination.
//!
//! "By using k node-disjoint paths, a source can protect against up to k−1
//! compromised nodes anywhere in the network... Alternatively, a source can
//! use constrained flooding, which... ensures that messages are successfully
//! delivered as long as at least one path of correct nodes exists."
//!
//! On the continental overlay, a flow crosses the country while compromised
//! nodes blackhole transit data (control plane stays correct, so routing
//! does not simply avoid them). We sweep the number of compromised nodes —
//! placed adversarially (on the best path first) and randomly — across the
//! routing schemes, reporting delivery rate and wire cost.

use son_bench::{
    banner, export_registry, f, finish_export, gather_registry, obs_sink, row, table_header,
    RX_PORT, TX_PORT,
};
use son_netsim::rng::SimRng;
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_obs::JsonlSink;
use son_overlay::adversary::Behavior;
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::{Destination, FlowSpec, OverlayAddr, RoutingService, SourceRoute, Wire};
use son_topo::{Graph, NodeId};

const COUNT: u64 = 300;

fn schemes() -> Vec<(&'static str, FlowSpec)> {
    let base = FlowSpec::best_effort();
    vec![
        ("single path", base),
        (
            "2 disjoint",
            base.with_routing(RoutingService::SourceBased(SourceRoute::DisjointPaths(2))),
        ),
        (
            "3 disjoint",
            base.with_routing(RoutingService::SourceBased(SourceRoute::DisjointPaths(3))),
        ),
        (
            "2 overlapping",
            base.with_routing(RoutingService::SourceBased(SourceRoute::OverlappingPaths(
                2,
            ))),
        ),
        (
            "dissem. graph",
            base.with_routing(RoutingService::SourceBased(SourceRoute::DisseminationGraph)),
        ),
        (
            "flooding",
            base.with_routing(RoutingService::SourceBased(
                SourceRoute::ConstrainedFlooding,
            )),
        ),
    ]
}

/// Picks `k` compromised interior nodes: adversarial = along the best path
/// first; random = uniform over interior nodes.
fn pick_compromised(
    topo: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    adversarial: bool,
    rng: &mut SimRng,
) -> Vec<NodeId> {
    let interior: Vec<NodeId> = topo.nodes().filter(|&v| v != src && v != dst).collect();
    if adversarial {
        // Interior nodes of the shortest path, then of the second disjoint
        // path, etc.
        let dp = son_topo::k_node_disjoint_paths(topo, src, dst, 4);
        let mut picks = Vec::new();
        for p in &dp.paths {
            for &v in &p.nodes[1..p.nodes.len() - 1] {
                if picks.len() < k && !picks.contains(&v) {
                    picks.push(v);
                }
            }
        }
        // Top up randomly if the paths were short.
        let mut rest = interior;
        rng.shuffle(&mut rest);
        for v in rest {
            if picks.len() >= k {
                break;
            }
            if !picks.contains(&v) {
                picks.push(v);
            }
        }
        picks
    } else {
        let mut rest = interior;
        rng.shuffle(&mut rest);
        rest.truncate(k);
        rest
    }
}

fn run_once(
    topo: &Graph,
    spec: FlowSpec,
    compromised: &[NodeId],
    seed: u64,
    sink: &mut Option<JsonlSink>,
    tag: &str,
) -> (f64, f64, u64) {
    let (src, dst) = (NodeId(0), NodeId(11)); // NYC -> LA
    let mut sim: Simulation<Wire> = Simulation::new(seed);
    let overlay = OverlayBuilder::new(topo.clone()).build(&mut sim);
    for &bad in compromised {
        sim.proc_mut::<OverlayNode>(overlay.daemon(bad))
            .unwrap()
            .set_behavior(Behavior::Blackhole);
    }
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(dst),
        port: RX_PORT,
        joins: vec![],
        flows: vec![],
    }));
    let _tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(src),
        port: TX_PORT,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(dst, RX_PORT)),
            spec,
            workload: Workload::Cbr {
                size: 500,
                interval: SimDuration::from_millis(20),
                count: COUNT,
                start: SimTime::from_secs(1),
            },
        }],
    }));
    sim.run_until(SimTime::from_secs(12));
    if let Some(sink) = sink {
        let _ = export_registry(sink, tag, &gather_registry(&sim, &overlay));
    }
    let received = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .recv
        .values()
        .map(|r| r.received)
        .sum::<u64>();
    let mut forwarded = 0;
    let mut dups = 0;
    for &d in &overlay.daemons {
        let m = sim.proc_ref::<OverlayNode>(d).unwrap().metrics();
        forwarded += m.forwarded;
        dups += m.dedup_suppressed;
    }
    (
        received as f64 / COUNT as f64,
        forwarded as f64 / COUNT as f64,
        dups,
    )
}

fn main() {
    banner(
        "E6 / Section IV-B (intrusion-tolerant dissemination)",
        "k disjoint paths survive k-1 compromises; flooding survives anything short of a cut",
    );

    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let mut rng = SimRng::seed(0xbad);
    let mut sink = obs_sink("exp_intrusion");

    for adversarial in [true, false] {
        println!(
            "\n-- compromised nodes placed {} --",
            if adversarial {
                "ADVERSARIALLY (best paths first)"
            } else {
                "randomly (5-trial mean)"
            }
        );
        table_header(&[
            ("scheme", 14),
            ("k=0", 8),
            ("k=1", 8),
            ("k=2", 8),
            ("k=3", 8),
            ("tx/pkt", 7),
        ]);
        for (name, spec) in schemes() {
            let mut cells = vec![(name.to_string(), 14)];
            let mut cost = 0.0;
            for k in 0..4usize {
                let trials = if adversarial { 1 } else { 5 };
                let mut total = 0.0;
                for t in 0..trials {
                    let bad =
                        pick_compromised(&topo, NodeId(0), NodeId(11), k, adversarial, &mut rng);
                    let placement = if adversarial { "adversarial" } else { "random" };
                    let tag = format!("{name}/k={k}/{placement}/t={t}");
                    let (frac, tx, _) = run_once(
                        &topo,
                        spec,
                        &bad,
                        900 + k as u64 * 10 + t as u64,
                        &mut sink,
                        &tag,
                    );
                    total += frac;
                    if k == 0 {
                        // The scheme's intrinsic wire cost, measured with no
                        // attacker interfering with propagation.
                        cost = tx;
                    }
                }
                cells.push((
                    f(total / if adversarial { 1.0 } else { 5.0 } * 100.0, 1) + "%",
                    8,
                ));
            }
            cells.push((f(cost, 1), 7));
            row(&cells);
        }
    }

    if let Some(sink) = sink {
        finish_export(sink);
    }
    println!();
    println!("Shape check (paper): single path dies at the first on-path compromise;");
    println!("k disjoint paths deliver 100% up to k-1 compromises and can fail at k.");
    println!("Dissemination graphs and flooding sit above disjoint paths in both");
    println!("robustness and wire cost; at k=3 the adversarial placement is a vertex");
    println!("cut of this topology (NYC has three neighbors), so NOTHING can deliver —");
    println!("exactly the paper's caveat \"provided that some correct path through the");
    println!("overlay still exists\". De-duplication keeps app duplicates at zero.");
}
