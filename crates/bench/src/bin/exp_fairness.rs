//! E7 — §IV-B: intrusion-tolerant fair scheduling under a
//! resource-consumption attack.
//!
//! "Both Priority and Reliable messaging use fair buffer allocation and
//! round-robin scheduling to ensure that a compromised source cannot consume
//! the resources of other sources to prevent their messages from being
//! forwarded." Four correct sources share a relay with one attacker whose
//! send rate we sweep from 1x to 100x; the FIFO baseline, IT-Priority, and
//! IT-Reliable carry the same offered load through the same paced egress.

use son_bench::{banner, f, row, table_header, RX_PORT, TX_PORT};
use son_netsim::sim::Simulation;
use son_netsim::stats::jain_fairness;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::OverlayBuilder;
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::{Destination, FlowSpec, LinkService, NodeConfig, OverlayAddr, Wire};
use son_topo::{Graph, NodeId};

/// Correct sources send 25 packets/s each.
const CORRECT_INTERVAL: SimDuration = SimDuration::from_millis(40);
const RUN_FOR: SimTime = SimTime::from_secs(30);
const MEASURE_FROM: SimTime = SimTime::from_secs(5);

/// Star: sources 0..5 -> relay 5 -> sink 6. Node 4 hosts the attacker.
fn topology() -> Graph {
    let mut g = Graph::new(7);
    for i in 0..5 {
        g.add_edge(NodeId(i), NodeId(5), 10.0);
    }
    g.add_edge(NodeId(5), NodeId(6), 10.0);
    g
}

/// Runs one (service, attacker-rate) cell; returns
/// (mean correct goodput fraction, attacker share of sink traffic, jain).
fn run(service: LinkService, attack_multiplier: u64) -> (f64, f64, f64) {
    // 2 Mbit/s egress ≈ 238 pkt/s of 1048-B wire packets: fair share of 5
    // sources ≈ 47/s > the 25/s each correct source offers.
    let config = NodeConfig {
        it_rate_bps: Some(2_000_000),
        it_source_cap: 16,
        fifo_cap: 64,
        ..Default::default()
    };
    let mut sim: Simulation<Wire> = Simulation::new(61 + attack_multiplier);
    let overlay = OverlayBuilder::new(topology())
        .node_config(config)
        .build(&mut sim);
    let sink = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(6)),
        port: RX_PORT,
        joins: vec![],
        flows: vec![],
    }));
    let spec = FlowSpec::best_effort().with_link(service);
    let mut senders = Vec::new();
    for i in 0..5usize {
        let interval = if i == 4 {
            SimDuration::from_nanos(CORRECT_INTERVAL.as_nanos() / attack_multiplier.max(1))
        } else {
            CORRECT_INTERVAL
        };
        senders.push(sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(i)),
            port: TX_PORT,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(6), RX_PORT)),
                spec,
                workload: Workload::Cbr {
                    size: 1000,
                    interval,
                    count: u64::MAX,
                    start: SimTime::from_millis(500),
                },
            }],
        })));
    }
    sim.run_until(RUN_FOR);
    let sink_client = sim.proc_ref::<ClientProcess>(sink).unwrap();
    // Steady-state accounting: deliveries after MEASURE_FROM.
    let delivered_after = |i: usize| -> u64 {
        sink_client
            .recv
            .iter()
            .filter(|(k, _)| k.src.node == NodeId(i))
            .flat_map(|(_, r)| r.arrivals.iter())
            .filter(|&&(t, _)| t >= MEASURE_FROM)
            .count() as u64
    };
    let window = RUN_FOR.saturating_since(MEASURE_FROM).as_secs_f64();
    let offered_correct = window / CORRECT_INTERVAL.as_secs_f64();
    let correct_fracs: Vec<f64> = (0..4)
        .map(|i| delivered_after(i) as f64 / offered_correct)
        .collect();
    let attacker = delivered_after(4) as f64;
    let total: f64 = (0..5).map(|i| delivered_after(i) as f64).sum();
    let mean_correct = correct_fracs.iter().sum::<f64>() / 4.0;
    let mut shares: Vec<f64> = (0..4).map(|i| delivered_after(i) as f64).collect();
    shares.push(attacker);
    (
        mean_correct,
        if total > 0.0 { attacker / total } else { 0.0 },
        jain_fairness(&shares).unwrap_or(0.0),
    )
}

fn main() {
    banner(
        "E7 / Section IV-B (fair scheduling under flooding attack)",
        "round-robin fair schedulers protect correct sources; FIFO collapses",
    );

    table_header(&[
        ("attacker rate", 13),
        ("protocol", 12),
        ("correct goodput", 15),
        ("attacker share", 14),
        ("jain", 6),
    ]);

    for mult in [1u64, 10, 40, 100] {
        for (name, service) in [
            ("fifo", LinkService::Fifo),
            ("it-priority", LinkService::ItPriority),
            ("it-reliable", LinkService::ItReliable),
        ] {
            let (correct, attacker_share, jain) = run(service, mult);
            row(&[
                (format!("{mult}x"), 13),
                (name.to_string(), 12),
                (f(correct * 100.0, 1) + "%", 15),
                (f(attacker_share * 100.0, 1) + "%", 14),
                (f(jain, 3), 6),
            ]);
        }
        println!();
    }

    println!("Shape check (paper): under FIFO the attacker's share of the bottleneck");
    println!("approaches 100% as its rate grows and correct goodput collapses; the");
    println!("intrusion-tolerant schedulers hold correct sources at ~100% goodput");
    println!("regardless of the attack rate, capping the attacker near one fair share.");
}
