//! E13 — ablations of the design choices behind the headline results.
//!
//! 1. **Hello cadence vs failover time** — the sub-second reroute claim
//!    rests on hello interval × miss threshold; we sweep both and measure
//!    the outage a flow sees against the control-plane overhead paid.
//! 2. **Strike spacing vs burst correlation** — NM-Strikes spreads its
//!    requests "to reduce the probability that all of the requests are
//!    affected by the same correlated loss event"; we shrink the recovery
//!    budget (and therefore the spacing) below the burst length and watch
//!    recovery collapse.
//! 3. **RTO factor** — the Reliable Data Link's timeout multiplier trades
//!    recovery latency against spurious retransmissions.

use son_bench::{banner, f, row, table_header, UnicastRun, RX_PORT, TX_PORT};
use son_netsim::loss::LossConfig;
use son_netsim::sim::{ScenarioEvent, Simulation};
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{chain_topology, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::state::connectivity::ConnectivityConfig;
use son_overlay::{
    Destination, FlowSpec, LinkService, NodeConfig, OverlayAddr, RealtimeParams, Wire,
};
use son_topo::{Graph, NodeId};

fn failover_run(hello_ms: u64, down_misses: u32) -> (f64, f64) {
    // Square topology, fail the primary path's first link.
    let mut topo = Graph::new(4);
    let e01 = topo.add_edge(NodeId(0), NodeId(1), 10.0);
    topo.add_edge(NodeId(1), NodeId(3), 10.0);
    topo.add_edge(NodeId(0), NodeId(2), 15.0);
    topo.add_edge(NodeId(2), NodeId(3), 15.0);
    let config = NodeConfig {
        connectivity: ConnectivityConfig {
            hello_interval: SimDuration::from_millis(hello_ms),
            down_misses,
            ..ConnectivityConfig::default()
        },
        ..Default::default()
    };
    let mut sim: Simulation<Wire> = Simulation::new(81);
    let overlay = OverlayBuilder::new(topo)
        .node_config(config)
        .build(&mut sim);
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(3)),
        port: RX_PORT,
        joins: vec![],
        flows: vec![],
    }));
    let _tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(0)),
        port: TX_PORT,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(NodeId(3), RX_PORT)),
            spec: FlowSpec::best_effort(),
            workload: Workload::Cbr {
                size: 500,
                interval: SimDuration::from_millis(5),
                count: u64::MAX,
                start: SimTime::from_millis(500),
            },
        }],
    }));
    for &(ab, ba) in &overlay.edge_pipes[&e01] {
        sim.schedule(SimTime::from_secs(3), ScenarioEvent::DisablePipe(ab));
        sim.schedule(SimTime::from_secs(3), ScenarioEvent::DisablePipe(ba));
    }
    sim.run_until(SimTime::from_secs(10));
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .sole_recv()
        .clone();
    let outage = recv
        .arrivals
        .windows(2)
        .filter(|w| w[1].0 > SimTime::from_secs(3))
        .map(|w| w[1].0.saturating_since(w[0].0).as_millis_f64())
        .fold(0.0f64, f64::max);
    // Control overhead: hello+ack messages per second per link direction.
    let ctl_per_sec = 2.0 * 1000.0 / hello_ms as f64;
    (outage, ctl_per_sec)
}

fn spacing_run(budget_ms: u64) -> (f64, f64) {
    // 20ms bursts at 5% on a 4-hop path; NM 3x2 with the given budget.
    let params = RealtimeParams {
        n_requests: 3,
        m_retransmissions: 2,
        budget: SimDuration::from_millis(budget_ms),
    };
    let spec = FlowSpec::best_effort()
        .with_link(LinkService::Realtime(params))
        .with_ordered(true)
        .with_deadline(SimDuration::from_millis(200));
    let mut run = UnicastRun::new(chain_topology(5, 10.0), spec, NodeId(0), NodeId(4));
    run.loss = LossConfig::bursts(SimDuration::from_millis(380), SimDuration::from_millis(20));
    run.count = 20_000;
    run.interval = SimDuration::from_millis(2);
    run.run_for = SimDuration::from_secs(90);
    run.seed = 82;
    let out = run.run();
    let within = out.recv.latency_ms.fraction_within(200.0).unwrap_or(0.0)
        * out.recv.received as f64
        / out.sent as f64;
    (within, params.spacing().as_millis_f64())
}

fn rto_run(factor: f64) -> (f64, f64) {
    let config = NodeConfig {
        rto_factor: factor,
        ..Default::default()
    };
    let mut run = UnicastRun::new(
        chain_topology(5, 10.0),
        FlowSpec::reliable(),
        NodeId(0),
        NodeId(4),
    );
    run.node_config = config;
    run.loss = LossConfig::Bernoulli { p: 0.02 };
    run.count = 10_000;
    run.interval = SimDuration::from_millis(5);
    run.run_for = SimDuration::from_secs(90);
    run.seed = 83;
    let out = run.run();
    let mut lat = out.recv.latency_ms.clone();
    (
        lat.quantile(0.999).unwrap_or(f64::NAN),
        out.wire.overhead_ratio(),
    )
}

fn main() {
    banner(
        "E13 / ablations",
        "the design choices behind sub-second rerouting and burst recovery",
    );

    println!("-- hello cadence vs failover (link cut at t=3s) --");
    table_header(&[
        ("hello", 8),
        ("misses", 7),
        ("outage ms", 10),
        ("ctl msgs/s/link", 15),
    ]);
    for (hello, misses) in [
        (50u64, 3u32),
        (100, 3),
        (100, 5),
        (250, 3),
        (500, 3),
        (1000, 3),
    ] {
        let (outage, ctl) = failover_run(hello, misses);
        row(&[
            (format!("{hello}ms"), 8),
            (misses.to_string(), 7),
            (f(outage, 0), 10),
            (f(ctl, 1), 15),
        ]);
    }

    println!("\n-- NM-Strikes spacing vs 20ms bursts (5% loss, 3x2 strikes) --");
    table_header(&[("budget", 8), ("spacing ms", 10), ("within 200ms", 12)]);
    for budget in [10u64, 25, 50, 100, 160] {
        let (within, spacing) = spacing_run(budget);
        row(&[
            (format!("{budget}ms"), 8),
            (f(spacing, 1), 10),
            (f(within * 100.0, 2) + "%", 12),
        ]);
    }

    println!("\n-- Reliable Data Link RTO factor (2% loss) --");
    table_header(&[("rto factor", 10), ("p99.9 ms", 9), ("overhead", 8)]);
    for factor in [1.5f64, 2.0, 3.0, 5.0, 8.0] {
        let (p999, overhead) = rto_run(factor);
        row(&[(f(factor, 1), 10), (f(p999, 1), 9), (f(overhead, 3), 8)]);
    }

    println!();
    println!("Shape check: failover time ~= hello_interval x down_misses (+ flood), so");
    println!("sub-second reaction needs sub-second hellos at modest overhead; strike");
    println!("spacing below the burst length wastes the extra strikes (all land in the");
    println!("same correlated loss window); aggressive RTOs cut the tail at the price");
    println!("of spurious retransmissions.");
}
