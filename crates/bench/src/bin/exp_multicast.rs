//! E5 — §III-B: overlay multicast efficiency.
//!
//! "The overlay is able to construct the most efficient multicast tree to
//! route messages to all overlay nodes that have clients in the group...
//! without requiring each endpoint to create multiple connections."
//!
//! A monitoring source in NYC fans out to a growing set of receiver cities.
//! We compare the total number of link transmissions per source packet for
//! (a) one multicast flow over the shared tree versus (b) one unicast flow
//! per receiver, and verify every receiver got the full stream either way.

use son_bench::{banner, f, row, table_header, RX_PORT, TX_PORT};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::{Destination, FlowSpec, GroupId, OverlayAddr, Wire};
use son_topo::NodeId;

const COUNT: u64 = 500;
const GROUP: GroupId = GroupId(42);

fn workload() -> Workload {
    Workload::Cbr {
        size: 500,
        interval: SimDuration::from_millis(20),
        count: COUNT,
        start: SimTime::from_secs(1),
    }
}

/// Runs one configuration; returns (total link transmissions, min received).
fn run(receivers: &[NodeId], multicast: bool) -> (u64, u64) {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let mut sim: Simulation<Wire> = Simulation::new(51);
    let overlay = OverlayBuilder::new(topo).build(&mut sim);
    let src = NodeId(0); // NYC

    let rx: Vec<_> = receivers
        .iter()
        .map(|&n| {
            sim.add_process(ClientProcess::new(ClientConfig {
                daemon: overlay.daemon(n),
                port: RX_PORT,
                joins: if multicast { vec![GROUP] } else { vec![] },
                flows: vec![],
            }))
        })
        .collect();

    let flows: Vec<ClientFlow> = if multicast {
        vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Multicast(GROUP),
            spec: FlowSpec::best_effort(),
            workload: workload(),
        }]
    } else {
        receivers
            .iter()
            .enumerate()
            .map(|(i, &n)| ClientFlow {
                local_flow: i as u32 + 1,
                dst: Destination::Unicast(OverlayAddr::new(n, RX_PORT)),
                spec: FlowSpec::best_effort(),
                workload: workload(),
            })
            .collect()
    };
    let _tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(src),
        port: TX_PORT,
        joins: vec![],
        flows,
    }));
    sim.run_until(SimTime::from_secs(15));

    let mut transmissions = 0;
    for &d in &overlay.daemons {
        transmissions += sim.proc_ref::<OverlayNode>(d).unwrap().metrics().forwarded;
    }
    let min_received = rx
        .iter()
        .map(|&r| {
            let c = sim.proc_ref::<ClientProcess>(r).unwrap();
            c.recv.values().map(|fr| fr.received).sum::<u64>()
        })
        .min()
        .unwrap_or(0);
    (transmissions, min_received)
}

fn main() {
    banner(
        "E5 / Section III-B (overlay multicast)",
        "one stream into a shared tree vs one unicast stream per receiver",
    );

    table_header(&[
        ("receivers", 9),
        ("tree tx/pkt", 11),
        ("unicast tx/pkt", 14),
        ("savings", 8),
        ("complete", 9),
    ]);

    // Receivers spread across the map (node 0 = NYC is the source).
    let all: Vec<NodeId> = (1..12).map(NodeId).collect();
    for n in [2usize, 4, 6, 8, 11] {
        let receivers = &all[..n];
        let (tree_tx, tree_min) = run(receivers, true);
        let (uni_tx, uni_min) = run(receivers, false);
        let tree_per = tree_tx as f64 / COUNT as f64;
        let uni_per = uni_tx as f64 / COUNT as f64;
        row(&[
            (n.to_string(), 9),
            (f(tree_per, 2), 11),
            (f(uni_per, 2), 14),
            (f(uni_per / tree_per, 2) + "x", 8),
            (
                if tree_min >= COUNT && uni_min >= COUNT {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
                9,
            ),
        ]);
    }

    println!();
    println!("Shape check (paper): the shared tree's cost grows with the tree, not with");
    println!("the receiver count x path length, so savings grow with group size; all");
    println!("receivers get the complete stream either way.");
}
