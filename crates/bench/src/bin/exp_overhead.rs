//! E4 — §II-D: the latency cost of the overlay is small.
//!
//! "The latency costs of structured overlay networks are small: since
//! overlay node locations are carefully selected, the latency overhead of
//! using a multi-hop indirect overlay path rather than the direct Internet
//! path is small. Furthermore, the computational costs to traverse up and
//! down the network stack... amount to less than 1ms additional latency per
//! intermediate overlay node."
//!
//! For every ordered city pair on the continental-US scenario we compare the
//! best *direct* single-provider underlay latency against the multi-hop
//! overlay path (short links + per-hop processing) and report the stretch
//! distribution. The CPU-side claim (<1 ms per hop) is measured separately
//! by `cargo bench` (`forwarding` micro-benchmarks) — on modern hardware the
//! per-packet daemon work is microseconds.

use son_bench::{banner, f, row, table_header};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::time::SimTime;
use son_netsim::underlay::Attachment;
use son_overlay::builder::{continental_overlay, HOP_PROCESSING};
use son_topo::{dijkstra, NodeId};

fn main() {
    banner(
        "E4 / Section II-D (overlay latency overhead)",
        "multi-hop overlay path vs direct Internet path: small stretch; <1ms processing per hop",
    );

    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, cities) = continental_overlay(&sc);
    let mut ul = sc.underlay.clone();
    let hop_ms = HOP_PROCESSING.as_millis_f64();

    let mut stretches = son_netsim::stats::Percentiles::new();
    let mut added_ms = son_netsim::stats::Percentiles::new();
    let mut hops_all = son_netsim::stats::Percentiles::new();
    let mut worst: Option<(usize, usize, f64)> = None;

    for a in 0..cities.len() {
        let spt = dijkstra(&topo, NodeId(a));
        for b in 0..cities.len() {
            if a == b {
                continue;
            }
            // Direct path: best single provider.
            let direct = sc
                .isps
                .iter()
                .filter_map(|&isp| {
                    ul.resolve(SimTime::ZERO, Attachment::OnNet(isp), cities[a], cities[b])
                        .ok()
                        .map(|p| p.latency.as_millis_f64())
                })
                .fold(f64::INFINITY, f64::min);
            // Overlay path: shortest overlay route + per-hop processing at
            // each traversed node (including endpoints' stacks).
            let path = spt.path_to(NodeId(b)).expect("overlay connected");
            let overlay_ms = path.cost + hop_ms * path.hops() as f64;
            let stretch = overlay_ms / direct;
            stretches.record(stretch);
            added_ms.record(overlay_ms - direct);
            hops_all.record(path.hops() as f64);
            if worst.as_ref().is_none_or(|&(_, _, s)| stretch > s) {
                worst = Some((a, b, stretch));
            }
        }
    }

    table_header(&[
        ("metric", 28),
        ("p50", 8),
        ("mean", 8),
        ("p95", 8),
        ("max", 8),
    ]);
    let pr = |name: &str, p: &mut son_netsim::stats::Percentiles| {
        row(&[
            (name.to_string(), 28),
            (f(p.quantile(0.5).unwrap(), 3), 8),
            (f(p.mean().unwrap(), 3), 8),
            (f(p.quantile(0.95).unwrap(), 3), 8),
            (f(p.max().unwrap(), 3), 8),
        ]);
    };
    pr("path stretch (x)", &mut stretches);
    pr("added latency (ms)", &mut added_ms);
    pr("overlay hops", &mut hops_all);

    if let Some((a, b, s)) = worst {
        println!(
            "\nworst pair: {} -> {} at {:.3}x",
            sc.underlay.city_name(cities[a]),
            sc.underlay.city_name(cities[b]),
            s
        );
    }
    println!(
        "per-hop processing charged: {:.3} ms (paper: <1 ms)",
        hop_ms
    );
    println!();
    println!("Shape check (paper): overlay stretch stays small (typically <1.2x) because");
    println!("overlay links follow the same fiber; the processing cost per intermediate");
    println!("node is far below 1ms of added latency. Run `cargo bench` for the measured");
    println!("per-packet forwarding cost on this machine.");
}
