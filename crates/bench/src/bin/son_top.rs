//! `son-top` — the live cluster console and SLO gate.
//!
//! ```text
//! son-top [--listen ADDR | FILE...] [--json] [--once] [--gate SPEC]
//!         [--interval MS] [--for MS] [--record FILE] [--top N]
//! ```
//!
//! Two input modes, one aggregator:
//!
//! - **Live**: `--listen ADDR` binds the collector UDP socket `son-node
//!   --telemetry` daemons stream binary snapshots to, and refreshes a
//!   terminal view every `--interval` (default 1000 ms). `--record FILE`
//!   additionally appends every received snapshot as a `kind:"telemetry"`
//!   JSONL row — the recording replays to the identical roll-up.
//! - **Replay**: positional JSONL files (sim-leg `*.telemetry.jsonl` or a
//!   live recording) are ingested in order and rendered once.
//!
//! `--json` prints the machine roll-up instead of the console view.
//! `--gate delivery>=0.95,stale<=2` evaluates SLO clauses against the
//! final roll-up and exits non-zero on breach, so scripts and CI can use
//! `son-top --json --gate ... --once` as a cluster health check. `--for MS`
//! bounds a live session (it implies an exit even without `--once`).

use std::io::Read as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use son_bench::telemetry::{ClusterState, Gate};
use son_obs::snapshot::TelemetrySnapshot;
use son_obs::Json;

const USAGE: &str = "usage: son-top [--listen ADDR | FILE...] [--json] [--once] [--gate SPEC] [--interval MS] [--for MS] [--record FILE] [--top N]";

struct Args {
    listen: Option<String>,
    files: Vec<String>,
    json: bool,
    once: bool,
    gate: Option<Gate>,
    interval_ms: u64,
    for_ms: Option<u64>,
    record: Option<String>,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        files: Vec::new(),
        json: false,
        once: false,
        gate: None,
        interval_ms: 1_000,
        for_ms: None,
        record: None,
        top: 5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--listen" => args.listen = Some(value("--listen")?),
            "--json" => args.json = true,
            "--once" => args.once = true,
            "--gate" => args.gate = Some(Gate::parse(&value("--gate")?)?),
            "--interval" => {
                args.interval_ms = value("--interval")?
                    .parse()
                    .map_err(|e| format!("--interval: {e}"))?;
            }
            "--for" => {
                args.for_ms = Some(value("--for")?.parse().map_err(|e| format!("--for: {e}"))?);
            }
            "--record" => args.record = Some(value("--record")?),
            "--top" => args.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown argument {other:?}\n{USAGE}"));
            }
            file => args.files.push(file.to_owned()),
        }
    }
    if args.listen.is_none() && args.files.is_empty() {
        return Err(format!("need --listen ADDR or telemetry files\n{USAGE}"));
    }
    if args.listen.is_some() && !args.files.is_empty() {
        return Err(format!("--listen and replay files are exclusive\n{USAGE}"));
    }
    Ok(args)
}

/// The human console view: cluster roll-up headline plus a per-node table.
fn render(cluster: &ClusterState, top: usize) -> String {
    use std::fmt::Write as _;
    let r = cluster.rollup(top);
    let g = |k: &str| r.get(k).and_then(Json::as_u64).unwrap_or(0);
    let f = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "son-top | {} nodes ({} members, {} departed) | {} snapshots ({} lost, {} dup) \
         | stale {} | restarts {}",
        g("nodes"),
        g("members"),
        g("departed"),
        g("snapshots"),
        g("lost"),
        g("dup"),
        g("stale"),
        g("restarts"),
    );
    let _ = writeln!(
        out,
        "delivery {:.4} ({}/{}) | drops {} | reroutes {} ({:.2}/s) | p50 {:.2}ms p99 {:.2}ms",
        f("delivery"),
        g("delivered"),
        g("sent"),
        g("drops_total"),
        g("reroutes"),
        f("reroutes_per_s"),
        f("p50_latency_ms"),
        f("p99_latency_ms"),
    );
    let _ = writeln!(
        out,
        "links: {} suspended, {} probing | queue {} | {} flows | footprint {} KiB",
        g("suspended_links"),
        g("probing_links"),
        g("queue_depth"),
        g("flows"),
        g("footprint_bytes") / 1024,
    );
    let _ = writeln!(
        out,
        "{:>5} {:>8} {:>6} {:>5} {:>5} {:>8} {:>7} {:>6} {:>9}",
        "node", "seq", "lost", "dup", "rst", "queue", "links", "flows", "uptime_s"
    );
    for (&id, ns) in cluster.nodes() {
        let down = ns
            .latest
            .health
            .links
            .iter()
            .filter(|l| l.suspended)
            .count();
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>6} {:>5} {:>5} {:>8} {:>3}/{:<3} {:>6} {:>9.1}",
            id,
            ns.latest.seq,
            ns.lost,
            ns.dup,
            ns.latest.restarts,
            ns.latest.health.queue_depth,
            ns.latest.health.links.len() - down,
            ns.latest.health.links.len(),
            ns.latest.health.flows,
            ns.latest.uptime_ns as f64 / 1e9,
        );
    }
    for key in ["hot_links", "hot_flows"] {
        if let Some(items) = r.get(key).and_then(Json::as_arr) {
            if !items.is_empty() {
                let _ = writeln!(out, "{key}:");
                for item in items {
                    let _ = writeln!(out, "  {}", item.to_json());
                }
            }
        }
    }
    out
}

fn emit(cluster: &ClusterState, args: &Args, live: bool) {
    if args.json {
        println!("{}", cluster.rollup(args.top).to_json());
    } else {
        if live {
            // ANSI clear + home: refresh in place like top(1).
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render(cluster, args.top));
    }
}

fn replay(args: &Args) -> Result<ClusterState, String> {
    let mut cluster = ClusterState::new();
    for path in &args.files {
        let mut text = String::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("read {path}: {e}"))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            cluster.ingest_line(line);
        }
    }
    Ok(cluster)
}

fn live(args: &Args) -> Result<ClusterState, String> {
    let addr = args.listen.as_deref().expect("live mode has --listen");
    let socket = std::net::UdpSocket::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    socket
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking: {e}"))?;
    let mut record = match &args.record {
        Some(path) => Some(std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?),
        None => None,
    };
    let mut cluster = ClusterState::new();
    let started = Instant::now();
    let mut next_render = Instant::now() + Duration::from_millis(args.interval_ms);
    let mut buf = vec![0u8; 65_536];
    loop {
        let mut idle = true;
        for _ in 0..256 {
            match socket.recv_from(&mut buf) {
                Ok((n, _)) => {
                    idle = false;
                    let frame = &buf[..n];
                    if let Some(rec) = record.as_mut() {
                        if let Ok(snap) = TelemetrySnapshot::decode(frame) {
                            use std::io::Write as _;
                            let _ = writeln!(rec, "{}", snap.to_row().to_json());
                        }
                    }
                    cluster.ingest_bytes(frame);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
        let done = args
            .for_ms
            .is_some_and(|ms| started.elapsed() >= Duration::from_millis(ms));
        if done {
            return Ok(cluster);
        }
        if Instant::now() >= next_render {
            if args.once && args.for_ms.is_none() {
                return Ok(cluster);
            }
            emit(&cluster, args, true);
            next_render += Duration::from_millis(args.interval_ms);
        }
        if idle {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let cluster = if args.listen.is_some() {
        live(&args)?
    } else {
        replay(&args)?
    };
    emit(&cluster, &args, false);
    if let Some(gate) = &args.gate {
        let breaches = gate.breaches(&cluster.rollup(args.top));
        if !breaches.is_empty() {
            for b in &breaches {
                eprintln!("son-top: SLO breach: {b}");
            }
            return Ok(false);
        }
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("son-top: {e}");
            ExitCode::FAILURE
        }
    }
}
