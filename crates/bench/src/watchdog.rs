//! Shared runner for the watchdog fault-injection campaigns.
//!
//! One [`WatchdogRun`] builds the continental-US overlay, schedules a
//! deterministic [`Campaign`] of faults over it, applies the campaign's
//! compromised-node windows at the overlay level, drives a CBR flow across
//! the country, and reports the fraction of packets delivered within a
//! one-way deadline — the metric `exp_watchdog` compares watchdog-on vs
//! watchdog-off. Used by the experiment binary, the smoke gate in
//! `scripts/check.sh`, and the regression tests, so all three agree on what
//! a campaign is.

use son_netsim::scenario::{continental_us, Campaign, Scenario, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_obs::watch::{WatchEvent, WatchKind};
use son_obs::Registry;
use son_overlay::adversary::Behavior;
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::watch::WatchConfig;
use son_overlay::{Destination, FlowSpec, NodeConfig, OverlayAddr, OverlayHandle, Wire};
use son_topo::NodeId;

use crate::{gather_registry, gather_watch, RX_PORT, TX_PORT};

/// How a campaign is built, once the deployment it will torment exists.
/// Receives the underlay scenario, the built overlay, and the per-node city
/// placement so it can aim faults at the flow's actual route.
pub type CampaignBuilder = fn(&Scenario, &OverlayHandle, &RunGeometry) -> Campaign;

/// The fixed geometry every campaign run shares: the measured flow crosses
/// the continental US, NYC to LA.
#[derive(Debug, Clone)]
pub struct RunGeometry {
    /// Overlay node of the sender (NYC).
    pub src: NodeId,
    /// Overlay node of the receiver (LA).
    pub dst: NodeId,
    /// Overlay nodes of the flow's initial route, in order (src..=dst).
    pub route: Vec<NodeId>,
    /// Overlay edges of the flow's initial route, in order.
    pub route_edges: Vec<son_topo::EdgeId>,
}

/// Configuration of one campaign run.
#[derive(Debug, Clone)]
pub struct WatchdogRun {
    /// Tag for exports and tables.
    pub label: String,
    /// Master seed (drives the simulator; the campaign carries its own).
    pub seed: u64,
    /// Watchdog configuration; `None` runs the control (watchdog off).
    pub watch: Option<WatchConfig>,
    /// Builds the fault schedule for this run.
    pub build: CampaignBuilder,
    /// Virtual-time horizon.
    pub run_for: SimDuration,
    /// One-way deadline for the delivered-within-deadline metric.
    pub deadline: SimDuration,
    /// CBR packets to send.
    pub count: u64,
    /// CBR packet interval.
    pub interval: SimDuration,
    /// Event-engine shards (1 = sequential; >1 runs the conservative
    /// parallel core, bit-identical to sequential).
    pub shards: usize,
}

impl WatchdogRun {
    /// A run over `build` with the defaults the experiment matrix uses.
    #[must_use]
    pub fn new(label: impl Into<String>, seed: u64, build: CampaignBuilder) -> Self {
        WatchdogRun {
            label: label.into(),
            seed,
            watch: None,
            build,
            run_for: SimDuration::from_secs(30),
            deadline: SimDuration::from_millis(250),
            count: 2500,
            interval: SimDuration::from_millis(10),
            shards: 1,
        }
    }

    /// Enables the watchdog with `config`.
    #[must_use]
    pub fn with_watch(mut self, config: WatchConfig) -> Self {
        self.watch = Some(config);
        self
    }

    /// Runs the campaign on the sharded event engine.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Executes the run.
    #[must_use]
    pub fn run(self) -> WatchdogOutcome {
        let sc = continental_us(DEFAULT_CONVERGENCE);
        let (topo, cities) = continental_overlay(&sc);
        let find = |name: &str| NodeId(cities.iter().position(|&c| c == sc.city(name)).unwrap());
        let (src, dst) = (find("NYC"), find("LA"));
        let path = son_topo::shortest_path(&topo, src, dst).expect("route");
        let geometry = RunGeometry {
            src,
            dst,
            route: path.nodes.clone(),
            route_edges: path.edges,
        };

        let mut sim: Simulation<Wire> = Simulation::new(self.seed);
        sim.set_underlay(sc.underlay.clone());
        let node_config = NodeConfig {
            trace_sample: 16,
            watch: self.watch.clone(),
            ..NodeConfig::default()
        };
        let overlay = OverlayBuilder::new(topo)
            .place_in_cities(cities)
            .node_config(node_config)
            .build(&mut sim);

        let campaign = (self.build)(&sc, &overlay, &geometry);
        campaign.schedule_into(&mut sim);

        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(dst),
            port: RX_PORT,
            joins: vec![],
            flows: vec![],
        }));
        let tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(src),
            port: TX_PORT,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(dst, RX_PORT)),
                spec: FlowSpec::reliable(),
                workload: Workload::Cbr {
                    size: 1000,
                    interval: self.interval,
                    count: self.count,
                    start: SimTime::from_millis(500),
                },
            }],
        }));

        if self.shards > 1 {
            let mut plan = overlay.shard_plan(self.shards, sim.process_count());
            overlay.colocate(&mut plan, rx, dst);
            overlay.colocate(&mut plan, tx, src);
            sim.set_shard_plan(Some(plan));
        }

        // Apply the campaign's compromise windows on a fine cadence: the
        // simulator has no notion of overlay adversaries, so the harness
        // toggles forwarding behavior as windows open and close.
        let windows = campaign.blackhole_windows.clone();
        let mut applied = vec![false; windows.len()];
        let until = SimTime::ZERO + self.run_for;
        sim.run_with_cadence(until, SimDuration::from_millis(100), |sim, at, _wall| {
            for (i, w) in windows.iter().enumerate() {
                let inside = at >= w.start && at < w.end;
                if inside != applied[i] {
                    applied[i] = inside;
                    let behavior = if inside {
                        Behavior::Blackhole
                    } else {
                        Behavior::Correct
                    };
                    if let Some(n) = sim.proc_mut::<OverlayNode>(overlay.daemon(NodeId(w.node))) {
                        n.set_behavior(behavior);
                    }
                }
            }
        });

        let sent = sim.proc_ref::<ClientProcess>(tx).expect("sender").sent(1);
        let recv = sim
            .proc_ref::<ClientProcess>(rx)
            .expect("receiver")
            .recv
            .values()
            .next()
            .cloned()
            .unwrap_or_default();
        let within_deadline = recv.within_deadline(self.deadline);
        let watch_events = gather_watch(&sim, &overlay);
        let registry = gather_registry(&sim, &overlay);
        let deliveries = recv
            .arrivals
            .iter()
            .zip(&recv.latencies_ms)
            .map(|(&(at, _), &lat_ms)| (at, lat_ms))
            .collect();
        WatchdogOutcome {
            label: self.label,
            watch_enabled: self.watch.is_some(),
            sent,
            received: recv.received,
            within_deadline,
            deliveries,
            watch_events,
            registry,
            fingerprint: sim.fingerprint(),
        }
    }
}

/// The result of one campaign run.
#[derive(Debug)]
pub struct WatchdogOutcome {
    /// The run's tag.
    pub label: String,
    /// Whether the watchdog was on.
    pub watch_enabled: bool,
    /// CBR packets the sender emitted.
    pub sent: u64,
    /// Packets delivered.
    pub received: u64,
    /// Packets delivered within the run's deadline.
    pub within_deadline: u64,
    /// Every delivery as (arrival time, one-way latency ms), in arrival
    /// order — lets tests and reports attribute lateness to specific fault
    /// episodes instead of judging only the run-total.
    pub deliveries: Vec<(SimTime, f64)>,
    /// Every daemon's watchdog audit events, merged and time-sorted.
    pub watch_events: Vec<WatchEvent>,
    /// Experiment-wide metrics registry.
    pub registry: Registry,
    /// The simulator fingerprint (same seed ⇒ identical).
    pub fingerprint: u64,
}

impl WatchdogOutcome {
    /// Fraction of sent packets delivered within the deadline.
    #[must_use]
    pub fn deadline_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.within_deadline as f64 / self.sent as f64
        }
    }

    /// Counts audit events matching `pred`.
    #[must_use]
    pub fn count_events(&self, pred: impl Fn(&WatchKind) -> bool) -> u64 {
        self.watch_events.iter().filter(|e| pred(&e.kind)).count() as u64
    }

    /// Link suspensions across all daemons.
    #[must_use]
    pub fn suspensions(&self) -> u64 {
        self.count_events(|k| matches!(k, WatchKind::LinkSuspended { .. }))
    }

    /// Link readmissions across all daemons.
    #[must_use]
    pub fn readmissions(&self) -> u64 {
        self.count_events(|k| matches!(k, WatchKind::LinkReadmitted))
    }
}

/// The window inside which every campaign schedules its faults: after
/// routing has settled, well before the horizon so recovery is measurable.
#[must_use]
pub fn fault_window() -> (SimTime, SimTime) {
    (SimTime::from_secs(4), SimTime::from_secs(20))
}

/// The all-healthy control campaign: no faults at all. The watchdog must
/// stay silent — any suspension here is a false positive.
#[must_use]
pub fn control_campaign(_sc: &Scenario, _ov: &OverlayHandle, _g: &RunGeometry) -> Campaign {
    Campaign::new("control", 0xC0)
}

/// Link-flap campaign: every provider pipe of the flow's first-hop overlay
/// link flaps down and up on a fixed 2 s cycle. Without the watchdog, routes
/// flap back onto the link each time it reappears and eat the next outage;
/// with it, accumulated strikes suspend the link and traffic stays on the
/// stable detour until the hold-down passes.
#[must_use]
pub fn flap_campaign(_sc: &Scenario, ov: &OverlayHandle, g: &RunGeometry) -> Campaign {
    let mut c = Campaign::new("flaps", 0xF1);
    if let Some(pairs) = ov.edge_pipes.get(&g.route_edges[0]) {
        let pipes: Vec<_> = pairs.iter().flat_map(|&(ab, ba)| [ab, ba]).collect();
        for k in 0..7u64 {
            c.pipe_outage_at(
                &pipes,
                SimTime::from_secs(4) + SimDuration::from_secs(2 * k),
                SimDuration::from_millis(1000),
            );
        }
    }
    c
}

/// Burst-loss campaign: both directions of the flow's first two overlay
/// hops degrade together in two long heavy-loss episodes. Loss this heavy
/// makes the hello stream miss often enough that the degraded links'
/// advertised state oscillates for the whole burst; without the watchdog
/// every oscillation recomputes routes — onto and back off the lossy hop —
/// and the flow keeps paying retransmission tax, while flap damping defers
/// the churn and holds the flow on its detour. The episodes are
/// deterministic ([`Campaign::pipe_loss_at`]) so both directions of a link
/// degrade at once — one-sided loss lets acks through and halves the pain.
#[must_use]
pub fn burst_loss_campaign(_sc: &Scenario, ov: &OverlayHandle, g: &RunGeometry) -> Campaign {
    let mut c = Campaign::new("burst_loss", 0xB2);
    let mut pipes = Vec::new();
    for edge in g.route_edges.iter().take(2) {
        if let Some(pairs) = ov.edge_pipes.get(edge) {
            for &(ab, ba) in pairs {
                pipes.push(ab);
                pipes.push(ba);
            }
        }
    }
    let loss = son_netsim::loss::LossConfig::Bernoulli { p: 0.75 };
    let restore = son_netsim::loss::LossConfig::Perfect;
    for start_ms in [5_000, 9_500] {
        c.pipe_loss_at(
            &pipes,
            SimTime::from_millis(start_ms),
            SimDuration::from_millis(3_000),
            loss.clone(),
            restore.clone(),
        );
    }
    c
}

/// Silent-blackhole campaign: the first transit node of the flow's route is
/// compromised for a long window — control-plane-alive, data-plane-dead.
#[must_use]
pub fn blackhole_campaign(_sc: &Scenario, _ov: &OverlayHandle, g: &RunGeometry) -> Campaign {
    let mut c = Campaign::new("blackhole", 0xBB);
    let victim = g.route.get(1).copied().unwrap_or(g.src);
    c.compromise(&[victim.0], (SimTime::from_secs(4), SimTime::from_secs(16)));
    c
}

/// Router-failure campaign: the route's first transit daemon flaps —
/// repeated crash/restart cycles ([`Campaign::process_flaps`]), a router
/// that reboot-loops instead of dying cleanly. The victim sits on the
/// route's strongly-preferred first hop, so after every restart the
/// fleet's routes converge straight back onto it just in time to eat the
/// next crash, stranding each cycle's in-flight packets on the dead link
/// until the daemon resurrects. With the watchdog on, LSA flap damping
/// defers the oscillating origins' re-advertisements and traffic holds the
/// stable detour through the remaining cycles.
///
/// (The fault must hit a *strongly-preferred* element: when a transit hop
/// with a near-equal-cost detour fails once, the hello-measured loss
/// penalty exiles it from the route for the rest of the run and later
/// cycles are free for both sides — no room for the watchdog to help.)
#[must_use]
pub fn router_failure_campaign(_sc: &Scenario, ov: &OverlayHandle, g: &RunGeometry) -> Campaign {
    let mut c = Campaign::new("router_failures", 0xD4);
    let victim = g.route.get(1).copied().unwrap_or(g.src);
    c.process_flaps(
        &[ov.daemon(victim)],
        SimTime::from_secs(4),
        6,
        SimDuration::from_millis(1_000),
        SimDuration::from_millis(1_000),
    );
    c
}

/// The standard campaign matrix, in presentation order.
#[must_use]
pub fn campaign_matrix() -> Vec<(&'static str, CampaignBuilder)> {
    vec![
        ("control", control_campaign as CampaignBuilder),
        ("flaps", flap_campaign),
        ("burst_loss", burst_loss_campaign),
        ("blackhole", blackhole_campaign),
        ("router_failures", router_failure_campaign),
    ]
}
