//! Shared runner for the membership-churn campaigns.
//!
//! One [`ChurnRun`] builds a chorded-ring overlay, schedules a deterministic
//! churn [`Campaign`] (graceful leaves, crashes, flash restarts), drives
//! best-effort CBR flows between churn-protected endpoints, and samples two
//! robustness signals on a fixed cadence:
//!
//! * **Convergence lag** — at each sample, if any expected-up node either
//!   cannot route to another expected-up node or (with membership on) holds
//!   a membership view that disagrees with the expected live set, the fleet
//!   is not converged; the lag is the time since the last membership event.
//!   The run-wide maximum is the bound the invariant tests lock.
//! * **Survivor state** — one churn-protected probe node's LSDB size and
//!   memory footprint over time, so the leak tests can assert that departed
//!   members are actually evicted instead of accumulating forever.
//!
//! Used by `exp_churn`, the smoke gate in `scripts/check.sh`, and the
//! regression tests, so all three agree on what a churn campaign is.
//!
//! Route convergence is judged on each node's *belief* (its shortest-path
//! tree offers a next hop), which is exactly what self-stabilization must
//! restore; ground-truth loss shows up in the delivery ratio instead.

use std::collections::HashMap;

use son_netsim::scenario::Campaign;
use son_netsim::sim::{ScenarioEvent, Simulation};
use son_netsim::time::{SimDuration, SimTime};
use son_obs::Registry;
use son_overlay::builder::OverlayBuilder;
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::{OverlayNode, TimerKey};
use son_overlay::state::membership::MembershipConfig;
use son_overlay::{Destination, FlowSpec, NodeConfig, OverlayAddr, Wire};
use son_topo::NodeId;

use crate::{gather_registry, ring_with_chords, RX_PORT, TX_PORT};

/// The timer token a campaign poke delivers to trigger a graceful leave.
/// The simulator stays ignorant of overlay timer encodings; the harness is
/// the one place that bridges the two.
pub const LEAVE_TOKEN: u64 = TimerKey::GracefulLeave.encode();

/// The churn shape a run schedules over the churnable (non-endpoint) nodes.
#[derive(Debug, Clone)]
pub enum ChurnPattern {
    /// No faults: the all-healthy control.
    None,
    /// Randomized sustained churn inside the fault window: `events` cycles,
    /// each picking a churnable node, optionally poking a graceful leave,
    /// crashing it, and restarting it after `downtime`.
    Sustained {
        /// Churn cycles to draw.
        events: usize,
        /// How long each churned node stays down.
        downtime: SimDuration,
        /// Poke a graceful leave before each crash (the "on" discipline can
        /// reroute during the grace window; without the poke the crash is
        /// only discovered by hello loss).
        graceful: bool,
    },
    /// One node crashes at `at`; restarts after `downtime` if given.
    CrashOne {
        /// Overlay ordinal of the victim.
        node: usize,
        /// Crash instant.
        at: SimTime,
        /// Downtime before restart; `None` is a permanent departure.
        downtime: Option<SimDuration>,
    },
    /// The given ordinals leave gracefully at `at` (poke, then crash after
    /// the grace), restarting after `downtime` if given.
    Leave {
        /// Overlay ordinals that leave.
        nodes: Vec<usize>,
        /// Leave instant.
        at: SimTime,
        /// Downtime before restart; `None` is a permanent departure.
        downtime: Option<SimDuration>,
    },
    /// A correlated wave: all the given ordinals crash at `down_at` and all
    /// rejoin at `up_at`.
    Flash {
        /// Overlay ordinals in the wave.
        nodes: Vec<usize>,
        /// Wave departure instant.
        down_at: SimTime,
        /// Wave return instant.
        up_at: SimTime,
    },
}

/// Configuration of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// Tag for exports and tables.
    pub label: String,
    /// Master seed (drives the simulator; the campaign forks its own).
    pub seed: u64,
    /// Overlay size (chorded ring).
    pub nodes: usize,
    /// Membership maintenance configuration; `None` runs the control
    /// (no join/leave protocol, no eviction — crashes are only ever seen
    /// as link loss).
    pub membership: Option<MembershipConfig>,
    /// The churn shape.
    pub pattern: ChurnPattern,
    /// Virtual-time horizon.
    pub run_for: SimDuration,
    /// CBR packets per flow.
    pub count: u64,
    /// CBR packet interval.
    pub interval: SimDuration,
    /// Measured flows (endpoints are excluded from churn).
    pub flows: usize,
    /// Chord spacing of the ring topology (smaller = denser; the heavy
    /// permanent-leave tests use 1 so the survivor graph stays connected).
    pub chord_every: usize,
    /// Event-engine shards (1 = sequential; >1 runs the conservative
    /// parallel core, bit-identical to sequential).
    pub shards: usize,
}

/// The experiment's campaign matrix: named patterns over churnable
/// ordinals valid at both smoke (n = 32) and full (n = 64) scale.
#[must_use]
pub fn campaign_matrix() -> Vec<(&'static str, ChurnPattern)> {
    vec![
        (
            "sustained-graceful",
            ChurnPattern::Sustained {
                events: 12,
                downtime: SimDuration::from_secs(2),
                graceful: true,
            },
        ),
        (
            "sustained-crash",
            ChurnPattern::Sustained {
                events: 12,
                downtime: SimDuration::from_secs(2),
                graceful: false,
            },
        ),
        (
            "flash-wave",
            ChurnPattern::Flash {
                nodes: vec![10, 11, 12, 13],
                down_at: SimTime::from_secs(6),
                up_at: SimTime::from_secs(8),
            },
        ),
        (
            "leave-permanent",
            ChurnPattern::Leave {
                nodes: vec![17, 18],
                at: SimTime::from_secs(6),
                downtime: None,
            },
        ),
    ]
}

/// The fault window sustained churn draws inside: late enough that the
/// fleet has converged from cold start, early enough that the last cycle
/// completes well before the horizon.
#[must_use]
pub fn fault_window() -> (SimTime, SimTime) {
    (SimTime::from_secs(4), SimTime::from_secs(20))
}

impl ChurnRun {
    /// A run with the defaults the experiment matrix uses.
    #[must_use]
    pub fn new(label: impl Into<String>, seed: u64, pattern: ChurnPattern) -> Self {
        ChurnRun {
            label: label.into(),
            seed,
            nodes: 64,
            membership: Some(MembershipConfig::default()),
            pattern,
            run_for: SimDuration::from_secs(30),
            count: 2400,
            interval: SimDuration::from_millis(10),
            flows: 4,
            chord_every: 4,
            shards: 1,
        }
    }

    /// Disables membership maintenance (the control row).
    #[must_use]
    pub fn without_membership(mut self) -> Self {
        self.membership = None;
        self
    }

    /// Overrides the overlay size.
    #[must_use]
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Runs the campaign on the sharded event engine.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overlay ordinals of the measured flow endpoints — excluded from
    /// churn so the delivery ratio judges the network, not dead senders.
    #[must_use]
    pub fn protected(&self) -> Vec<usize> {
        let n = self.nodes;
        let mut out = Vec::new();
        for k in 0..self.flows {
            let a = k * n / self.flows;
            let b = (a + n / 2 + 3) % n;
            out.push(a);
            out.push(b);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Builds the campaign for this run against the built overlay.
    fn build_campaign(&self, overlay: &son_overlay::OverlayHandle) -> Campaign {
        let protected = self.protected();
        let churnable: Vec<_> = (0..self.nodes)
            .filter(|i| !protected.contains(i))
            .map(|i| overlay.daemon(NodeId(i)))
            .collect();
        let grace = SimDuration::from_millis(250);
        let mut campaign = Campaign::new(format!("churn:{}", self.label), self.seed);
        match &self.pattern {
            ChurnPattern::None => {}
            ChurnPattern::Sustained {
                events,
                downtime,
                graceful,
            } => {
                campaign.sustained_churn(
                    &churnable,
                    fault_window(),
                    *events,
                    *downtime,
                    grace,
                    graceful.then_some(LEAVE_TOKEN),
                );
            }
            ChurnPattern::CrashOne { node, at, downtime } => {
                campaign.process_crash_at(&[overlay.daemon(NodeId(*node))], *at, *downtime);
            }
            ChurnPattern::Leave {
                nodes,
                at,
                downtime,
            } => {
                let pids: Vec<_> = nodes.iter().map(|&i| overlay.daemon(NodeId(i))).collect();
                campaign.graceful_leave_at(&pids, *at, grace, *downtime, LEAVE_TOKEN);
            }
            ChurnPattern::Flash {
                nodes,
                down_at,
                up_at,
            } => {
                let pids: Vec<_> = nodes.iter().map(|&i| overlay.daemon(NodeId(i))).collect();
                campaign.flash_restart(&pids, *down_at, *up_at);
            }
        }
        campaign
    }

    /// Executes the run.
    #[must_use]
    pub fn run(self) -> ChurnOutcome {
        let topo = ring_with_chords(self.nodes, 5.0, self.chord_every);
        let mut sim: Simulation<Wire> = Simulation::new(self.seed);
        let overlay = OverlayBuilder::new(topo)
            .node_config(NodeConfig {
                membership: self.membership,
                ..NodeConfig::default()
            })
            .build(&mut sim);

        let campaign = self.build_campaign(&overlay);
        campaign.schedule_into(&mut sim);

        // The expected-up timeline, derived from the schedule itself. A
        // graceful poke moves the node out of the expected set at the poke
        // (survivors should mark it Left as the announcement floods); a
        // crash does the same at the crash; a restart moves it back in.
        let ordinal_of: HashMap<usize, usize> = overlay
            .daemons
            .iter()
            .enumerate()
            .map(|(node, pid)| (pid.0, node))
            .collect();
        let mut transitions: Vec<(SimTime, usize, bool)> = campaign
            .events()
            .iter()
            .filter_map(|(at, ev)| match ev {
                ScenarioEvent::PokeProcess(pid, _) => Some((*at, ordinal_of[&pid.0], false)),
                ScenarioEvent::CrashProcess(pid) => Some((*at, ordinal_of[&pid.0], false)),
                ScenarioEvent::RestartProcess(pid) => Some((*at, ordinal_of[&pid.0], true)),
                _ => None,
            })
            .collect();
        transitions.sort_by_key(|&(at, node, _)| (at, node));
        let event_count = transitions.len();

        // Measured flows between protected endpoints.
        let n = self.nodes;
        let mut rxs = Vec::new();
        let mut txs = Vec::new();
        let mut clients = Vec::new();
        for k in 0..self.flows {
            let a = k * n / self.flows;
            let b = (a + n / 2 + 3) % n;
            let rx = sim.add_process(ClientProcess::new(ClientConfig {
                daemon: overlay.daemon(NodeId(b)),
                port: RX_PORT + k as u16,
                joins: vec![],
                flows: vec![],
            }));
            let tx = sim.add_process(ClientProcess::new(ClientConfig {
                daemon: overlay.daemon(NodeId(a)),
                port: TX_PORT + k as u16,
                joins: vec![],
                flows: vec![ClientFlow {
                    local_flow: 1,
                    dst: Destination::Unicast(OverlayAddr::new(NodeId(b), RX_PORT + k as u16)),
                    spec: FlowSpec::best_effort(),
                    workload: Workload::Cbr {
                        size: 1000,
                        interval: self.interval,
                        count: self.count,
                        start: SimTime::from_millis(500),
                    },
                }],
            }));
            rxs.push(rx);
            txs.push(tx);
            clients.push((rx, NodeId(b)));
            clients.push((tx, NodeId(a)));
        }

        if self.shards > 1 {
            let mut plan = overlay.shard_plan(self.shards, sim.process_count());
            for &(client, node) in &clients {
                overlay.colocate(&mut plan, client, node);
            }
            sim.set_shard_plan(Some(plan));
        }

        let probe = NodeId(self.protected()[0]);
        let membership_on = self.membership.is_some();
        let mut expected_up = vec![true; n];
        let mut next_transition = 0usize;
        let mut last_event: Option<SimTime> = None;
        let mut max_lag = SimDuration::ZERO;
        let mut footprint_series: Vec<(SimTime, usize)> = Vec::new();
        let mut lsdb_series: Vec<(SimTime, usize)> = Vec::new();

        let until = SimTime::ZERO + self.run_for;
        sim.run_with_cadence(until, SimDuration::from_millis(100), |sim, at, _wall| {
            while next_transition < transitions.len() && transitions[next_transition].0 <= at {
                let (t, node, up) = transitions[next_transition];
                if expected_up[node] != up {
                    expected_up[node] = up;
                    last_event = Some(t);
                } else if up {
                    // A restart after a poke+crash pair still perturbs the
                    // fleet even though the expected set already flipped.
                    last_event = Some(t);
                }
                next_transition += 1;
            }
            let live: Vec<NodeId> = (0..n).filter(|&i| expected_up[i]).map(NodeId).collect();
            let converged = fleet_converged(sim, &overlay, &live, membership_on);
            if !converged {
                if let Some(t0) = last_event {
                    let lag = at - t0;
                    if lag > max_lag {
                        max_lag = lag;
                    }
                }
            }
            if let Some(node) = sim.proc_ref::<OverlayNode>(overlay.daemon(probe)) {
                footprint_series.push((at, node.footprint().total()));
                lsdb_series.push((at, node.connectivity().lsdb_len()));
            }
        });

        // With CHURN_DEBUG set, explain a non-converged horizon: which
        // survivor cannot route where, and whose membership view disagrees.
        if std::env::var("CHURN_DEBUG").is_ok() {
            let live: Vec<NodeId> = (0..n).filter(|&i| expected_up[i]).map(NodeId).collect();
            for &a in &live {
                let node = sim.proc_ref::<OverlayNode>(overlay.daemon(a)).unwrap();
                for &b in &live {
                    if a != b && !node.reaches(b) {
                        eprintln!("DEBUG: {a:?} does not reach {b:?}");
                    }
                }
                if membership_on {
                    let mem = node.membership().unwrap();
                    if mem.up_members() != live {
                        let up = mem.up_members();
                        let missing: Vec<_> = live.iter().filter(|x| !up.contains(x)).collect();
                        let extra: Vec<_> = up.iter().filter(|x| !live.contains(x)).collect();
                        eprintln!("DEBUG: {a:?} view wrong: missing {missing:?} extra {extra:?}");
                    }
                }
            }
        }
        let mut sent = 0u64;
        let mut received = 0u64;
        for &tx in &txs {
            sent += sim.proc_ref::<ClientProcess>(tx).expect("sender").sent(1);
        }
        for &rx in &rxs {
            let recv = sim.proc_ref::<ClientProcess>(rx).expect("receiver");
            received += recv.recv.values().map(|f| f.received).sum::<u64>();
        }
        let registry = gather_registry(&sim, &overlay);
        ChurnOutcome {
            label: self.label,
            membership_enabled: membership_on,
            sent,
            received,
            events: event_count,
            max_lag,
            evictions: registry.counter_total("member_evictions"),
            graceful_leaves: registry.counter_total("graceful_leaves"),
            footprint_series,
            lsdb_series,
            registry,
            fingerprint: sim.fingerprint(),
        }
    }
}

/// Whether every expected-up node can route to every other expected-up node
/// and (with membership on) agrees with the expected live set.
fn fleet_converged(
    sim: &Simulation<Wire>,
    overlay: &son_overlay::OverlayHandle,
    live: &[NodeId],
    membership_on: bool,
) -> bool {
    for &a in live {
        let Some(node) = sim.proc_ref::<OverlayNode>(overlay.daemon(a)) else {
            return false;
        };
        for &b in live {
            if a != b && !node.reaches(b) {
                return false;
            }
        }
        if membership_on {
            let Some(mem) = node.membership() else {
                return false;
            };
            if mem.up_members() != live {
                return false;
            }
        }
    }
    true
}

/// The result of one churn run.
#[derive(Debug)]
pub struct ChurnOutcome {
    /// The run's tag.
    pub label: String,
    /// Whether membership maintenance was on.
    pub membership_enabled: bool,
    /// CBR packets the senders emitted.
    pub sent: u64,
    /// Packets delivered across all flows.
    pub received: u64,
    /// Membership transitions the campaign scheduled.
    pub events: usize,
    /// Worst observed convergence lag: the longest any sample found the
    /// fleet unconverged after the most recent membership event.
    pub max_lag: SimDuration,
    /// Departed-member evictions across the fleet.
    pub evictions: u64,
    /// Graceful-leave announcements across the fleet.
    pub graceful_leaves: u64,
    /// The probe survivor's total memory footprint over time.
    pub footprint_series: Vec<(SimTime, usize)>,
    /// The probe survivor's LSDB size over time.
    pub lsdb_series: Vec<(SimTime, usize)>,
    /// Experiment-wide metrics registry.
    pub registry: Registry,
    /// The simulator fingerprint (same seed ⇒ identical).
    pub fingerprint: u64,
}

impl ChurnOutcome {
    /// Fraction of sent packets delivered.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.received as f64 / self.sent as f64
        }
    }

    /// The probe survivor's peak footprint.
    #[must_use]
    pub fn footprint_peak(&self) -> usize {
        self.footprint_series
            .iter()
            .map(|&(_, b)| b)
            .max()
            .unwrap_or(0)
    }

    /// The probe survivor's footprint at the horizon.
    #[must_use]
    pub fn footprint_end(&self) -> usize {
        self.footprint_series.last().map_or(0, |&(_, b)| b)
    }

    /// The probe survivor's LSDB size at the horizon.
    #[must_use]
    pub fn lsdb_end(&self) -> usize {
        self.lsdb_series.last().map_or(0, |&(_, len)| len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_endpoints_cover_all_flows() {
        let run = ChurnRun::new("t", 1, ChurnPattern::None);
        let protected = run.protected();
        assert_eq!(protected.len(), 8, "4 flows, 8 distinct endpoints");
        assert!(protected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn leave_token_is_the_graceful_leave_timer() {
        assert_eq!(TimerKey::decode(LEAVE_TOKEN), Some(TimerKey::GracefulLeave));
    }
}
