//! Shared JSONL-export plumbing for the experiment binaries.
//!
//! Every experiment writes the same way: open a sink per artifact under the
//! obs dir, tag each row with a `run` label so several runs share one file,
//! and finish with the "wrote N rows" banner. The per-artifact exporters
//! ([`export_traces`], [`export_timeseries`], [`export_watch`],
//! [`export_registry`]) are all one call to [`export_rows`] with a
//! different row source — the row-tagging loop lives here exactly once.

use son_obs::trace::TraceEvent;
use son_obs::{registry_rows, Json, JsonlSink, Registry};

/// Tags `row` with `run` as its first key (no-op on non-object rows).
#[must_use]
pub fn tag_run(mut row: Json, run: &str) -> Json {
    if let Json::Obj(pairs) = &mut row {
        pairs.insert(0, ("run".to_owned(), Json::str(run)));
    }
    row
}

/// Writes each row of `rows` into `sink`, tagged with `run`. Every
/// per-artifact exporter funnels through here.
///
/// # Errors
///
/// Propagates the I/O error if a write fails.
pub fn export_rows(
    sink: &mut JsonlSink,
    run: &str,
    rows: impl IntoIterator<Item = Json>,
) -> std::io::Result<()> {
    for row in rows {
        sink.write(&tag_run(row, run))?;
    }
    Ok(())
}

/// Writes one JSONL row per trace event into `sink`, tagging each row with
/// `run`. Schema is documented in `EXPERIMENTS.md`.
///
/// # Errors
///
/// Propagates the I/O error if a write fails.
pub fn export_traces(
    sink: &mut JsonlSink,
    run: &str,
    events: &[TraceEvent],
) -> std::io::Result<()> {
    export_rows(sink, run, events.iter().map(TraceEvent::row))
}

/// Writes the flight recorder's samples into `sink`, tagging each row with
/// `run`. Schema is documented in `EXPERIMENTS.md`.
///
/// # Errors
///
/// Propagates the I/O error if a write fails.
pub fn export_timeseries(sink: &mut JsonlSink, run: &str, rows: &[Json]) -> std::io::Result<()> {
    export_rows(sink, run, rows.iter().cloned())
}

/// Writes one `watch.jsonl` row per watchdog audit event into `sink`,
/// tagging each row with `run`. Schema is documented in `EXPERIMENTS.md`.
///
/// # Errors
///
/// Propagates the I/O error if a write fails.
pub fn export_watch(
    sink: &mut JsonlSink,
    run: &str,
    events: &[son_obs::watch::WatchEvent],
) -> std::io::Result<()> {
    export_rows(
        sink,
        run,
        events.iter().map(son_obs::watch::WatchEvent::row),
    )
}

/// Writes one JSONL row per instrument of `reg` into `sink`, tagging each
/// row with `run` so several runs can share one experiment file. Schema is
/// documented in `EXPERIMENTS.md`.
///
/// # Errors
///
/// Propagates the I/O error if a write fails.
pub fn export_registry(sink: &mut JsonlSink, run: &str, reg: &Registry) -> std::io::Result<()> {
    export_rows(sink, run, registry_rows(reg))
}

/// Writes the profiler's per-stage rows into `sink`, tagged with `run`
/// (`{"run":…,"kind":"perf","stage":…}`; see `EXPERIMENTS.md` E16).
///
/// # Errors
///
/// Propagates the I/O error if a write fails.
pub fn export_perf(
    sink: &mut JsonlSink,
    run: &str,
    perf: &son_obs::PerfRegistry,
) -> std::io::Result<()> {
    export_rows(sink, run, son_obs::perf_rows(perf))
}

/// Creates the JSONL sink for `experiment` under the obs dir, or explains
/// why export is off (an unwritable directory disables export, it does not
/// fail the experiment).
#[must_use]
pub fn obs_sink(experiment: &str) -> Option<JsonlSink> {
    match JsonlSink::for_experiment(experiment) {
        Ok(sink) => Some(sink),
        Err(e) => {
            eprintln!("obs: export disabled ({e})");
            None
        }
    }
}

/// Flushes `sink` and prints the standard "wrote N rows" banner.
pub fn finish_export(sink: JsonlSink) {
    let rows = sink.rows();
    match sink.finish() {
        Ok(path) => println!("obs: wrote {rows} rows to {}", path.display()),
        Err(e) => eprintln!("obs: export failed ({e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_run_prepends_run_key() {
        let row = Json::obj(vec![("kind", Json::str("ts")), ("value", Json::U64(3))]);
        let tagged = tag_run(row, "warm");
        let text = tagged.to_json();
        assert!(
            text.starts_with("{\"run\":\"warm\""),
            "run key must lead: {text}"
        );
        assert_eq!(tagged.get("value").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn tag_run_passes_non_objects_through() {
        let row = Json::U64(9);
        assert_eq!(tag_run(row, "x").as_u64(), Some(9));
    }
}
