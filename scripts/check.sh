#!/usr/bin/env bash
# The local mirror of CI: build, tests, lints, format. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier 1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> shard determinism parity suite (sequential vs --shards {2,4,8})"
cargo test -q -p son-bench --test shard_parity

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> bench smoke"
scripts/bench_smoke.sh

echo "==> trace self-check (exp_fig3 --smoke + son-trace)"
cargo run --release -q -p son-bench --bin exp_fig3 -- --smoke
cargo run --release -q -p son-bench --bin son-trace -- \
    --self-check --limit 1 target/obs/exp_fig3.trace.jsonl

echo "==> watchdog smoke campaign (exp_watchdog --smoke + son-trace --watch-audit)"
cargo run --release -q -p son-bench --bin exp_watchdog -- --smoke
cargo run --release -q -p son-bench --bin son-trace -- \
    --watch-audit target/obs/watch.jsonl

echo "==> churn smoke campaign (exp_churn --smoke: convergence bound + delivery floor)"
cargo run --release -q -p son-bench --bin exp_churn -- --smoke

echo "==> membership join smoke (son-node x5 over 127.0.0.1, joiner via --seed-peer)"
scripts/join_smoke.sh

echo "==> udp loopback smoke (son-node x4 over 127.0.0.1, sim-vs-real parity)"
BENCH_OUT=target/obs/BENCH_udp_smoke.json \
    cargo run --release -q -p son-bench --bin exp_udp_parity -- --smoke
cat target/obs/udp_parity/udp_e1_smoke.result.*.json \
    target/obs/udp_parity/udp_e1_smoke.udp.telemetry.jsonl \
    > target/obs/udp_parity/udp_e1_smoke.merged.jsonl
cargo run --release -q -p son-bench --bin son-trace -- \
    --self-check --limit 1 target/obs/udp_parity/udp_e1_smoke.merged.jsonl

echo "==> son-top SLO gate on the cluster's telemetry stream"
cargo run --release -q -p son-bench --bin son-top -- --json --once \
    --gate 'delivery>=0.9,stale<=2,members>=4' \
    target/obs/udp_parity/udp_e1_smoke.udp.telemetry.jsonl

echo "All checks passed."
