#!/usr/bin/env bash
# Regenerates every experiment of EXPERIMENTS.md (deterministic seeds).
set -euo pipefail
cd "$(dirname "$0")/.."
experiments=(fig3 nm_strikes rerouting overhead multicast intrusion fairness \
             manipulation compound dedup global scada ablation)
for e in "${experiments[@]}"; do
  echo "==================================================================="
  cargo run --release -q -p son-bench --bin "exp_$e"
done
echo "==================================================================="
echo "JSONL exports under target/obs (CI uploads these as the experiment"
echo "artifact; analyze traces with: son-trace target/obs/<exp>.trace.jsonl):"
ls -l target/obs/*.jsonl 2>/dev/null || echo "  (none written)"
