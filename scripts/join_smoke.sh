#!/usr/bin/env bash
# Membership join smoke: a 4-process UDP loopback ring runs from the shared
# epoch; a fifth daemon starts 600ms later and admits itself through
# `--seed-peer`. Gates: the joiner must end with the full membership view
# and full routes, and the founders must have admitted it.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/obs/join_smoke
mkdir -p "$OUT"

# One scenario for the founders; the joiner's copy differs only in
# run_for_ms so every process stops at the same wall-clock horizon.
cat > "$OUT/scenario.json" <<'JSON'
{"name":"join_smoke","topology":"ring","nodes":5,"hop_ms":2.0,"loss":0.0,"spec":"best_effort","from":0,"to":2,"count":200,"size":120,"interval_us":10000,"start_ms":800,"run_for_ms":4000,"seed":9,"trace_sample":0,"watch":false,"membership":true}
JSON
sed 's/"run_for_ms":4000/"run_for_ms":3400/' "$OUT/scenario.json" \
    > "$OUT/scenario_joiner.json"

EPOCH=$(( ($(date +%s) + 1) * 1000000000 ))
BASE=47000
PIDS=()
for i in 0 1 2 3; do
  ./target/release/son-node --scenario "$OUT/scenario.json" --node "$i" \
      --epoch "$EPOCH" --base-port "$BASE" --out "$OUT/node$i.json" &
  PIDS+=($!)
done
# The joiner starts 600ms into the run and joins through ring neighbor 3.
./target/release/son-node --scenario "$OUT/scenario_joiner.json" --node 4 \
    --epoch $((EPOCH + 600000000)) --base-port "$BASE" --seed-peer 3 \
    --out "$OUT/node4.json" &
PIDS+=($!)
for pid in "${PIDS[@]}"; do wait "$pid"; done

fail() { echo "join smoke: $1"; cat "$2"; exit 1; }
grep -q '"members":5' "$OUT/node4.json" \
    || fail "joiner did not see full membership" "$OUT/node4.json"
grep -q '"routes_reachable":5' "$OUT/node4.json" \
    || fail "joiner did not reach full routes" "$OUT/node4.json"
grep -q '"members":5' "$OUT/node0.json" \
    || fail "founders did not admit the joiner" "$OUT/node0.json"
echo "join smoke: joiner admitted via --seed-peer, full routes on 5 nodes."
