#!/usr/bin/env bash
# Smoke-runs the data-plane benchmark suite: every criterion group in quick
# mode plus the exp_throughput and exp_scale macro-benchmarks in --smoke
# mode. Catches benchmarks that no longer compile or panic without paying
# full-measurement time. The smoke runs write their rows to scratch files so
# the committed BENCH_forwarding.json / BENCH_scale.json (full-run results)
# are left untouched — but the smoke results are gated against the committed
# baselines: >30% throughput regression, >5% tracing or profiler overhead,
# superlinear per-node memory growth, and >10% per-node memory regression
# all fail the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench --workspace (smoke: --test)"
cargo bench --workspace -- --test

echo "==> exp_throughput --smoke"
SMOKE_OUT=target/obs/BENCH_forwarding.smoke.json
BENCH_OUT="$SMOKE_OUT" \
    cargo run --release -p son-bench --bin exp_throughput -- --smoke

# Throughput regression guard: extract sim_pkts_per_wall_s from the smoke
# rows of the fresh run and of the committed baseline, and fail if the
# fresh figure fell more than 30% below the baseline. (Wall-clock noise on
# shared runners is why the bar is this generous; a real fast-path
# regression shows up far larger.)
extract_smoke_pps() {
    grep '"bench":"exp_throughput"' "$1" | grep '"mode":"smoke"' \
        | sed -n 's/.*"sim_pkts_per_wall_s":\([0-9.eE+-]*\).*/\1/p' | tail -1
}
baseline=$(extract_smoke_pps BENCH_forwarding.json)
fresh=$(extract_smoke_pps "$SMOKE_OUT")
if [ -z "$baseline" ]; then
    echo "ERROR: no smoke-mode baseline row in BENCH_forwarding.json" >&2
    echo "(regenerate: cargo run --release -p son-bench --bin exp_throughput," >&2
    echo " then append the smoke row from a BENCH_OUT=... --smoke run)" >&2
    exit 1
fi
if [ -z "$fresh" ]; then
    echo "ERROR: smoke run wrote no exp_throughput row to $SMOKE_OUT" >&2
    exit 1
fi
echo "smoke throughput: $fresh sim pkts/wall s (baseline $baseline)"
awk -v fresh="$fresh" -v base="$baseline" 'BEGIN {
    floor = base * 0.70;
    if (fresh < floor) {
        printf "ERROR: smoke throughput %.0f fell >30%% below the committed baseline %.0f (floor %.0f)\n", fresh, base, floor;
        exit 1;
    }
    printf "throughput guard passed (floor %.0f)\n", floor;
}'

# Tracing overhead guard: the same smoke run re-executes the workload with
# 1-in-64 trace sampling AND per-epoch telemetry snapshot emission on and
# writes a mode:"traced" row (the row carries "telemetry":true); the whole
# observability stack — sampling, watchdog, telemetry plane — must cost at
# most 5% of forwarding throughput against the in-run untraced figure (same
# machine, same moment — wall-clock noise mostly cancels).
extract_traced_pps() {
    grep '"bench":"exp_throughput"' "$1" | grep '"mode":"traced"' \
        | sed -n 's/.*"sim_pkts_per_wall_s":\([0-9.eE+-]*\).*/\1/p' | tail -1
}
traced=$(extract_traced_pps "$SMOKE_OUT")
if [ -z "$traced" ]; then
    echo "ERROR: smoke run wrote no traced-mode exp_throughput row to $SMOKE_OUT" >&2
    exit 1
fi
echo "traced throughput: $traced sim pkts/wall s (untraced $fresh)"
awk -v traced="$traced" -v base="$fresh" 'BEGIN {
    floor = base * 0.95;
    if (traced < floor) {
        printf "ERROR: traced throughput %.0f is >5%% below the untraced run %.0f (floor %.0f)\n", traced, base, floor;
        exit 1;
    }
    printf "tracing overhead guard passed (floor %.0f)\n", floor;
}'

# Sharded scaling guard: the smoke run re-executes the workload on the
# parallel engine (mode:"sharded", 4 shards by default) and records its
# speedup over the in-run sequential figure. exp_throughput stamps the row
# with an explicit "gate" field — "enforced" on hosts with >= 4 cores,
# "skipped" where the bar cannot be met by construction (the shards
# time-slice too few cores) — so the decision is recorded in the data
# instead of being re-derived here. Bit-identity of the sharded replay is
# asserted inside exp_throughput itself and by the shard_parity suite.
extract_sharded_field() {
    grep '"bench":"exp_throughput"' "$1" | grep '"mode":"sharded"' \
        | sed -n "s/.*\"$2\":\([0-9.eE+-]*\).*/\1/p" | tail -1
}
extract_sharded_gate() {
    grep '"bench":"exp_throughput"' "$1" | grep '"mode":"sharded"' \
        | sed -n 's/.*"gate":"\([a-z]*\)".*/\1/p' | tail -1
}
sharded_speedup=$(extract_sharded_field "$SMOKE_OUT" speedup_vs_seq)
host_par=$(extract_sharded_field "$SMOKE_OUT" host_parallelism)
sharded_gate=$(extract_sharded_gate "$SMOKE_OUT")
if [ -z "$sharded_speedup" ] || [ -z "$host_par" ]; then
    echo "ERROR: smoke run wrote no sharded-mode exp_throughput row to $SMOKE_OUT" >&2
    exit 1
fi
if [ -z "$sharded_gate" ]; then
    echo "ERROR: sharded-mode row in $SMOKE_OUT lacks the \"gate\" field" >&2
    exit 1
fi
if ! grep '"bench":"exp_throughput"' BENCH_forwarding.json | grep '"mode":"sharded"' \
        | grep -q '"gate":"'; then
    echo "ERROR: no sharded-mode baseline row with a \"gate\" field in BENCH_forwarding.json" >&2
    echo "(regenerate: cargo run --release -p son-bench --bin exp_throughput)" >&2
    exit 1
fi
echo "sharded speedup: ${sharded_speedup}x vs sequential (host parallelism $host_par, gate $sharded_gate)"
if [ "$sharded_gate" = "enforced" ]; then
    awk -v s="$sharded_speedup" 'BEGIN {
        if (s < 1.8) {
            printf "ERROR: sharded speedup %.2fx is below the 1.8x-at-4-shards gate\n", s;
            exit 1;
        }
        printf "sharded scaling guard passed (%.2fx >= 1.8x)\n", s;
    }'
else
    echo "SKIP: sharded scaling gate recorded as \"skipped\" (host parallelism $host_par < 4)." \
         "The 1.8x-at-4-shards bar is not enforceable here — parity (bit-identical" \
         "replay) was still checked."
fi

# Profiler overhead guard: the smoke run re-executes the workload a third
# time with the wall-clock span profiler on (sampled event trees, see
# son-obs::perf) and writes a mode:"perf" row; the always-on profiler must
# also cost at most 5% against the in-run unprofiled figure.
extract_perf_pps() {
    grep '"bench":"exp_throughput"' "$1" | grep '"mode":"perf"' \
        | sed -n 's/.*"sim_pkts_per_wall_s":\([0-9.eE+-]*\).*/\1/p' | tail -1
}
perf=$(extract_perf_pps "$SMOKE_OUT")
if [ -z "$perf" ]; then
    echo "ERROR: smoke run wrote no perf-mode exp_throughput row to $SMOKE_OUT" >&2
    exit 1
fi
echo "profiled throughput: $perf sim pkts/wall s (unprofiled $fresh)"
awk -v perf="$perf" -v base="$fresh" 'BEGIN {
    floor = base * 0.95;
    if (perf < floor) {
        printf "ERROR: profiled throughput %.0f is >5%% below the unprofiled run %.0f (floor %.0f)\n", perf, base, floor;
        exit 1;
    }
    printf "profiler overhead guard passed (floor %.0f)\n", floor;
}'

echo "==> exp_scale --smoke"
SCALE_SMOKE_OUT=target/obs/BENCH_scale.smoke.json
BENCH_OUT="$SCALE_SMOKE_OUT" \
    cargo run --release -p son-bench --bin exp_scale -- --smoke

# Sublinear-memory guards, against the numbers this run measured and the
# committed curve. Memory is deterministic (no wall-clock noise), so the
# bars are tight.
#
# 1. The committed BENCH_scale.json curve itself must be sublinear: state
#    bytes/node at N=1024 within 1.5x-of-linear of N=64 (linear is 16x —
#    every node holds the fleet's link state; superlinear per node would be
#    an O(N^3) fleet).
extract_state_bytes() {
    grep '"bench":"exp_scale"' "$1" | grep "\"n\":$2," \
        | sed -n 's/.*"bytes_per_node_state":\([0-9.eE+-]*\).*/\1/p' | tail -1
}
base64=$(extract_state_bytes BENCH_scale.json 64)
base1024=$(extract_state_bytes BENCH_scale.json 1024)
if [ -z "$base64" ] || [ -z "$base1024" ]; then
    echo "ERROR: BENCH_scale.json lacks n=64/n=1024 rows with bytes_per_node_state" >&2
    echo "(regenerate: cargo run --release -p son-bench --bin exp_scale)" >&2
    exit 1
fi
echo "committed state bytes/node: $base64 (n=64) -> $base1024 (n=1024)"
awk -v b64="$base64" -v b1024="$base1024" 'BEGIN {
    cap = b64 * 16 * 1.5;
    if (b1024 > cap) {
        printf "ERROR: committed state bytes/node at n=1024 (%.0f) exceeds 1.5x-linear of n=64 (cap %.0f)\n", b1024, cap;
        exit 1;
    }
    printf "committed sublinearity guard passed (%.1fx over 16x size, cap 24x)\n", b1024 / b64;
}'
# 2. The fresh smoke sweep must not regress per-node memory: state
#    bytes/node at N=256 within 10% of the committed n=256 row.
fresh256=$(extract_state_bytes "$SCALE_SMOKE_OUT" 256)
base256=$(extract_state_bytes BENCH_scale.json 256)
if [ -z "$fresh256" ] || [ -z "$base256" ]; then
    echo "ERROR: missing n=256 bytes_per_node_state row (fresh or committed)" >&2
    exit 1
fi
echo "n=256 state bytes/node: $fresh256 (committed $base256)"
awk -v fresh="$fresh256" -v base="$base256" 'BEGIN {
    cap = base * 1.10;
    if (fresh > cap) {
        printf "ERROR: n=256 state bytes/node %.0f grew >10%% over the committed %.0f (cap %.0f)\n", fresh, base, cap;
        exit 1;
    }
    printf "memory regression guard passed (cap %.0f)\n", cap;
}'

# 3. Rebuild-storm guard: the LSA rebuild hold-down must keep cold-start
#    route recomputation near O(N), not O(N^2). The committed n=1024 row
#    must show at most 10,487 reroutes — 100x below the pre-hold-down
#    baseline of 1,048,727 — and the fresh smoke sweep's n=256 row must
#    stay within 10 reroutes/node.
extract_reroutes() {
    grep '"bench":"exp_scale"' "$1" | grep "\"n\":$2," \
        | sed -n 's/.*"reroutes":\([0-9]*\).*/\1/p' | tail -1
}
storm1024=$(extract_reroutes BENCH_scale.json 1024)
if [ -z "$storm1024" ]; then
    echo "ERROR: BENCH_scale.json lacks an n=1024 row with reroutes" >&2
    exit 1
fi
echo "committed n=1024 reroutes: $storm1024 (pre-hold-down baseline 1048727)"
if [ "$storm1024" -gt 10487 ]; then
    echo "ERROR: committed n=1024 reroutes $storm1024 exceeds the 10487 cap" \
         "(100x under the 1048727 cold-start-storm baseline)" >&2
    exit 1
fi
echo "rebuild-storm guard passed (committed: $storm1024 <= 10487)"
fresh_storm256=$(extract_reroutes "$SCALE_SMOKE_OUT" 256)
if [ -z "$fresh_storm256" ]; then
    echo "ERROR: smoke sweep wrote no n=256 reroutes row to $SCALE_SMOKE_OUT" >&2
    exit 1
fi
echo "fresh n=256 reroutes: $fresh_storm256"
if [ "$fresh_storm256" -gt 2560 ]; then
    echo "ERROR: fresh n=256 reroutes $fresh_storm256 exceeds 10/node (cap 2560):" \
         "the rebuild hold-down stopped coalescing the cold-start storm" >&2
    exit 1
fi
echo "fresh rebuild-storm guard passed ($fresh_storm256 <= 2560)"

echo "Bench smoke passed."
