#!/usr/bin/env bash
# Smoke-runs the data-plane benchmark suite: every criterion group in quick
# mode plus the exp_throughput macro-benchmark in --smoke mode. Catches
# benchmarks that no longer compile or panic without paying full-measurement
# time. The throughput smoke writes its rows to a scratch file so the
# committed BENCH_forwarding.json (full-run results) is left untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench --workspace (smoke: --test)"
cargo bench --workspace -- --test

echo "==> exp_throughput --smoke"
BENCH_OUT=target/obs/BENCH_forwarding.smoke.json \
    cargo run --release -p son-bench --bin exp_throughput -- --smoke

echo "Bench smoke passed."
