#!/usr/bin/env bash
# Smoke-runs the data-plane benchmark suite: every criterion group in quick
# mode plus the exp_throughput macro-benchmark in --smoke mode. Catches
# benchmarks that no longer compile or panic without paying full-measurement
# time. The throughput smoke writes its rows to a scratch file so the
# committed BENCH_forwarding.json (full-run results) is left untouched —
# but the smoke result is compared against the committed smoke baseline row
# and the script fails on a >30% throughput regression.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench --workspace (smoke: --test)"
cargo bench --workspace -- --test

echo "==> exp_throughput --smoke"
SMOKE_OUT=target/obs/BENCH_forwarding.smoke.json
BENCH_OUT="$SMOKE_OUT" \
    cargo run --release -p son-bench --bin exp_throughput -- --smoke

# Throughput regression guard: extract sim_pkts_per_wall_s from the smoke
# rows of the fresh run and of the committed baseline, and fail if the
# fresh figure fell more than 30% below the baseline. (Wall-clock noise on
# shared runners is why the bar is this generous; a real fast-path
# regression shows up far larger.)
extract_smoke_pps() {
    grep '"bench":"exp_throughput"' "$1" | grep '"mode":"smoke"' \
        | sed -n 's/.*"sim_pkts_per_wall_s":\([0-9.eE+-]*\).*/\1/p' | tail -1
}
baseline=$(extract_smoke_pps BENCH_forwarding.json)
fresh=$(extract_smoke_pps "$SMOKE_OUT")
if [ -z "$baseline" ]; then
    echo "ERROR: no smoke-mode baseline row in BENCH_forwarding.json" >&2
    echo "(regenerate: cargo run --release -p son-bench --bin exp_throughput," >&2
    echo " then append the smoke row from a BENCH_OUT=... --smoke run)" >&2
    exit 1
fi
if [ -z "$fresh" ]; then
    echo "ERROR: smoke run wrote no exp_throughput row to $SMOKE_OUT" >&2
    exit 1
fi
echo "smoke throughput: $fresh sim pkts/wall s (baseline $baseline)"
awk -v fresh="$fresh" -v base="$baseline" 'BEGIN {
    floor = base * 0.70;
    if (fresh < floor) {
        printf "ERROR: smoke throughput %.0f fell >30%% below the committed baseline %.0f (floor %.0f)\n", fresh, base, floor;
        exit 1;
    }
    printf "throughput guard passed (floor %.0f)\n", floor;
}'

# Tracing overhead guard: the same smoke run re-executes the workload with
# 1-in-64 trace sampling on and writes a mode:"traced" row; sampled tracing
# must cost at most 5% of forwarding throughput against the in-run untraced
# figure (same machine, same moment — wall-clock noise mostly cancels).
extract_traced_pps() {
    grep '"bench":"exp_throughput"' "$1" | grep '"mode":"traced"' \
        | sed -n 's/.*"sim_pkts_per_wall_s":\([0-9.eE+-]*\).*/\1/p' | tail -1
}
traced=$(extract_traced_pps "$SMOKE_OUT")
if [ -z "$traced" ]; then
    echo "ERROR: smoke run wrote no traced-mode exp_throughput row to $SMOKE_OUT" >&2
    exit 1
fi
echo "traced throughput: $traced sim pkts/wall s (untraced $fresh)"
awk -v traced="$traced" -v base="$fresh" 'BEGIN {
    floor = base * 0.95;
    if (traced < floor) {
        printf "ERROR: traced throughput %.0f is >5%% below the untraced run %.0f (floor %.0f)\n", traced, base, floor;
        exit 1;
    }
    printf "tracing overhead guard passed (floor %.0f)\n", floor;
}'

echo "Bench smoke passed."
