//! Whole-system integration tests spanning every crate: applications from
//! `son-apps` running over `son-overlay` daemons on the `son-netsim`
//! multi-ISP underlay.

use son_apps::video::{score, VideoProfile};
use son_netsim::scenario::{continental_us, global_20, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, global_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess};
use son_overlay::node::OverlayNode;
use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
use son_topo::NodeId;

/// Broadcast video across the real (simulated) multi-ISP underlay, with a
/// fiber cut mid-stream: the multihomed overlay link switches provider and
/// the reliable stream never drops a packet.
#[test]
fn video_survives_fiber_cut_via_provider_switch() {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, cities) = continental_overlay(&sc);
    let mut sim: Simulation<Wire> = Simulation::new(71);
    sim.set_underlay(sc.underlay.clone());
    let overlay = OverlayBuilder::new(topo)
        .place_in_cities(cities.clone())
        .build(&mut sim);

    let nyc = NodeId(cities.iter().position(|&c| c == sc.city("NYC")).unwrap());
    let chi = NodeId(cities.iter().position(|&c| c == sc.city("CHI")).unwrap());
    let profile = VideoProfile::proxy();
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(chi),
        port: 80,
        joins: vec![],
        flows: vec![],
    }));
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(nyc),
        port: 81,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(chi, 80)),
            spec: FlowSpec::reliable(),
            workload: profile.workload(SimTime::from_secs(1), SimDuration::from_secs(20)),
        }],
    }));

    // Cut the first ISP's NYC-CHI fiber at t=5s. BGP won't reconverge for
    // 40s, but the overlay link is triple-homed.
    let isp = sc.isps[0];
    let mut ul = sc.underlay.clone();
    let route = ul
        .resolve(
            SimTime::ZERO,
            son_netsim::underlay::Attachment::OnNet(isp),
            sc.city("NYC"),
            sc.city("CHI"),
        )
        .unwrap()
        .edges;
    for e in route {
        sim.schedule(
            SimTime::from_secs(5),
            son_netsim::sim::ScenarioEvent::FailUnderlayEdge(e),
        );
    }
    sim.run_until(SimTime::from_secs(25));

    let sent = sim.proc_ref::<ClientProcess>(tx).unwrap().sent(1);
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .sole_recv()
        .clone();
    let report = score(&recv, sent, &profile, None);
    assert_eq!(
        report.delivered_frac, 1.0,
        "provider switch must be lossless to the app"
    );
    assert!(
        report.continuity_100ms > 0.99,
        "continuity {}",
        report.continuity_100ms
    );

    // At least one daemon actually switched providers.
    let switches: u64 = overlay
        .daemons
        .iter()
        .map(|&d| {
            sim.proc_ref::<OverlayNode>(d)
                .unwrap()
                .metrics()
                .counters
                .get("provider_switches")
        })
        .sum();
    assert!(switches > 0, "the cut must have forced a provider switch");
}

/// Live video across the planet: NM-Strikes under bursty loss on the
/// 20-city global overlay meets the paper's 200 ms live-TV bound.
#[test]
fn global_live_video_meets_200ms_bound() {
    let sc = global_20(DEFAULT_CONVERGENCE);
    let (topo, cities) = global_overlay(&sc);
    let mut sim: Simulation<Wire> = Simulation::new(72);
    let overlay = OverlayBuilder::new(topo)
        .default_loss(son_netsim::loss::LossConfig::bursts(
            SimDuration::from_millis(990),
            SimDuration::from_millis(10),
        ))
        .build(&mut sim);
    let lon = NodeId(cities.iter().position(|&c| c == sc.city("LON")).unwrap());
    let hkg = NodeId(cities.iter().position(|&c| c == sc.city("HKG")).unwrap());
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(hkg),
        port: 80,
        joins: vec![],
        flows: vec![],
    }));
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(lon),
        port: 81,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(hkg, 80)),
            spec: FlowSpec::live_video(SimDuration::from_millis(200)),
            workload: son_overlay::Workload::Cbr {
                size: 1316,
                interval: SimDuration::from_millis(3),
                count: 5000,
                start: SimTime::from_secs(1),
            },
        }],
    }));
    sim.run_until(SimTime::from_secs(25));
    let sent = sim.proc_ref::<ClientProcess>(tx).unwrap().sent(1);
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .sole_recv()
        .clone();
    assert!(
        recv.received as f64 > 0.98 * sent as f64,
        "{}/{sent} delivered",
        recv.received
    );
    let max = recv.latency_ms.max().unwrap();
    assert!(max <= 200.5, "every delivery within the bound: {max}ms");
}

/// SCADA agreement on the continental overlay with a compromised overlay
/// node (not just a compromised replica): flooding carries the protocol
/// around the blackhole and the budget still holds.
#[test]
fn scada_agreement_survives_compromised_overlay_node() {
    use son_apps::scada::{
        agreement_spec, Device, FieldUnit, Replica, ReplicaConfig, ReplicaFault,
    };
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let config = son_overlay::NodeConfig {
        auth_enabled: true,
        ..Default::default()
    };
    let mut sim: Simulation<Wire> = Simulation::new(73);
    let overlay = OverlayBuilder::new(topo)
        .node_config(config)
        .build(&mut sim);

    // DAL's overlay node is compromised and blackholes transit data.
    sim.proc_mut::<OverlayNode>(overlay.daemon(NodeId(6)))
        .unwrap()
        .set_behavior(son_overlay::adversary::Behavior::Blackhole);

    let sites = [0usize, 5, 3, 8]; // NYC CHI ATL DEN
    for (i, &site) in sites.iter().enumerate() {
        sim.add_process(Replica::new(ReplicaConfig {
            daemon: overlay.daemon(NodeId(site)),
            port: 300 + i as u16,
            index: i as u16,
            n: 4,
            fault: ReplicaFault::None,
            spec: agreement_spec(),
        }));
    }
    let device = sim.add_process(Device::new(overlay.daemon(NodeId(11)), 400));
    let _unit = sim.add_process(FieldUnit::new(
        overlay.daemon(NodeId(4)),
        401,
        SimDuration::from_millis(100),
        30,
        agreement_spec(),
    ));
    sim.run_until(SimTime::from_secs(10));
    let dev = sim.proc_ref::<Device>(device).unwrap();
    assert_eq!(
        dev.commands.len(),
        30,
        "agreement must route around the blackhole"
    );
    let max = dev.latency_ms.clone().max().unwrap();
    assert!(max <= 200.0, "SCADA budget: {max}ms");
}

/// The whole stack is deterministic: two runs of a multi-application
/// deployment produce byte-identical metrics.
#[test]
fn full_deployment_is_deterministic() {
    let run = || {
        let sc = continental_us(DEFAULT_CONVERGENCE);
        let (topo, cities) = continental_overlay(&sc);
        let mut sim: Simulation<Wire> = Simulation::new(1234);
        sim.set_underlay(sc.underlay);
        let overlay = OverlayBuilder::new(topo)
            .place_in_cities(cities)
            .default_loss(son_netsim::loss::LossConfig::Bernoulli { p: 0.01 })
            .build(&mut sim);
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(11)),
            port: 80,
            joins: vec![],
            flows: vec![],
        }));
        let _tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: overlay.daemon(NodeId(0)),
            port: 81,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(11), 80)),
                spec: FlowSpec::reliable(),
                workload: son_overlay::Workload::Cbr {
                    size: 700,
                    interval: SimDuration::from_millis(10),
                    count: 500,
                    start: SimTime::from_millis(500),
                },
            }],
        }));
        sim.run_until(SimTime::from_secs(15));
        let recv = sim
            .proc_ref::<ClientProcess>(rx)
            .unwrap()
            .sole_recv()
            .clone();
        (
            recv.received,
            recv.latency_ms.samples().to_vec(),
            sim.events_processed(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.0, 500);
}

/// §II-D: a cluster of parallel overlays splits the client population; both
/// shards carry their assigned flows independently.
#[test]
fn parallel_overlays_share_the_load() {
    use son_overlay::builder::{chain_topology, ShardedOverlay};
    use son_overlay::client::Workload;

    let topo = chain_topology(3, 10.0);
    let mut sim: Simulation<Wire> = Simulation::new(74);
    let cluster = ShardedOverlay::build(&topo, 2, &son_overlay::NodeConfig::default(), &mut sim);
    assert_eq!(cluster.len(), 2);

    // Eight senders, each assigned to a shard by stable hash.
    let mut rxs = Vec::new();
    for port in 0..8u16 {
        let shard = cluster.shard_for(NodeId(0), 50 + port);
        let rx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: shard.daemon(NodeId(2)),
            port: 70 + port,
            joins: vec![],
            flows: vec![],
        }));
        let _tx = sim.add_process(ClientProcess::new(ClientConfig {
            daemon: shard.daemon(NodeId(0)),
            port: 50 + port,
            joins: vec![],
            flows: vec![ClientFlow {
                local_flow: 1,
                dst: Destination::Unicast(OverlayAddr::new(NodeId(2), 70 + port)),
                spec: FlowSpec::reliable(),
                workload: Workload::Cbr {
                    size: 500,
                    interval: SimDuration::from_millis(10),
                    count: 100,
                    start: SimTime::from_millis(500),
                },
            }],
        }));
        rxs.push(rx);
    }
    sim.run_until(SimTime::from_secs(5));
    for rx in rxs {
        let got: u64 = sim
            .proc_ref::<ClientProcess>(rx)
            .unwrap()
            .recv
            .values()
            .map(|r| r.received)
            .sum();
        assert_eq!(got, 100);
    }
    // Both shards actually carried traffic (the hash split the population).
    let carried: Vec<u64> = cluster
        .shards
        .iter()
        .map(|s| {
            s.daemons
                .iter()
                .map(|&d| sim.proc_ref::<OverlayNode>(d).unwrap().metrics().forwarded)
                .sum()
        })
        .collect();
    assert!(
        carried.iter().all(|&c| c > 0),
        "both shards must serve flows: {carried:?}"
    );
}

/// A geographically correlated failure (regional blast) takes out every
/// fiber near Denver across all providers; the overlay routes around the
/// region while BGP is still converging.
#[test]
fn regional_failure_is_routed_around() {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, cities) = continental_overlay(&sc);
    let mut sim: Simulation<Wire> = Simulation::new(75);
    sim.set_underlay(sc.underlay.clone());
    let overlay = OverlayBuilder::new(topo)
        .place_in_cities(cities.clone())
        .build(&mut sim);
    let nyc = NodeId(cities.iter().position(|&c| c == sc.city("NYC")).unwrap());
    let sf = NodeId(cities.iter().position(|&c| c == sc.city("SF")).unwrap());

    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(sf),
        port: 80,
        joins: vec![],
        flows: vec![],
    }));
    let _tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(nyc),
        port: 81,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(sf, 80)),
            spec: FlowSpec::best_effort(),
            workload: son_overlay::Workload::Cbr {
                size: 500,
                interval: SimDuration::from_millis(10),
                count: u64::MAX,
                start: SimTime::from_millis(500),
            },
        }],
    }));
    // Blast everything within 700km of Denver at t=5s.
    let den = sc.city("DEN");
    let victims = sim.underlay().unwrap().edges_near(den, 700.0);
    assert!(
        victims.len() >= 4,
        "the blast zone must cover several fibers"
    );
    for e in victims {
        sim.schedule(
            SimTime::from_secs(5),
            son_netsim::sim::ScenarioEvent::FailUnderlayEdge(e),
        );
    }
    sim.run_until(SimTime::from_secs(15));
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .sole_recv()
        .clone();
    let gap = recv
        .arrivals
        .windows(2)
        .filter(|w| w[1].0 > SimTime::from_secs(5))
        .map(|w| w[1].0.saturating_since(w[0].0))
        .max()
        .unwrap();
    assert!(
        gap < SimDuration::from_millis(1500),
        "the overlay must route around the region quickly, gap {gap}"
    );
    let last = recv.arrivals.last().unwrap().0;
    assert!(
        last > SimTime::from_millis(14_800),
        "still flowing at the end"
    );
}

/// A variable-bitrate GOP stream (big I-frame bursts every half second)
/// survives bursty loss end to end under hop-by-hop recovery, and the
/// trace-driven workload delivers exactly the scheduled bytes.
#[test]
fn vbr_video_stream_over_lossy_overlay() {
    use son_apps::video::GopProfile;
    use son_overlay::builder::chain_topology;

    let profile = GopProfile::standard();
    let schedule = profile.schedule(SimTime::from_secs(1), SimDuration::from_secs(10));
    let expected_packets = schedule.len() as u64;
    let mut sim: Simulation<Wire> = Simulation::new(76);
    let overlay = OverlayBuilder::new(chain_topology(4, 10.0))
        .default_loss(son_netsim::loss::LossConfig::bursts(
            SimDuration::from_millis(990),
            SimDuration::from_millis(10),
        ))
        .build(&mut sim);
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(3)),
        port: 80,
        joins: vec![],
        flows: vec![],
    }));
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(0)),
        port: 81,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(NodeId(3), 80)),
            spec: FlowSpec::reliable(),
            workload: son_overlay::Workload::Trace {
                schedule: std::sync::Arc::new(schedule),
            },
        }],
    }));
    sim.run_until(SimTime::from_secs(20));
    let sent = sim.proc_ref::<ClientProcess>(tx).unwrap().sent(1);
    assert_eq!(
        sent, expected_packets,
        "the trace drives exactly its schedule"
    );
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .sole_recv()
        .clone();
    assert_eq!(
        recv.received, sent,
        "hop-by-hop recovery absorbs the bursts"
    );
    assert_eq!(recv.out_of_order, 0);
}
