//! Broadcast-quality video transport over the continental overlay (§III-A).
//!
//! ```text
//! cargo run --release --example video_broadcast
//! ```
//!
//! A stadium feed in Miami is multicast to four broadcast stations across
//! the country over lossy links. We run the same stream twice — best effort
//! vs the Reliable Data Link — and print the decoder-level quality report
//! for each station.

use son_apps::video::{score, VideoProfile};
use son_netsim::loss::LossConfig;
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess};
use son_overlay::{Destination, FlowSpec, GroupId, Wire};
use son_topo::NodeId;

const STATIONS: [(&str, usize); 4] = [("NYC", 0), ("CHI", 5), ("SEA", 9), ("LA", 11)];
const STADIUM: usize = 4; // MIA
const GROUP: GroupId = GroupId(7);

fn run(spec: FlowSpec) -> Vec<(String, f64, f64, f64)> {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let mut sim: Simulation<Wire> = Simulation::new(99);
    let overlay = OverlayBuilder::new(topo)
        .default_loss(LossConfig::bursts(
            SimDuration::from_millis(990),
            SimDuration::from_millis(10),
        ))
        .build(&mut sim);

    let stations: Vec<_> = STATIONS
        .iter()
        .map(|&(_, n)| {
            sim.add_process(ClientProcess::new(ClientConfig {
                daemon: overlay.daemon(NodeId(n)),
                port: 80,
                joins: vec![GROUP],
                flows: vec![],
            }))
        })
        .collect();

    let profile = VideoProfile::broadcast_sd();
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(STADIUM)),
        port: 81,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Multicast(GROUP),
            spec,
            workload: profile.workload(SimTime::from_secs(1), SimDuration::from_secs(30)),
        }],
    }));
    sim.run_until(SimTime::from_secs(40));

    let sent = sim.proc_ref::<ClientProcess>(tx).unwrap().sent(1);
    stations
        .iter()
        .zip(STATIONS.iter())
        .map(|(&p, &(name, _))| {
            let client = sim.proc_ref::<ClientProcess>(p).unwrap();
            let recv = client.recv.values().next().cloned().unwrap_or_default();
            let report = score(&recv, sent, &profile, None);
            (
                name.to_string(),
                report.delivered_frac,
                report.mean_latency_ms,
                report.continuity_100ms,
            )
        })
        .collect()
}

fn main() {
    println!(
        "MIA stadium feed ({} Mbit/s MPEG-TS) -> 4 stations, 1% bursty loss/link\n",
        VideoProfile::broadcast_sd().bitrate_bps / 1_000_000
    );
    for (label, spec) in [
        (
            "BEST EFFORT (native-Internet-like)",
            FlowSpec::best_effort(),
        ),
        (
            "RELIABLE DATA LINK (hop-by-hop recovery)",
            FlowSpec::reliable(),
        ),
    ] {
        println!("--- {label} ---");
        println!(
            "{:>8} {:>10} {:>10} {:>16}",
            "station", "delivered", "mean ms", "continuity@100ms"
        );
        for (name, frac, mean, continuity) in run(spec) {
            println!(
                "{name:>8} {:>9.2}% {mean:>10.2} {:>15.2}%",
                frac * 100.0,
                continuity * 100.0
            );
        }
        println!();
    }
    println!("The overlay's hop-by-hop recovery turns a freezing, lossy feed into");
    println!("broadcast-quality delivery at a few ms of added latency.");
}
