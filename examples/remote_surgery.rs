//! Real-time remote manipulation (§V-A): a surgeon in New York operates a
//! robot in Los Angeles.
//!
//! ```text
//! cargo run --release --example remote_surgery
//! ```
//!
//! Haptic commands cross the continent (~37 ms propagation) under a 65 ms
//! one-way deadline while loss bursts plague the network around the source.
//! We compare the plain shortest path against the paper's combination of
//! single-strike recovery + dissemination-graph routing, both directions
//! (commands east→west, force feedback west→east).

use son_apps::manipulation::{self, HapticProfile, ONE_WAY_DEADLINE};
use son_netsim::loss::LossConfig;
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess};
use son_overlay::{Destination, FlowSpec, OverlayAddr, Wire};
use son_topo::NodeId;

const SURGEON: NodeId = NodeId(0); // NYC
const ROBOT: NodeId = NodeId(11); // LA

fn run(
    spec: FlowSpec,
) -> (
    manipulation::ManipulationReport,
    manipulation::ManipulationReport,
) {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    // Bursty loss on the links around both endpoints (the problematic areas).
    let mut builder = OverlayBuilder::new(topo.clone());
    for e in topo.edges() {
        let (a, b) = topo.endpoints(e);
        if [a, b].iter().any(|&v| v == SURGEON || v == ROBOT) {
            builder = builder.edge_loss(
                e,
                LossConfig::bursts(SimDuration::from_millis(190), SimDuration::from_millis(10)),
            );
        }
    }
    let mut sim: Simulation<Wire> = Simulation::new(2026);
    let overlay = builder.build(&mut sim);

    let profile = HapticProfile::standard();
    let mk = |at: NodeId, to: NodeId, port, peer_port| ClientConfig {
        daemon: overlay.daemon(at),
        port,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(to, peer_port)),
            spec,
            workload: profile.workload(SimTime::from_secs(1), SimDuration::from_secs(20)),
        }],
    };
    let surgeon = sim.add_process(ClientProcess::new(mk(SURGEON, ROBOT, 10, 11)));
    let robot = sim.add_process(ClientProcess::new(mk(ROBOT, SURGEON, 11, 10)));
    sim.run_until(SimTime::from_secs(25));

    let score_of = |pid, sent_by| {
        let sent = sim.proc_ref::<ClientProcess>(sent_by).unwrap().sent(1);
        let recv = sim
            .proc_ref::<ClientProcess>(pid)
            .unwrap()
            .recv
            .values()
            .next()
            .cloned()
            .unwrap_or_default();
        manipulation::score(&recv, sent)
    };
    (score_of(robot, surgeon), score_of(surgeon, robot))
}

fn main() {
    println!(
        "NYC surgeon <-> LA robot | {} Hz haptics | {} ms one-way deadline",
        HapticProfile::standard().rate_hz,
        ONE_WAY_DEADLINE.as_millis_f64()
    );
    println!("5% bursty loss around both endpoints\n");
    let budget = SimDuration::from_millis(12);
    for (label, spec) in [
        ("shortest path only", manipulation::single_path_spec(budget)),
        (
            "single-strike + dissemination graph",
            manipulation::manipulation_spec(budget),
        ),
    ] {
        let (cmd, fb) = run(spec);
        println!("--- {label} ---");
        println!(
            "  commands : {:>6.2}% on time | mean {:>5.1} ms | {} lost",
            cmd.on_time_frac * 100.0,
            cmd.mean_latency_ms,
            cmd.lost
        );
        println!(
            "  feedback : {:>6.2}% on time | mean {:>5.1} ms | {} lost",
            fb.on_time_frac * 100.0,
            fb.mean_latency_ms,
            fb.lost
        );
        let loop_ok = cmd.on_time_frac * fb.on_time_frac;
        println!(
            "  closed loop within 130 ms RTT: ~{:.2}%\n",
            loop_ok * 100.0
        );
    }
    println!("Targeted redundancy in the problematic areas buys the last fraction of");
    println!("a percent that makes the interaction feel local — with only ~20 ms of");
    println!("slack, there is no time for a second retransmission round.");
}
