//! Quickstart: a three-node overlay chain carrying a reliable flow over a
//! lossy Internet.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A sender client attaches to overlay node 0, a receiver to node 2, and the
//! Reliable Data Link recovers every loss hop-by-hop while the destination
//! delivers in order.

use son_netsim::loss::LossConfig;
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{chain_topology, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::{Destination, FlowSpec, LinkService, OverlayAddr, Wire};
use son_topo::NodeId;

fn main() {
    // 1. A deterministic simulated Internet (seed 7) with 2% loss per link.
    let mut sim: Simulation<Wire> = Simulation::new(7);

    // 2. Three overlay nodes in a chain of 10 ms links.
    let overlay = OverlayBuilder::new(chain_topology(3, 10.0))
        .default_loss(LossConfig::Bernoulli { p: 0.02 })
        .build(&mut sim);

    // 3. A receiver client on node 2 (virtual port 80)...
    let rx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(2)),
        port: 80,
        joins: vec![],
        flows: vec![],
    }));

    // 4. ...and a sender on node 0 streaming 1000 packets of 1 kB at 100/s
    //    with the Reliable Data Link service (hop-by-hop recovery, in-order
    //    delivery at the destination).
    let tx = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(NodeId(0)),
        port: 81,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(NodeId(2), 80)),
            spec: FlowSpec::reliable(),
            workload: Workload::Cbr {
                size: 1000,
                interval: SimDuration::from_millis(10),
                count: 1000,
                start: SimTime::from_millis(500),
            },
        }],
    }));

    // 5. Run 15 simulated seconds.
    sim.run_until(SimTime::from_secs(15));

    // 6. Harvest.
    let sent = sim.proc_ref::<ClientProcess>(tx).unwrap().sent(1);
    let recv = sim
        .proc_ref::<ClientProcess>(rx)
        .unwrap()
        .sole_recv()
        .clone();
    let mut lat = recv.latency_ms.clone();
    println!("sent             : {sent}");
    println!(
        "delivered        : {} ({}%)",
        recv.received,
        100 * recv.received / sent
    );
    println!(
        "in order         : {}",
        if recv.out_of_order == 0 { "yes" } else { "no" }
    );
    println!("app duplicates   : {}", recv.app_duplicates);
    println!("latency p50      : {:.2} ms", lat.median().unwrap());
    println!("latency p99      : {:.2} ms", lat.quantile(0.99).unwrap());

    let mut retransmissions = 0;
    for &d in &overlay.daemons {
        retransmissions += sim
            .proc_ref::<OverlayNode>(d)
            .unwrap()
            .service_stats(LinkService::Reliable)
            .retransmitted;
    }
    println!("link-level repair: {retransmissions} retransmissions (invisible to the app)");
    assert_eq!(recv.received, sent, "reliable service recovered everything");
}
