//! Resilient monitoring and control of a global cloud (§III-B).
//!
//! ```text
//! cargo run --release --example cloud_monitoring
//! ```
//!
//! Sensors in six cities multicast telemetry into the overlay; two operator
//! consoles (east and west) receive every stream without any sensor opening
//! more than one connection. A controller fans out reliable commands to
//! field devices. Mid-run an overlay link fails — sub-second rerouting keeps
//! the monitoring view fresh.

use son_apps::monitoring::{self, score_telemetry};
use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::{ScenarioEvent, Simulation};
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::ClientProcess;
use son_overlay::Wire;
use son_topo::NodeId;

const SENSOR_CITIES: [usize; 6] = [1, 3, 4, 7, 8, 10]; // BOS ATL MIA HOU DEN SF
const OPERATORS: [usize; 2] = [0, 11]; // NYC, LA
const DEVICES: [usize; 2] = [6, 9]; // DAL, SEA
const CONTROLLER: usize = 0; // NYC

fn main() {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let mut sim: Simulation<Wire> = Simulation::new(404);
    let overlay = OverlayBuilder::new(topo.clone()).build(&mut sim);

    let sensors: Vec<_> = SENSOR_CITIES
        .iter()
        .map(|&n| {
            sim.add_process(ClientProcess::new(monitoring::sensor(
                &overlay,
                NodeId(n),
                256,
                SimDuration::from_millis(100),
                SimDuration::from_secs(20),
                false,
            )))
        })
        .collect();
    let operators: Vec<_> = OPERATORS
        .iter()
        .map(|&n| {
            sim.add_process(ClientProcess::new(monitoring::operator(
                &overlay,
                NodeId(n),
            )))
        })
        .collect();
    let devices: Vec<_> = DEVICES
        .iter()
        .map(|&n| sim.add_process(ClientProcess::new(monitoring::device(&overlay, NodeId(n)))))
        .collect();
    let _controller = sim.add_process(ClientProcess::new(monitoring::controller(
        &overlay,
        NodeId(CONTROLLER),
        128,
        SimDuration::from_millis(500),
        30,
        false,
    )));

    // Fail an overlay link mid-run: the overlay routes around it.
    let victim = son_topo::shortest_path(&topo, NodeId(4), NodeId(0))
        .unwrap()
        .edges[0];
    for &(ab, ba) in &overlay.edge_pipes[&victim] {
        sim.schedule(SimTime::from_secs(10), ScenarioEvent::DisablePipe(ab));
        sim.schedule(SimTime::from_secs(10), ScenarioEvent::DisablePipe(ba));
    }

    sim.run_until(SimTime::from_secs(25));

    println!("six sensors -> overlay multicast -> two operator consoles");
    println!("(an overlay link on the MIA->NYC route fails at t=10s)\n");
    for (op_idx, &op) in operators.iter().enumerate() {
        let client = sim.proc_ref::<ClientProcess>(op).unwrap();
        println!(
            "operator at {}:",
            sc.underlay.city_name(sc.cities[OPERATORS[op_idx]])
        );
        println!(
            "{:>8} {:>13} {:>13} {:>16}",
            "sensor", "completeness", "freshness ms", "max blindness ms"
        );
        for (i, &s) in sensors.iter().enumerate() {
            let sent = sim.proc_ref::<ClientProcess>(s).unwrap().sent(1);
            let flow = client
                .recv
                .iter()
                .find(|(k, _)| k.src.node == NodeId(SENSOR_CITIES[i]))
                .map(|(_, r)| r.clone())
                .unwrap_or_default();
            let report = score_telemetry(&flow, sent);
            println!(
                "{:>8} {:>12.1}% {:>13.2} {:>16.0}",
                sc.underlay.city_name(sc.cities[SENSOR_CITIES[i]]),
                report.completeness * 100.0,
                report.mean_freshness_ms,
                report.longest_blindness_ms,
            );
        }
        println!();
    }
    for (i, &d) in devices.iter().enumerate() {
        let client = sim.proc_ref::<ClientProcess>(d).unwrap();
        let got: u64 = client.recv.values().map(|r| r.received).sum();
        println!(
            "device at {:>3}: received {got}/30 control commands (reliable, in order)",
            sc.underlay.city_name(sc.cities[DEVICES[i]])
        );
    }
    println!("\nEvery endpoint holds exactly ONE overlay connection; the mesh of");
    println!("sensor x destination paths — and the sub-second failover — is the");
    println!("overlay's job, not the application's.");
}
