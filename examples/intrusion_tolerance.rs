//! Intrusion-tolerant monitoring and control (§IV-B): the overlay itself is
//! under attack.
//!
//! ```text
//! cargo run --release --example intrusion_tolerance
//! ```
//!
//! Two compromised overlay nodes participate correctly in the control plane
//! but blackhole transit data, while a third floods junk traffic toward the
//! control center. SCADA-style telemetry keeps flowing thanks to constrained
//! flooding + fair priority scheduling; reliable control commands ride
//! IT-Reliable with backpressure.

use son_netsim::scenario::{continental_us, DEFAULT_CONVERGENCE};
use son_netsim::sim::Simulation;
use son_netsim::time::{SimDuration, SimTime};
use son_overlay::adversary::Behavior;
use son_overlay::builder::{continental_overlay, OverlayBuilder};
use son_overlay::client::{ClientConfig, ClientFlow, ClientProcess, Workload};
use son_overlay::node::OverlayNode;
use son_overlay::{
    Destination, FlowSpec, LinkService, NodeConfig, OverlayAddr, RoutingService, SourceRoute, Wire,
};
use son_topo::NodeId;

const CONTROL_CENTER: NodeId = NodeId(0); // NYC
const SUBSTATION: NodeId = NodeId(11); // LA
                                       // ATL and DEN are compromised: they sit on the cheap southern and central
                                       // routes but do not form a vertex cut (the paper's guarantee only holds
                                       // "provided that some correct path through the overlay still exists").
const BLACKHOLES: [usize; 2] = [3, 8]; // ATL, DEN
const FLOODER: usize = 7; // HOU compromised, floods the control center

fn main() {
    let sc = continental_us(DEFAULT_CONVERGENCE);
    let (topo, _) = continental_overlay(&sc);
    let mut config = NodeConfig {
        auth_enabled: true,
        ..Default::default()
    };
    // §IV-B: per-node keys, per-packet tags
    config.it_rate_bps = Some(4_000_000);
    let mut sim: Simulation<Wire> = Simulation::new(1337);
    let overlay = OverlayBuilder::new(topo)
        .node_config(config)
        .build(&mut sim);

    for &bad in &BLACKHOLES {
        sim.proc_mut::<OverlayNode>(overlay.daemon(NodeId(bad)))
            .unwrap()
            .set_behavior(Behavior::Blackhole);
    }
    sim.proc_mut::<OverlayNode>(overlay.daemon(NodeId(FLOODER)))
        .unwrap()
        .set_behavior(Behavior::Flood {
            dst: Destination::Unicast(OverlayAddr::new(CONTROL_CENTER, 70)),
            rate_pps: 2000,
            size: 1000,
        });

    // Telemetry: substation -> control center, flooded + priority-fair.
    let telemetry_spec = FlowSpec::best_effort()
        .with_routing(RoutingService::SourceBased(
            SourceRoute::ConstrainedFlooding,
        ))
        .with_link(LinkService::ItPriority);
    // Control: control center -> substation, IT-Reliable over redundant
    // dissemination (a reliable protocol on a single path through a
    // blackhole would stall forever — §IV-B pairs fair scheduling WITH
    // redundant dissemination).
    let control_spec = FlowSpec::reliable()
        .with_link(LinkService::ItReliable)
        .with_routing(RoutingService::SourceBased(
            SourceRoute::ConstrainedFlooding,
        ));

    let center = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(CONTROL_CENTER),
        port: 70,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(SUBSTATION, 71)),
            spec: control_spec,
            workload: Workload::Cbr {
                size: 256,
                interval: SimDuration::from_millis(100),
                count: 200,
                start: SimTime::from_secs(1),
            },
        }],
    }));
    let substation = sim.add_process(ClientProcess::new(ClientConfig {
        daemon: overlay.daemon(SUBSTATION),
        port: 71,
        joins: vec![],
        flows: vec![ClientFlow {
            local_flow: 1,
            dst: Destination::Unicast(OverlayAddr::new(CONTROL_CENTER, 70)),
            spec: telemetry_spec,
            workload: Workload::Cbr {
                size: 512,
                interval: SimDuration::from_millis(20),
                count: 1000,
                start: SimTime::from_secs(1),
            },
        }],
    }));
    sim.run_until(SimTime::from_secs(30));

    let telemetry_sent = sim.proc_ref::<ClientProcess>(substation).unwrap().sent(1);
    let center_client = sim.proc_ref::<ClientProcess>(center).unwrap();
    let telemetry = center_client
        .recv
        .iter()
        .find(|(k, _)| k.src.node == SUBSTATION)
        .map(|(_, r)| r.clone())
        .unwrap_or_default();
    let commands_sent = center_client.sent(1);
    let sub_client = sim.proc_ref::<ClientProcess>(substation).unwrap();
    let commands = sub_client.recv.values().next().cloned().unwrap_or_default();
    let mut telemetry_lat = telemetry.latency_ms.clone();

    println!(
        "attack: {} blackhole nodes + 1 flooder (2000 pps at the control center)\n",
        BLACKHOLES.len()
    );
    println!(
        "telemetry (flooding + IT-Priority): {}/{} delivered, p99 {:.1} ms, {} app dups",
        telemetry.received,
        telemetry_sent,
        telemetry_lat.quantile(0.99).unwrap_or(f64::NAN),
        telemetry.app_duplicates,
    );
    println!(
        "control  (IT-Reliable)            : {}/{} delivered in order ({} ooo)",
        commands.received, commands_sent, commands.out_of_order,
    );
    let mut junk_dropped = 0;
    let mut adversary_dropped = 0;
    for &d in &overlay.daemons {
        let m = sim.proc_ref::<OverlayNode>(d).unwrap().metrics();
        junk_dropped += m.counters.get("unused");
        adversary_dropped += m.adversary_dropped;
    }
    let _ = junk_dropped;
    println!("\npackets eaten by the blackholes   : {adversary_dropped}");
    println!(
        "flooder junk injected             : {}",
        sim.proc_ref::<OverlayNode>(overlay.daemon(NodeId(FLOODER)))
            .unwrap()
            .metrics()
            .adversary_injected
    );
    println!("\nDespite compromised overlay nodes with valid credentials, every");
    println!("telemetry reading and every control command made it through.");
    assert_eq!(telemetry.received, telemetry_sent);
    assert_eq!(commands.received, commands_sent);
}
